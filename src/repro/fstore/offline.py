"""Offline batch materialization of feature views.

``OfflineMaterializer`` turns ``(view, table)`` into the training-side
feature matrix the same way every time:

* **content-addressed** -- the cache key fingerprints the view's
  canonical definition *and* the table's column bytes, so any change to
  either regenerates rather than silently loading stale features;
* **chunked** -- rowwise ops run per row-chunk (fanned out over
  :func:`repro.par.pmap` when ``workers`` > 1); windowed ops (the
  past-throughput lags) are computed once over the full column so run
  boundaries never straddle a chunk seam.  Results are bit-identical at
  any worker count and any chunk size because every chunk is a pure
  function of its row slice;
* **persisted** -- shards go through the existing
  :class:`repro.par.NpzCache` (atomic, fsynced, corruption-tolerant)
  keyed by the materialization fingerprint;
* **observable** -- spans + ``fstore.*`` counters/gauges via
  ``repro.obs`` record rows, cache hits/misses and rows/sec.

The parity harness (``tests/fstore/``) proves a materialized matrix is
bit-identical to both the unchunked :meth:`FeatureView.transform_table`
and the online per-row path, across cache hit/miss and worker counts.
"""

from __future__ import annotations

import hashlib
import time
from functools import partial

import numpy as np

from repro import obs
from repro.fstore.ops import OPS
from repro.fstore.views import FeatureMatrix, FeatureView, view_from_dict
from repro.par import NpzCache, fingerprint, pmap

__all__ = ["OfflineMaterializer", "materialize", "table_digest"]

#: Default rows per materialization chunk.  Purely a scheduling knob:
#: results never depend on it.
DEFAULT_CHUNK_ROWS = 4096


def table_digest(table, columns=None) -> str:
    """SHA-256 over the named columns' dtype + bytes (order-sensitive).

    Object (string) columns hash their UTF-8 joined values -- their raw
    buffers are pointers and would not be stable across processes.
    """
    h = hashlib.sha256()
    names = tuple(columns) if columns is not None else None
    if names is None:
        names = tuple(getattr(table, "column_names", None) or table.keys())
    h.update(repr(len(table)).encode())
    for name in names:
        col = np.asarray(table[name])
        h.update(name.encode())
        h.update(str(col.dtype).encode())
        if col.dtype == object:
            h.update("\x1f".join(str(v) for v in col.tolist()).encode())
        else:
            h.update(np.ascontiguousarray(col).tobytes())
    return h.hexdigest()


def _rowwise_chunk(view_canonical: dict, columns: dict,
                   bounds: tuple[int, int]) -> dict[str, np.ndarray]:
    """Pure pmap task: rowwise feature columns for one row slice."""
    start, stop = bounds
    view = view_from_dict(view_canonical)
    out: dict[str, np.ndarray] = {}
    for f in view.features:
        op = OPS[f.op]
        if op.windowed:
            continue
        out[f.name] = op.apply_batch(
            [np.asarray(columns[s][start:stop]) for s in f.source],
            f.param_dict,
        )
    return out


class OfflineMaterializer:
    """Chunked, cached batch execution of one feature view."""

    def __init__(
        self,
        view: FeatureView,
        cache: NpzCache | str | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.view = view
        self.cache = (NpzCache(cache) if isinstance(cache, str)
                      else cache)
        self.chunk_rows = chunk_rows

    # -- identity ----------------------------------------------------------- #

    def cache_key(self, table) -> str:
        """Content address of (view definition, table contents)."""
        return fingerprint({
            "fstore_materialize": 1,
            "view": self.view.canonical(),
            "table": table_digest(table, self.view.source_columns()),
        })

    # -- execution ----------------------------------------------------------- #

    def materialize(self, table, workers: int | None = None) -> FeatureMatrix:
        """The view's feature matrix for ``table`` (cached when possible)."""
        view = self.view
        with obs.span("fstore.materialize", view=view.name,
                      rows=len(table)):
            key = self.cache_key(table) if self.cache is not None else None
            if key is not None:
                entry = self.cache.load(key)
                if entry is not None:
                    features = entry.get("features", {})
                    if tuple(features) == view.names:
                        obs.inc("fstore.cache_hits_total")
                        X = (np.column_stack(
                            [features[n] for n in view.names])
                            if view.names
                            else np.empty((len(table), 0)))
                        return FeatureMatrix(spec=view.name,
                                             names=view.names, X=X)
                    # A key collision with a different layout cannot be
                    # trusted; fall through and regenerate.
                    obs.inc("fstore.cache_layout_mismatches_total")
                obs.inc("fstore.cache_misses_total")
            t0 = time.perf_counter()
            fm = self._compute(table, workers)
            elapsed = time.perf_counter() - t0
            if key is not None:
                self.cache.save(key, {
                    "features": {
                        n: fm.X[:, i] for i, n in enumerate(view.names)
                    },
                })
                obs.inc("fstore.shards_written_total")
        obs.inc("fstore.materializations_total")
        obs.inc("fstore.materialized_rows_total", len(table))
        if elapsed > 0:
            obs.set_gauge("fstore.materialize_rows_per_s",
                          round(len(table) / elapsed, 1))
        return fm

    def materialize_store(self, reader, out_dir):
        """Shard-by-shard materialization of a columnar campaign store.

        ``reader`` is a :class:`repro.colstore.ChunkReader` over raw
        telemetry; the view is executed one chunk at a time -- rowwise
        ops straight through their batch kernels (chunk-safe by
        construction), windowed lags through their stateful
        :meth:`repro.fstore.ops.Op.make_stream` carry, which is
        bit-exact across chunk seams -- and written to a feature store
        at ``out_dir`` whose columns are the view's feature names and
        whose chunk boundaries mirror the input.  Peak memory is one
        chunk's columns, never the campaign.

        The output is content-addressed: its manifest carries a
        ``cache_key`` fingerprinting (view canonical x input manifest
        digest), and a finalized store at ``out_dir`` with a matching
        key is reused without recomputation.  Parity with the in-memory
        paths is bitwise: concatenating the output chunks equals
        :meth:`FeatureView.transform_table` on the gathered table
        (``tests/fstore/test_materialize_store.py``).
        """
        from repro.colstore import ChunkReader, Manifest, ShardWriter

        view = self.view
        key = fingerprint({
            "fstore_materialize_store": 1,
            "view": view.canonical(),
            "manifest": reader.manifest.digest(),
        })
        if Manifest.exists(out_dir):
            try:
                existing = ChunkReader(out_dir)
            except ValueError:
                existing = None  # corrupt/mismatched: rewrite below
            if (existing is not None
                    and existing.manifest.meta.get("cache_key") == key):
                obs.inc("fstore.cache_hits_total")
                return existing
        obs.inc("fstore.cache_misses_total")
        with obs.span("fstore.materialize_store", view=view.name,
                      rows=len(reader)):
            t0 = time.perf_counter()
            writer = ShardWriter(
                out_dir,
                chunk_rows=reader.manifest.chunk_rows,
                meta={
                    "kind": "fstore_features",
                    "view": view.name,
                    "view_fingerprint": view.fingerprint(),
                    "cache_key": key,
                },
            )
            streams: dict[str, object] = {}
            with writer:
                for tbl in reader.iter_chunks(view.source_columns()):
                    cols = {}
                    for f in view.features:
                        op = OPS[f.op]
                        srcs = [np.asarray(tbl[s]) for s in f.source]
                        if op.windowed:
                            carry = streams.setdefault(
                                f.name, op.make_stream(f.param_dict))
                            cols[f.name] = carry.apply(*srcs)
                        else:
                            cols[f.name] = op.apply_batch(srcs, f.param_dict)
                    writer.append(cols)
            elapsed = time.perf_counter() - t0
            obs.inc("fstore.shards_written_total")
        obs.inc("fstore.materializations_total")
        obs.inc("fstore.materialized_rows_total", len(reader))
        if elapsed > 0:
            obs.set_gauge("fstore.materialize_rows_per_s",
                          round(len(reader) / elapsed, 1))
        return ChunkReader(out_dir)

    def _compute(self, table, workers: int | None) -> FeatureMatrix:
        view = self.view
        n = len(table)
        source = {s: np.asarray(table[s]) for s in view.source_columns()}
        # Windowed columns (past-throughput lags) look back along runs,
        # so they are computed over the full column, never per chunk.
        windowed: dict[str, np.ndarray] = {}
        for f in view.features:
            op = OPS[f.op]
            if op.windowed:
                windowed[f.name] = op.apply_batch(
                    [source[s] for s in f.source], f.param_dict
                )
        bounds = [(s, min(s + self.chunk_rows, n))
                  for s in range(0, max(n, 1), self.chunk_rows)]
        chunk_maps = pmap(
            partial(_rowwise_chunk, view.canonical(), source),
            bounds,
            workers=workers,
            label="fstore.materialize",
        ) if bounds else []
        cols = []
        for f in view.features:
            if f.name in windowed:
                cols.append(windowed[f.name])
            else:
                cols.append(np.concatenate(
                    [c[f.name] for c in chunk_maps]
                ) if chunk_maps else np.empty(0))
        X = np.column_stack(cols) if cols else np.empty((n, 0))
        return FeatureMatrix(spec=view.name, names=view.names, X=X)


def materialize(
    view: FeatureView,
    table,
    cache: NpzCache | str | None = None,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    workers: int | None = None,
) -> FeatureMatrix:
    """One-shot convenience over :class:`OfflineMaterializer`."""
    return OfflineMaterializer(
        view, cache=cache, chunk_rows=chunk_rows
    ).materialize(table, workers=workers)
