"""``repro.fstore`` -- the feature store: one definition, two backends.

Lumos5G's central design idea is *composable feature groups* (paper
Table 6).  This package lifts them from ad-hoc recomputation into
declarative, versioned **feature views** (docs/feature_store.md has the
full guide):

* :mod:`repro.fstore.views` -- :class:`FeatureView` definitions (name,
  version, transform DAG of pure ops) with content-addressed
  fingerprints; the predefined L/M/T/C groups and the evaluated
  combinations; ``attach_view`` stamps published models so serving can
  verify the model/feature-version handshake.
* :mod:`repro.fstore.ops` -- the pure op registry both execution modes
  share (cast, cyclic sin/cos, sentinel-NaN, equality flag,
  within-run lag).
* :mod:`repro.fstore.offline` -- chunked, ``pmap``-parallel,
  ``NpzCache``-persisted batch materialization for training/campaigns.
* :mod:`repro.fstore.online` -- the single-row, no-table request path
  for serving, with ``repro.resil``-guarded cache reads.

The **parity guarantee**: offline-materialized and online-computed
features are bit-identical float64 for the same logical row, invariant
to worker count, chunking and cache state -- proven by
``tests/fstore/`` against property-generated rows, with golden view
fingerprints that fail loudly when a definition changes without a
version bump.

Consumers: ``core.features``/``core.pipeline`` (training),
``core.transfer``, ``core.mapstore``, ``analysis``,
``ml.preprocessing.PredictionPipeline.predict_row`` and the ``serve``
stack ("row" requests).  ``tools/check_fstore.py`` keeps the online
path table-free and feature recomputation out of the rest of the
library.
"""

from repro.fstore.ops import OPS, PAST_THROUGHPUT_FIELD, Op
from repro.fstore.views import (
    COMBINATIONS,
    FSTORE_SCHEMA_VERSION,
    FeatureMatrix,
    FeatureSpec,
    FeatureView,
    GROUP_MEMBERS,
    GROUP_VERSIONS,
    PRIMARY_GROUPS,
    attach_view,
    combination_view,
    group_view,
    parse_combination,
    target,
    view_from_dict,
    view_of,
)
from repro.fstore.offline import (
    OfflineMaterializer,
    materialize,
    table_digest,
)
from repro.fstore.online import OnlineFeatureServer

__all__ = [
    "COMBINATIONS",
    "FSTORE_SCHEMA_VERSION",
    "FeatureMatrix",
    "FeatureSpec",
    "FeatureView",
    "GROUP_MEMBERS",
    "GROUP_VERSIONS",
    "OPS",
    "OfflineMaterializer",
    "OnlineFeatureServer",
    "Op",
    "PAST_THROUGHPUT_FIELD",
    "PRIMARY_GROUPS",
    "attach_view",
    "combination_view",
    "extract",
    "group_view",
    "materialize",
    "parse_combination",
    "table_digest",
    "target",
    "view_from_dict",
    "view_of",
]


def extract(table, spec: str, past_throughput_lags: int = 5) -> FeatureMatrix:
    """One-shot: the feature matrix of a Table-6 combination.

    The in-memory training-path convenience (no cache, no chunking);
    heavy/batched callers use :class:`OfflineMaterializer` directly.
    """
    from repro import obs

    view = combination_view(spec, past_throughput_lags)
    with obs.span("features.extract", spec=spec, rows=len(table)):
        fm = view.transform_table(table)
    obs.inc("features.extractions_total")
    obs.inc("features.rows_total", len(table))
    return fm
