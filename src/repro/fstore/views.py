"""Declarative, versioned feature views (the Table-6 groups as data).

A :class:`FeatureView` is a named, versioned list of
:class:`FeatureSpec` entries -- output column name, op, source
column(s), parameters.  Views are *definitions*, not computations: one
definition is compiled into two execution modes,

* :meth:`FeatureView.transform_table` -- vectorized over a whole
  column table (the offline/training path; chunked + cached by
  :class:`repro.fstore.offline.OfflineMaterializer`);
* :meth:`FeatureView.transform_row` -- a single request dict to a
  float64 feature vector with no table allocation (the online/serving
  path; wrapped by :class:`repro.fstore.online.OnlineFeatureServer`),

and the two are bit-identical by construction (``tests/fstore/``).

Every view carries a content-addressed **fingerprint** -- the SHA-256
of its canonical definition (name, version, ops, sources, parameters)
via :func:`repro.par.fingerprint`.  The fingerprint is embedded in
published models (``feature_view_``; see ``repro.ml.serialize``) so the
serving registry can reject a model/feature-version mismatch at load
time, and golden fingerprints under ``tests/fstore/`` fail loudly when
a definition changes without a version bump.

Lumos5G's primary groups (paper Table 6) are predefined:

* **L** -- pixelized location (``pixel_x``, ``pixel_y``);
* **M** -- mobility (speed + compass sin/cos);
* **T** -- tower geometry (distance, positional angle, mobility-angle
  sin/cos);
* **C** -- connection (past-throughput lags, radio type, LTE/NR signal
  with unavailable-sentinel NaNs, handoff flags);

composable into the evaluated combinations via
:func:`combination_view` (``"L"``, ``"L+M"``, ``"T+M"``, ``"L+M+C"``,
``"T+M+C"``).

This module is part of the **online path**: it must never import
``repro.datasets`` (``tools/check_fstore.py``); tables are duck-typed
as ``table[column] -> np.ndarray`` mappings with a length.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.fstore.ops import OPS, sentinel_threshold
from repro.par.cache import fingerprint as _fingerprint

__all__ = [
    "COMBINATIONS",
    "FSTORE_SCHEMA_VERSION",
    "FeatureMatrix",
    "FeatureSpec",
    "FeatureView",
    "GROUP_MEMBERS",
    "GROUP_VERSIONS",
    "PRIMARY_GROUPS",
    "attach_view",
    "combination_view",
    "group_view",
    "parse_combination",
    "target",
    "view_from_dict",
    "view_of",
]

#: Bump when the canonical-form layout itself changes (not when a view
#: definition does -- those bump their own group version).
FSTORE_SCHEMA_VERSION = 1

PRIMARY_GROUPS = ("L", "M", "T", "C")
COMBINATIONS = ("L", "L+M", "T+M", "L+M+C", "T+M+C")

#: Per-group definition versions.  **Bump the group's version whenever
#: its feature list, ops, sources or parameters change** -- the golden
#: fingerprints in tests/fstore/ exist to make forgetting this loud.
GROUP_VERSIONS: dict[str, int] = {"L": 1, "M": 1, "T": 1, "C": 1}

#: Table-6 membership (documentation + tests); the raw quantities each
#: group encodes, not the encoded column names.
GROUP_MEMBERS = {
    "L": ["pixel_x", "pixel_y"],
    "M": ["moving_speed", "compass_direction"],
    "T": ["ue_panel_distance", "positional_angle", "mobility_angle"],
    "C": ["past_throughput", "radio_type", "lte_signal", "nr_signal",
          "horizontal_handoff", "vertical_handoff"],
}


def parse_combination(spec: str) -> list[str]:
    """'L+M+C' -> ['L', 'M', 'C'], validating group names."""
    groups = [g.strip() for g in spec.split("+") if g.strip()]
    if not groups:
        raise ValueError("empty feature-group specification")
    for g in groups:
        if g not in PRIMARY_GROUPS:
            raise ValueError(
                f"unknown feature group {g!r}; expected one of {PRIMARY_GROUPS}"
            )
    if len(set(groups)) != len(groups):
        raise ValueError(f"duplicate groups in {spec!r}")
    return groups


@dataclass(frozen=True)
class FeatureMatrix:
    """A named feature matrix; names align with matrix columns."""

    spec: str
    names: tuple[str, ...]
    X: np.ndarray

    def __post_init__(self) -> None:
        if self.X.ndim != 2 or self.X.shape[1] != len(self.names):
            raise ValueError("column names / matrix width mismatch")


@dataclass(frozen=True)
class FeatureSpec:
    """One output feature: ``name = op(*source, **params)``."""

    name: str
    op: str
    source: tuple[str, ...]
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(
                f"unknown op {self.op!r} for feature {self.name!r}; "
                f"registered: {sorted(OPS)}"
            )

    @classmethod
    def make(cls, name: str, op: str, source, **params) -> "FeatureSpec":
        if isinstance(source, str):
            source = (source,)
        return cls(name=name, op=op, source=tuple(source),
                   params=tuple(sorted(params.items())))

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def canonical(self) -> dict:
        return {
            "name": self.name,
            "op": self.op,
            "source": list(self.source),
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_canonical(cls, data: Mapping) -> "FeatureSpec":
        return cls.make(data["name"], data["op"], tuple(data["source"]),
                        **dict(data.get("params") or {}))


@dataclass(frozen=True)
class FeatureView:
    """A named, versioned feature definition -- compiled, never edited.

    ``version`` strings are human-readable (``"M=1"``,
    ``"T=1,M=1,C=1"``); identity for machines is the content-addressed
    :meth:`fingerprint`.
    """

    name: str
    version: str
    features: tuple[FeatureSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feature names in view {self.name!r}")

    # -- identity ----------------------------------------------------------- #

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.features)

    @property
    def n_features(self) -> int:
        return len(self.features)

    def canonical(self) -> dict:
        """The JSON-safe definition the fingerprint (and payloads) use."""
        return {
            "fstore_schema": FSTORE_SCHEMA_VERSION,
            "name": self.name,
            "version": self.version,
            "features": [f.canonical() for f in self.features],
        }

    def fingerprint(self) -> str:
        """Content-addressed identity: SHA-256 of the canonical form."""
        return _fingerprint(self.canonical())

    # -- execution ----------------------------------------------------------- #

    def source_columns(self) -> tuple[str, ...]:
        """Every source column the view reads, in first-use order."""
        seen: dict[str, None] = {}
        for f in self.features:
            for s in f.source:
                seen.setdefault(s)
        return tuple(seen)

    def transform_table(self, table) -> FeatureMatrix:
        """Offline/batch execution over a whole column table."""
        cols = [
            OPS[f.op].apply_batch(
                [np.asarray(table[s]) for s in f.source], f.param_dict
            )
            for f in self.features
        ]
        X = (np.column_stack(cols) if cols
             else np.empty((len(table), 0)))
        return FeatureMatrix(spec=self.name, names=self.names, X=X)

    def transform_row(self, row: Mapping) -> np.ndarray:
        """Online execution: one request dict -> float64 feature vector.

        No table is built; each op runs on the row's scalar (length-1
        array), which is bit-identical to its batch output.  Raises
        ``KeyError`` on a missing source field and ``TypeError`` /
        ``ValueError`` on malformed values -- callers turn those into
        bad-request responses.
        """
        out = np.empty(len(self.features), dtype=np.float64)
        for i, f in enumerate(self.features):
            out[i] = OPS[f.op].apply_row(row, f.source, f.param_dict)
        return out


# --------------------------------------------------------------------------- #
# The predefined Lumos5G group views
# --------------------------------------------------------------------------- #


def _location_features() -> list[FeatureSpec]:
    return [
        FeatureSpec.make("pixel_x", "cast", "pixel_x"),
        FeatureSpec.make("pixel_y", "cast", "pixel_y"),
    ]


def _mobility_features() -> list[FeatureSpec]:
    return [
        FeatureSpec.make("moving_speed", "cast", "moving_speed_mps"),
        FeatureSpec.make("compass_sin", "cyclic_sin", "compass_direction_deg"),
        FeatureSpec.make("compass_cos", "cyclic_cos", "compass_direction_deg"),
    ]


def _tower_features() -> list[FeatureSpec]:
    return [
        FeatureSpec.make("ue_panel_distance", "cast", "ue_panel_distance_m"),
        FeatureSpec.make("positional_angle", "cast", "positional_angle_deg"),
        FeatureSpec.make("mobility_angle_sin", "cyclic_sin",
                         "mobility_angle_deg"),
        FeatureSpec.make("mobility_angle_cos", "cyclic_cos",
                         "mobility_angle_deg"),
    ]


def _connection_features(past_throughput_lags: int) -> list[FeatureSpec]:
    if past_throughput_lags < 1:
        raise ValueError("need at least one throughput lag")
    out = [
        FeatureSpec.make(f"past_throughput_{lag}", "lag",
                         ("throughput_mbps", "run_id"), lag=lag)
        for lag in range(1, past_throughput_lags + 1)
    ]
    out.append(FeatureSpec.make("radio_type_is_5g", "flag_equals",
                                "radio_type", value="5G"))
    for col in ("lte_rsrp", "lte_rsrq", "lte_rssi",
                "nr_ss_rsrp", "nr_ss_rsrq", "nr_ss_rssi"):
        out.append(FeatureSpec.make(col, "sentinel_nan", col,
                                    threshold=sentinel_threshold()))
    for col in ("horizontal_handoff", "vertical_handoff"):
        out.append(FeatureSpec.make(col, "cast", col))
    return out


_GROUP_BUILDERS = {
    "L": lambda lags: _location_features(),
    "M": lambda lags: _mobility_features(),
    "T": lambda lags: _tower_features(),
    "C": _connection_features,
}


def group_view(group: str, past_throughput_lags: int = 5) -> FeatureView:
    """The predefined view for one primary group (L, M, T or C)."""
    if group not in PRIMARY_GROUPS:
        raise ValueError(
            f"unknown feature group {group!r}; expected one of "
            f"{PRIMARY_GROUPS}"
        )
    return FeatureView(
        name=group,
        version=f"{group}={GROUP_VERSIONS[group]}",
        features=tuple(_GROUP_BUILDERS[group](past_throughput_lags)),
    )


def combination_view(spec: str, past_throughput_lags: int = 5) -> FeatureView:
    """A Table-6 combination ('L+M+C', ...) as one composite view."""
    groups = parse_combination(spec)
    features: list[FeatureSpec] = []
    for g in groups:
        features.extend(group_view(g, past_throughput_lags).features)
    version = ",".join(f"{g}={GROUP_VERSIONS[g]}" for g in groups)
    return FeatureView(name=spec, version=version, features=tuple(features))


def target(table) -> np.ndarray:
    """The regression target: current-second throughput in Mbps."""
    return np.asarray(table["throughput_mbps"], dtype=np.float64)


# --------------------------------------------------------------------------- #
# Model embedding: the training -> serving version handshake
# --------------------------------------------------------------------------- #


def view_from_dict(data: Mapping) -> FeatureView:
    """Reconstruct a view from its canonical form (payload embedding)."""
    schema = data.get("fstore_schema")
    if schema != FSTORE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported feature-view schema {schema!r} "
            f"(this build speaks {FSTORE_SCHEMA_VERSION})"
        )
    return FeatureView(
        name=str(data["name"]),
        version=str(data["version"]),
        features=tuple(FeatureSpec.from_canonical(f)
                       for f in data["features"]),
    )


def attach_view(model, view: FeatureView) -> None:
    """Stamp ``model.feature_view_`` with the view's full identity.

    The payload is self-describing (the canonical definition rides
    along), so a serving process can rebuild the online transformer
    from the model alone and the registry can verify fingerprints
    without access to this module's predefined views.
    """
    model.feature_view_ = {
        "name": view.name,
        "version": view.version,
        "fingerprint": view.fingerprint(),
        "names": list(view.names),
        "view": view.canonical(),
    }


def view_of(model) -> dict | None:
    """The ``feature_view_`` stamp of a model (or pipeline), if any."""
    return getattr(model, "feature_view_", None)
