"""The low-latency online path: one request row -> one feature vector.

``OnlineFeatureServer`` wraps a compiled :class:`FeatureView` for the
serving stack (``repro.serve``) and :class:`PredictionPipeline`:

* ``vector(row)`` maps a plain dict -- raw telemetry fields, plus the
  ``past_throughput`` history list for the C group -- to a float64
  feature vector **without allocating a table** (this module must never
  import ``repro.datasets``; ``tools/check_fstore.py`` enforces it).
  Values are bit-identical to offline materialization for the same
  logical row: both paths execute the same op kernels.
* An optional **vector cache** (the same :class:`repro.par.NpzCache`
  machinery the offline shards use) memoizes computed vectors by
  content address.  Cache *reads* are guarded by ``repro.resil``: a
  flaky read (the ``fstore.online_read`` fault seam, transient OS
  errors) is retried under a seeded backoff policy and, when retries
  exhaust, the server **falls back to recomputing** the vector -- the
  cache can only ever make serving faster, never wrong or unavailable.

Telemetry: ``fstore.online.*`` counters (requests, cache hits,
fallbacks) and the ``fstore.online.vector_s`` latency histogram.
"""

from __future__ import annotations

import time
from collections.abc import Mapping

import numpy as np

from repro import obs
from repro.fstore.views import FeatureView
from repro.par import NpzCache, fingerprint
from repro.resil import RetryExhausted, RetryPolicy, faults, retry
from repro.resil.faults import FaultError

__all__ = ["DEFAULT_READ_POLICY", "OnlineFeatureServer"]

#: Cache-read retries: fast, bounded, deterministic (seeded jitter).
DEFAULT_READ_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.005,
                                  max_delay_s=0.05, seed=0)

faults.register_point(
    "fstore.online_read",
    "raise while reading a cached online feature vector "
    "(repro.fstore.online.OnlineFeatureServer)",
)


class OnlineFeatureServer:
    """Serve feature vectors for single rows, with resilient caching."""

    def __init__(
        self,
        view: FeatureView,
        cache: NpzCache | str | None = None,
        *,
        policy: RetryPolicy | None = None,
        sleep=time.sleep,
    ):
        self.view = view
        self.cache = NpzCache(cache) if isinstance(cache, str) else cache
        self.policy = policy or DEFAULT_READ_POLICY
        self._sleep = sleep
        self._view_fp = view.fingerprint()

    @property
    def names(self) -> tuple[str, ...]:
        return self.view.names

    @property
    def n_features(self) -> int:
        return self.view.n_features

    @property
    def fingerprint(self) -> str:
        """The served view's content-addressed identity."""
        return self._view_fp

    # -- caching ------------------------------------------------------------- #

    def row_key(self, row: Mapping) -> str:
        """Content address of (view, row): equal rows share a vector."""
        return fingerprint({
            "fstore_online": 1,
            "view": self._view_fp,
            "row": {str(k): row[k] for k in row},
        })

    def _cached_vector(self, key: str) -> np.ndarray | None:
        """A cached vector, retried + verified; None means recompute.

        The fault seam fires *before* the read so chaos tests can make
        the cache path flaky; ``NpzCache.load`` itself already treats
        corrupt entries as misses.
        """
        def read():
            faults.inject("fstore.online_read", key=key)
            return self.cache.load(key)

        try:
            entry = retry(read, policy=self.policy,
                          retry_on=(FaultError, OSError),
                          label="fstore.online_read", sleep=self._sleep)
        except RetryExhausted:
            obs.inc("fstore.online.cache_fallbacks_total")
            return None
        if entry is None:
            return None
        vec = entry.get("vector", {}).get("x")
        if vec is None or len(vec) != self.view.n_features:
            obs.inc("fstore.online.cache_layout_mismatches_total")
            return None
        return np.asarray(vec, dtype=np.float64)

    # -- the request path ----------------------------------------------------- #

    def vector(self, row: Mapping) -> np.ndarray:
        """The feature vector for one request row.

        Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on missing
        or malformed fields; the serving layer maps those to bad-request
        responses rather than failures.
        """
        t0 = time.perf_counter()
        obs.inc("fstore.online.requests_total")
        key = None
        if self.cache is not None:
            key = self.row_key(row)
            cached = self._cached_vector(key)
            if cached is not None:
                obs.inc("fstore.online.cache_hits_total")
                obs.observe("fstore.online.vector_s",
                            time.perf_counter() - t0)
                return cached
        vec = self.view.transform_row(row)
        if key is not None:
            self.cache.save(key, {"vector": {"x": vec}})
        obs.observe("fstore.online.vector_s", time.perf_counter() - t0)
        return vec
