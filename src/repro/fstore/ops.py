"""The pure transform ops feature views are built from.

Every op is **stateless and deterministic**: its output is a pure
function of its input column(s) and parameters.  That is the property
the feature store's parity guarantee rests on -- the offline batch
materializer and the online single-row path both execute *the same op
implementations* (`Op.batch`), offline on full columns and online on
length-1 arrays, so the float64 outputs are bit-identical by
construction (and proven so by ``tests/fstore/``).

Two op kinds exist:

* **rowwise** -- each output row depends only on its own input row
  (cast, cyclic sin/cos, sentinel-NaN, equality flag).  These are
  chunk-safe: applying them to any row slice yields the same values as
  applying them to the whole column.
* **windowed** -- the output row looks back along its *run* (the
  past-throughput lag).  Offline these consume the full column plus run
  ids; online the request row supplies its own history (the
  ``past_throughput`` list, most recent first).

Adding an op: implement it here, register it in :data:`OPS`, and bump
the version of every view that starts using it -- the view fingerprint
(:meth:`repro.fstore.views.FeatureView.fingerprint`) covers op names
and parameters, so the golden-fingerprint tests fail loudly if a
definition changes silently.

This module is part of the **online path**: it must never import
``repro.datasets`` (``tools/check_fstore.py`` enforces that).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.ml.preprocessing import cyclic_encode
from repro.radio.signal import UNAVAILABLE

__all__ = [
    "LagStream",
    "OPS",
    "Op",
    "PAST_THROUGHPUT_FIELD",
    "lag_within_runs",
    "sentinel_threshold",
]

#: Online request-row field carrying the previous within-run throughput
#: samples, **most recent first** (``[t-1, t-2, ...]``).  The offline lag
#: op repeats a run's first sample for rows near the run head; an online
#: row with a short (or empty) history falls back the same way -- to the
#: oldest supplied sample, then to the row's own current throughput.
PAST_THROUGHPUT_FIELD = "past_throughput"


def sentinel_threshold() -> float:
    """Raw signal readings at/below this are Android's "unavailable"."""
    return UNAVAILABLE + 1.0


# --------------------------------------------------------------------------- #
# Batch kernels (shared by both execution modes)
# --------------------------------------------------------------------------- #


def _as_float(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def _cast(values: np.ndarray) -> np.ndarray:
    """Plain float64 cast -- the identity feature."""
    return _as_float(values)


def _cyclic_sin(values: np.ndarray) -> np.ndarray:
    return cyclic_encode(values)[:, 0]


def _cyclic_cos(values: np.ndarray) -> np.ndarray:
    return cyclic_encode(values)[:, 1]


def _sentinel_nan(values: np.ndarray, *, threshold: float) -> np.ndarray:
    """Map "unavailable"-sentinel readings to NaN (a missing value)."""
    raw = _as_float(values)
    return np.where(raw <= threshold, np.nan, raw)


def _flag_equals(values: np.ndarray, *, value: str) -> np.ndarray:
    """1.0 where the (string) column equals ``value``, else 0.0."""
    return (np.asarray(values) == value).astype(np.float64)


def lag_within_runs(
    values: np.ndarray, run_ids: np.ndarray, *, lag: int
) -> np.ndarray:
    """Shift ``values`` by ``lag`` rows without crossing run boundaries.

    Rows whose lag would cross into the previous run repeat the first
    value of their own run (no future leakage, no NaN) -- the paper's
    past-throughput semantics, shared verbatim with the old
    ``core.features`` implementation.
    """
    values = _as_float(values)
    run_ids = np.asarray(run_ids)
    out = np.empty_like(values)
    for run in np.unique(run_ids):
        mask = run_ids == run
        v = values[mask]
        shifted = np.concatenate([np.repeat(v[0], min(lag, len(v))),
                                  v[:-lag] if lag < len(v) else v[:0]])
        out[mask] = shifted[:len(v)]
    return out


class LagStream:
    """Chunked :func:`lag_within_runs` with bit-exact carry across seams.

    Feed chunks in row order via :meth:`apply`; rows of one run must be
    contiguous in the stream (true of every campaign log -- runs never
    interleave), which means only the *last* run of each chunk can spill
    into the next, so the carry is one small tuple: the open run's id,
    its first value, how many of its rows have been seen, and its last
    ``lag`` values.  Every output is a copy of an input value (or the
    run's first value), so the concatenated chunk outputs are
    bit-identical to the one-shot batch op -- the streaming
    materializer's parity tests assert exactly that.  A run id that
    reappears after its run closed raises ``ValueError``.
    """

    def __init__(self, *, lag: int):
        if lag < 1:
            raise ValueError("lag must be >= 1")
        self.lag = lag
        self._run = None  # open run's id
        self._first = 0.0  # its first value
        self._count = 0  # rows of it seen so far
        self._tail = np.empty(0)  # its last min(lag, count) values
        self._closed: set = set()

    def _segment(self, v: np.ndarray) -> np.ndarray:
        """Lag values for the open run's next ``len(v)`` rows."""
        m = len(v)
        if self._count == 0:
            self._first = v[0]
        ext = np.concatenate([self._tail, v])
        # Global (within-run) index of ext[0]:
        base = self._count - len(self._tail)
        q = self._count + np.arange(m)
        # Lagged rows (q >= lag) always land inside ext; the clip only
        # keeps the discarded head-branch lookups in bounds.
        idx = np.clip(q - self.lag - base, 0, len(ext) - 1)
        out = np.where(q < self.lag, self._first, ext[idx])
        self._count += m
        self._tail = ext[-min(self.lag, self._count):]
        return out

    def apply(self, values: np.ndarray, run_ids: np.ndarray) -> np.ndarray:
        values = _as_float(values)
        run_ids = np.asarray(run_ids)
        if len(values) == 0:
            return values
        out = np.empty_like(values)
        # Run-boundary positions inside this chunk, in row order.
        change = np.flatnonzero(run_ids[1:] != run_ids[:-1]) + 1
        starts = np.concatenate([[0], change, [len(values)]])
        for s, e in zip(starts[:-1], starts[1:]):
            run = run_ids[s]
            if run != self._run:
                if self._run is not None:
                    self._closed.add(self._run)
                if run in self._closed:
                    raise ValueError(
                        f"run {run!r} reappeared after closing; LagStream "
                        "needs run-contiguous chunks in row order"
                    )
                self._run = run
                self._count = 0
                self._tail = np.empty(0)
            out[s:e] = self._segment(values[s:e])
        return out


def _lag_online(row: Mapping, source: str, *, lag: int) -> float:
    """Online equivalent of :func:`lag_within_runs` for one row.

    With the row's full within-run history supplied (``past_throughput``
    = every previous sample, most recent first) this is exactly the
    offline value: ``history[lag-1]`` when the run is old enough, else
    the run's first sample (the oldest history entry, or the current
    value for a run's very first row).
    """
    history = row.get(PAST_THROUGHPUT_FIELD) or ()
    if not isinstance(history, (Sequence, np.ndarray)) or isinstance(
        history, (str, bytes)
    ):
        raise TypeError(
            f"{PAST_THROUGHPUT_FIELD!r} must be a sequence of floats "
            "(most recent first)"
        )
    if len(history) >= lag:
        return float(history[lag - 1])
    if len(history):
        return float(history[-1])
    return float(row[source])


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Op:
    """One registered transform.

    ``batch`` maps input column(s) to one float64 output column and is
    used by *both* execution modes; ``windowed`` marks ops whose batch
    form needs the run-id column and whose online form reads history
    fields off the request row.
    """

    name: str
    batch: callable
    windowed: bool = False
    online: callable | None = None
    #: Factory (``stream(**params)``) for a stateful chunked executor
    #: with ``apply(values, run_ids)``; only windowed ops need one --
    #: rowwise ops are chunk-safe and stream through ``apply_batch``.
    stream: callable | None = None

    def apply_batch(self, columns: Sequence[np.ndarray],
                    params: Mapping) -> np.ndarray:
        if self.windowed:
            values, run_ids = columns
            return self.batch(values, run_ids, **params)
        (values,) = columns
        return self.batch(values, **params)

    def make_stream(self, params: Mapping):
        """A fresh chunked executor for this op (windowed ops only)."""
        if self.stream is None:
            raise ValueError(f"op {self.name!r} has no streaming form")
        return self.stream(**params)

    def apply_row(self, row: Mapping, source: Sequence[str],
                  params: Mapping) -> float:
        """One row -> one float64 value, bit-identical to apply_batch.

        Rowwise ops route the scalar through the *same* batch kernel on
        a length-1 array, so any numpy behavior (NaN handling, sentinel
        comparison, trig) is shared rather than re-implemented.
        """
        if self.windowed:
            return self.online(row, source[0], **params)
        value = row[source[0]]
        cell = np.asarray([value]) if not isinstance(value, str) \
            else np.asarray([value], dtype=object)
        return float(self.batch(cell, **params)[0])


#: Every op a view definition may reference.
OPS: dict[str, Op] = {
    op.name: op
    for op in (
        Op("cast", _cast),
        Op("cyclic_sin", _cyclic_sin),
        Op("cyclic_cos", _cyclic_cos),
        Op("sentinel_nan", _sentinel_nan),
        Op("flag_equals", _flag_equals),
        Op("lag", lag_within_runs, windowed=True, online=_lag_online,
           stream=LagStream),
    )
}
