"""Impact-factor analysis driver: Tables 4 and 10.

For an area dataset the driver computes, for two feature settings --
(1) geolocation only and (2) geolocation + mobility factors -- the paper's
full battery: per-cell CV (mean +- std), fraction of cells passing the
normality test, average Spearman coefficient between repeated traces
(grouped by direction for setting 2), and the MAE/RMSE of simple KNN and
RF predictors.  The Table-4/10 claim it must reproduce: conditioning on
mobility *reduces variation and improves predictability*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import (
    cv_percent,
    direction_spearman_analysis,
    fraction_normal,
    group_by_cell,
)
from repro import fstore
from repro.datasets.frame import Table
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.metrics import mae, rmse
from repro.ml.preprocessing import train_test_split


@dataclass(frozen=True)
class FactorRow:
    """One row of Table 4/10."""

    setting: str
    cv_mean: float
    cv_std: float
    frac_normal: float
    spearman_mean: float
    knn_mae: float
    knn_rmse: float
    rf_mae: float
    rf_rmse: float


@dataclass(frozen=True)
class FactorAnalysis:
    area: str
    geolocation_only: FactorRow
    with_mobility: FactorRow

    def rows(self) -> list[FactorRow]:
        return [self.geolocation_only, self.with_mobility]


def _simple_models_errors(
    X: np.ndarray, y: np.ndarray, seed: int
) -> tuple[float, float, float, float]:
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, rng=seed)
    knn = KNNRegressor(n_neighbors=5).fit(X_tr, y_tr)
    knn_pred = knn.predict(X_te)
    rf = RandomForestRegressor(n_estimators=40, max_depth=12,
                               random_state=seed).fit(X_tr, y_tr)
    rf_pred = rf.predict(X_te)
    return (mae(y_te, knn_pred), rmse(y_te, knn_pred),
            mae(y_te, rf_pred), rmse(y_te, rf_pred))


def _cell_cv_stats(
    table: Table, by_direction: bool, n_direction_bins: int = 8,
    cell_size: float = 4.0, min_samples: int = 8,
) -> tuple[float, float, float]:
    """(cv_mean, cv_std, frac_normal) over grid cells.

    When ``by_direction`` is set, samples are additionally conditioned on
    the compass-direction octant before grouping, mirroring the paper's
    direction-aware re-analysis (Appendix A.1.2).  The default 4-px cell
    (~4 m) balances spatial resolution against the sample spreading that
    GPS noise causes across neighbouring pixels.
    """
    px = np.asarray(table["pixel_x"], dtype=float)
    py = np.asarray(table["pixel_y"], dtype=float)
    tput = np.asarray(table["throughput_mbps"], dtype=float)
    if by_direction:
        heading = np.asarray(table["compass_direction_deg"], dtype=float)
        octant = (heading // (360.0 / n_direction_bins)).astype(int)
        cvs, normal_flags = [], []
        for o in np.unique(octant):
            mask = octant == o
            cells = group_by_cell(px[mask], py[mask], tput[mask],
                                  cell_size=cell_size,
                                  min_samples=min_samples)
            cvs.extend(cv_percent(s) for s in cells.samples)
            if len(cells):
                normal_flags.append(
                    (fraction_normal(cells), len(cells))
                )
        if not cvs:
            raise ValueError("no populated direction-conditioned cells")
        frac_norm = (
            sum(f * n for f, n in normal_flags)
            / sum(n for _, n in normal_flags)
        )
        return float(np.mean(cvs)), float(np.std(cvs)), float(frac_norm)
    cells = group_by_cell(px, py, tput, cell_size=cell_size,
                          min_samples=min_samples)
    if not len(cells):
        raise ValueError("no populated cells")
    cvs = [cv_percent(s) for s in cells.samples]
    return (float(np.mean(cvs)), float(np.std(cvs)),
            float(fraction_normal(cells)))


def _trace_spearman(table: Table, by_direction: bool) -> float:
    """Average Spearman across repeated runs, optionally per trajectory."""
    # Only moving passes trace out a spatial profile; stationary runs sit
    # at one point and would wash the correlations out.
    moving = table.filter(np.asarray(
        [m != "stationary" for m in table["mobility_mode"]]
    ))
    groups: dict[str, list[np.ndarray]] = {}
    for key, sub in moving.groupby("trajectory", "mobility_mode").items():
        runs = sub.groupby("run_id")
        traces = [
            np.asarray(r.sort_by("timestamp_s")["throughput_mbps"],
                       dtype=float)
            for r in runs.values()
        ]
        groups["/".join(map(str, key))] = [t for t in traces if len(t) >= 30]
    groups = {k: v for k, v in groups.items() if len(v) >= 2}
    if not groups:
        return float("nan")
    result = direction_spearman_analysis(groups)
    if by_direction:
        within = [v for k, v in result.items() if k != "cross"]
        return float(np.mean(within)) if within else float("nan")
    return result.get("cross", float("nan"))


def analyze_factors(
    table: Table, area: str, seed: int = 0
) -> FactorAnalysis:
    """Produce the two Table-4/10 rows for an area dataset."""
    y = fstore.target(table)

    # Row 1: geolocation only.
    cv_m, cv_s, frac_norm = _cell_cv_stats(table, by_direction=False)
    X_loc = fstore.extract(table, "L").X
    knn_mae_, knn_rmse_, rf_mae_, rf_rmse_ = _simple_models_errors(
        X_loc, y, seed
    )
    row1 = FactorRow(
        setting="geolocation",
        cv_mean=cv_m, cv_std=cv_s, frac_normal=frac_norm,
        spearman_mean=_trace_spearman(table, by_direction=False),
        knn_mae=knn_mae_, knn_rmse=knn_rmse_,
        rf_mae=rf_mae_, rf_rmse=rf_rmse_,
    )

    # Row 2: geolocation + mobility factors (speed, direction, and the
    # tower geometry when the survey exists).
    has_survey = bool(np.isfinite(
        np.asarray(table["ue_panel_distance_m"], dtype=float)
    ).mean() > 0.5)
    X_mob = np.column_stack([
        fstore.extract(table, "L").X,
        fstore.extract(table, "M").X,
    ] + ([fstore.extract(table, "T").X] if has_survey else []))
    cv_m2, cv_s2, frac_norm2 = _cell_cv_stats(table, by_direction=True)
    knn_mae2, knn_rmse2, rf_mae2, rf_rmse2 = _simple_models_errors(
        X_mob, y, seed
    )
    row2 = FactorRow(
        setting="geolocation+mobility",
        cv_mean=cv_m2, cv_std=cv_s2, frac_normal=frac_norm2,
        spearman_mean=_trace_spearman(table, by_direction=True),
        knn_mae=knn_mae2, knn_rmse=knn_rmse2,
        rf_mae=rf_mae2, rf_rmse=rf_rmse2,
    )
    return FactorAnalysis(
        area=area, geolocation_only=row1, with_mobility=row2
    )
