"""Statistical machinery of Sec. 4 and Appendix A.1.

Per-geolocation statistics over grid-grouped throughput samples:

* coefficient of variation (CV) and the fraction of cells with CV >= 50%;
* normality testing with *either* D'Agostino-Pearson *or* Anderson-Darling
  passing (the paper's false-positive reduction);
* pairwise t-tests (Welch) and Levene tests between cells, reporting the
  fraction of significantly-different pairs (Table 5);
* Spearman rank correlation between repeated traces of a trajectory,
  grouped by direction (Fig. 10).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy import stats as sps

from repro.geo.grid import GridAccumulator


@dataclass(frozen=True)
class CellSampleSet:
    """Throughput samples grouped by grid cell."""

    cells: list[tuple[int, int]]
    samples: list[np.ndarray]

    def __len__(self) -> int:
        return len(self.cells)


def group_by_cell(
    xs, ys, values, cell_size: float = 1.0, min_samples: int = 8
) -> CellSampleSet:
    """Group samples into grid cells keeping only well-populated cells."""
    acc = GridAccumulator(cell_size=cell_size)
    acc.add_many(np.asarray(xs, float), np.asarray(ys, float),
                 np.asarray(values, float))
    cells, samples = [], []
    for cell in sorted(acc.cells()):
        s = acc.samples(cell)
        if len(s) >= min_samples:
            cells.append(cell)
            samples.append(s)
    return CellSampleSet(cells=cells, samples=samples)


def cv_percent(values: np.ndarray) -> float:
    """Coefficient of variation in percent (0 for zero-mean cells)."""
    values = np.asarray(values, dtype=float)
    mean = values.mean()
    if mean <= 0:
        return 0.0
    return 100.0 * values.std(ddof=1) / mean


def fraction_high_cv(cell_set: CellSampleSet, threshold: float = 50.0) -> float:
    """Fraction of cells whose throughput CV exceeds a threshold.

    The paper finds ~53% of Airport geolocations have CV >= 50%.
    """
    if not len(cell_set):
        raise ValueError("no populated cells")
    cvs = np.asarray([cv_percent(s) for s in cell_set.samples])
    return float(np.mean(cvs >= threshold))


def is_normal(
    values: np.ndarray, alpha: float = 0.001
) -> bool:
    """Paper's two-test normality check: pass if *either* test passes.

    D'Agostino-Pearson requires n >= 20; Anderson-Darling uses the 1%
    critical value (its most stringent tabulated level, closest to the
    paper's alpha = 0.001).
    """
    values = np.asarray(values, dtype=float)
    if len(values) < 8 or values.std() == 0:
        return False
    dagostino_ok = False
    if len(values) >= 20:
        try:
            _, p = sps.normaltest(values)
            dagostino_ok = p > alpha
        except ValueError:
            dagostino_ok = False
    # The interpolated p-value (scipy >= 1.17) clamps at 0.01 and cannot
    # resolve alpha = 0.001; stick with the tabulated critical values.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FutureWarning)
        ad = sps.anderson(values, dist="norm")
    # Largest significance-level index = most stringent critical value.
    idx = int(np.argmin(ad.significance_level))
    anderson_ok = ad.statistic < ad.critical_values[idx]
    return dagostino_ok or anderson_ok


def fraction_normal(cell_set: CellSampleSet, alpha: float = 0.001) -> float:
    """Fraction of cells whose samples look normal (Table 4 "Norm. Test")."""
    if not len(cell_set):
        raise ValueError("no populated cells")
    return float(np.mean([is_normal(s, alpha) for s in cell_set.samples]))


@dataclass(frozen=True)
class PairwiseTestResult:
    """Outcome of all-pairs location tests (Table 5)."""

    n_cells: int
    n_pairs: int
    frac_significant_ttest: float
    frac_significant_levene: float
    t_pvalues: np.ndarray
    levene_pvalues: np.ndarray


def pairwise_location_tests(
    cell_set: CellSampleSet,
    alpha: float = 0.1,
    max_pairs: int = 20000,
    rng: np.random.Generator | int | None = 0,
) -> PairwiseTestResult:
    """Welch t-test + Levene test for every pair of cells.

    Pairs are subsampled beyond ``max_pairs`` to bound cost on dense
    grids.  Significance level 0.1 follows the paper.
    """
    n = len(cell_set)
    if n < 2:
        raise ValueError("need at least two cells")
    pairs = list(combinations(range(n), 2))
    if len(pairs) > max_pairs:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        keep = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[i] for i in keep]
    t_ps, l_ps = [], []
    for i, j in pairs:
        a, b = cell_set.samples[i], cell_set.samples[j]
        t_ps.append(sps.ttest_ind(a, b, equal_var=False).pvalue)
        l_ps.append(sps.levene(a, b).pvalue)
    t_ps = np.asarray(t_ps)
    l_ps = np.asarray(l_ps)
    return PairwiseTestResult(
        n_cells=n,
        n_pairs=len(pairs),
        frac_significant_ttest=float(np.mean(t_ps < alpha)),
        frac_significant_levene=float(np.mean(l_ps < alpha)),
        t_pvalues=t_ps,
        levene_pvalues=l_ps,
    )


def trace_spearman_matrix(traces: list[np.ndarray]) -> np.ndarray:
    """Pairwise Spearman correlations between equal-length traces."""
    if len(traces) < 2:
        raise ValueError("need at least two traces")
    n = len(traces)
    out = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = sps.spearmanr(traces[i], traces[j]).statistic
            out[i, j] = out[j, i] = rho if np.isfinite(rho) else 0.0
    return out


def resample_trace(values: np.ndarray, length: int) -> np.ndarray:
    """Linear resampling of a trace to a fixed length for comparison."""
    values = np.asarray(values, dtype=float)
    if len(values) < 2:
        raise ValueError("trace too short to resample")
    src = np.linspace(0.0, 1.0, len(values))
    dst = np.linspace(0.0, 1.0, length)
    return np.interp(dst, src, values)


def mean_offdiagonal(matrix: np.ndarray) -> float:
    """Mean of off-diagonal entries (the paper's average Spearman coeff)."""
    n = len(matrix)
    if n < 2:
        raise ValueError("matrix too small")
    mask = ~np.eye(n, dtype=bool)
    return float(matrix[mask].mean())


def direction_spearman_analysis(
    traces_by_direction: dict[str, list[np.ndarray]],
    resample_to: int = 100,
) -> dict[str, float]:
    """Average same-direction vs cross-direction Spearman (Sec. 4.2).

    Returns ``{direction: mean rho within direction, ..., "cross": mean
    rho across directions}``.
    """
    resampled = {
        d: [resample_trace(t, resample_to) for t in traces]
        for d, traces in traces_by_direction.items()
    }
    out: dict[str, float] = {}
    for d, traces in resampled.items():
        if len(traces) >= 2:
            out[d] = mean_offdiagonal(trace_spearman_matrix(traces))
    directions = list(resampled)
    cross_vals = []
    for a, b in combinations(directions, 2):
        for ta in resampled[a]:
            for tb in resampled[b]:
                rho = sps.spearmanr(ta, tb).statistic
                if np.isfinite(rho):
                    cross_vals.append(rho)
    if cross_vals:
        out["cross"] = float(np.mean(cross_vals))
    return out
