"""Quantifying predictability: how much variance each context explains.

The paper's opening question -- "is mmWave 5G throughput predictable, and
to what extent?" -- is answered here directly: for nested feature-group
combinations we fit a reference model and report the explained variance
(R^2), decomposing the total throughput variance into the share each
added group accounts for plus the irreducible remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import fstore
from repro.datasets.frame import Table
from repro.ml.gbdt import GBDTRegressor
from repro.ml.preprocessing import train_test_split


def r_squared(y_true, y_pred) -> float:
    """Out-of-sample coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if len(y_true) != len(y_pred) or len(y_true) == 0:
        raise ValueError("invalid inputs")
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class PredictabilityReport:
    """R^2 ladder over nested feature-group combinations."""

    area: str
    r2_by_spec: dict[str, float]
    #: Marginal variance share contributed by each added group.
    increments: dict[str, float]

    @property
    def ceiling(self) -> float:
        """Best explained-variance achieved (the predictability extent)."""
        return max(self.r2_by_spec.values())

    @property
    def unexplained(self) -> float:
        return 1.0 - self.ceiling


DEFAULT_LADDER = ("L", "L+M", "L+M+C")


def predictability_ladder(
    table: Table,
    area: str,
    specs: tuple[str, ...] = DEFAULT_LADDER,
    seed: int = 0,
    n_estimators: int = 150,
) -> PredictabilityReport:
    """Fit GDBT per nested spec and decompose explained variance.

    The ladder must be nested (each spec a superset of the previous) for
    the increments to be interpretable.
    """
    if not specs:
        raise ValueError("need at least one spec")
    y = fstore.target(table)
    r2s: dict[str, float] = {}
    for spec in specs:
        X = fstore.extract(table, spec).X
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3,
                                                  rng=seed)
        model = GBDTRegressor(n_estimators=n_estimators, max_depth=6,
                              learning_rate=0.1, random_state=seed)
        r2s[spec] = max(r_squared(y_te, model.fit(X_tr, y_tr)
                                  .predict(X_te)), 0.0)
    increments: dict[str, float] = {}
    prev = 0.0
    for spec in specs:
        increments[spec] = r2s[spec] - prev
        prev = r2s[spec]
    return PredictabilityReport(area=area, r2_by_spec=r2s,
                                increments=increments)
