"""Statistical analysis: per-cell stats, factor analysis, comparisons."""

from repro.analysis.factors import FactorAnalysis, FactorRow, analyze_factors
from repro.analysis.handoffs import (
    HandoffAnalysis,
    HandoffPatch,
    find_handoff_patches,
)
from repro.analysis.predictability import (
    PredictabilityReport,
    predictability_ladder,
    r_squared,
)
from repro.analysis.stats import (
    CellSampleSet,
    PairwiseTestResult,
    cv_percent,
    direction_spearman_analysis,
    fraction_high_cv,
    fraction_normal,
    group_by_cell,
    is_normal,
    mean_offdiagonal,
    pairwise_location_tests,
    resample_trace,
    trace_spearman_matrix,
)

__all__ = [
    "CellSampleSet",
    "FactorAnalysis",
    "FactorRow",
    "HandoffAnalysis",
    "HandoffPatch",
    "PairwiseTestResult",
    "PredictabilityReport",
    "analyze_factors",
    "cv_percent",
    "direction_spearman_analysis",
    "fraction_high_cv",
    "find_handoff_patches",
    "fraction_normal",
    "group_by_cell",
    "is_normal",
    "mean_offdiagonal",
    "pairwise_location_tests",
    "predictability_ladder",
    "r_squared",
    "resample_trace",
    "trace_spearman_matrix",
]
