"""Handoff-patch detection (the cyan patches annotated in Fig. 9).

The paper marks corridor regions "where handoffs usually occur"; those
patches show consistently degraded throughput.  This module finds them
from telemetry: grid cells whose per-visit handoff frequency exceeds a
threshold, plus the throughput penalty measured inside vs outside the
patches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.frame import Table
from repro.geo.grid import GridAccumulator


@dataclass(frozen=True)
class HandoffPatch:
    """One high-handoff grid cell."""

    cell: tuple[int, int]
    handoff_rate: float  # handoffs per second spent in the cell
    samples: int
    mean_throughput: float


@dataclass(frozen=True)
class HandoffAnalysis:
    patches: list[HandoffPatch]
    mean_throughput_inside: float
    mean_throughput_outside: float

    @property
    def penalty_fraction(self) -> float:
        """Relative throughput shortfall inside handoff patches."""
        if not self.patches or self.mean_throughput_outside <= 0:
            return 0.0
        return 1.0 - self.mean_throughput_inside / self.mean_throughput_outside


def find_handoff_patches(
    table: Table,
    cell_size: float = 4.0,
    min_samples: int = 10,
    min_rate: float = 0.05,
) -> HandoffAnalysis:
    """Locate cells where handoffs concentrate and measure their cost.

    A cell is a patch when (horizontal + vertical handoffs) per sample
    second is at least ``min_rate``.  Returns all patches plus the mean
    throughput inside vs outside them.
    """
    px = np.asarray(table["pixel_x"], dtype=float)
    py = np.asarray(table["pixel_y"], dtype=float)
    tput = np.asarray(table["throughput_mbps"], dtype=float)
    events = (np.asarray(table["horizontal_handoff"], dtype=float)
              + np.asarray(table["vertical_handoff"], dtype=float))

    rate_acc = GridAccumulator(cell_size=cell_size)
    rate_acc.add_many(px, py, events)
    tput_acc = GridAccumulator(cell_size=cell_size)
    tput_acc.add_many(px, py, tput)

    patches: list[HandoffPatch] = []
    patch_cells: set[tuple[int, int]] = set()
    tput_means = tput_acc.mean_map(min_samples=min_samples)
    for stat in rate_acc.stats(min_samples=min_samples):
        if stat.mean >= min_rate:
            patches.append(HandoffPatch(
                cell=stat.cell,
                handoff_rate=stat.mean,
                samples=stat.count,
                mean_throughput=tput_means.get(stat.cell, float("nan")),
            ))
            patch_cells.add(stat.cell)

    inside, outside = [], []
    cx = np.floor(px / cell_size).astype(int)
    cy = np.floor(py / cell_size).astype(int)
    for i in range(len(tput)):
        (inside if (int(cx[i]), int(cy[i])) in patch_cells
         else outside).append(tput[i])
    return HandoffAnalysis(
        patches=sorted(patches, key=lambda p: -p.handoff_rate),
        mean_throughput_inside=float(np.mean(inside)) if inside else 0.0,
        mean_throughput_outside=float(np.mean(outside)) if outside else 0.0,
    )
