"""``repro.par`` -- deterministic parallel execution for the hot paths.

Three pieces (docs/parallelism.md has the full guide):

* :func:`pmap` -- a chunked, spawn-safe process-pool map with ordered
  results, serial fallback (``workers<=1`` / ``REPRO_WORKERS=0`` /
  nested calls / unpicklable functions) and worker-side obs metrics
  merged back into the parent registry;
* :mod:`repro.par.seeding` -- ``SeedSequence.spawn``-style per-task
  seed derivation keyed by task index, the contract that makes results
  bit-identical at any worker count;
* :mod:`repro.par.cache` -- config-fingerprinted ``.npz`` disk caching
  used by :func:`repro.datasets.generate.generate_datasets`.

Consumers: ``sim.collection`` (per-pass campaign fan-out), ``ml.forest``
(per-tree fitting), ``ml.model_selection`` (folds x grid points) and
``datasets.generate`` (per-area generation).  ``tools/check_par.py``
keeps raw ``multiprocessing.Pool`` use out of the rest of the library.
"""

from repro.par.cache import NpzCache, fingerprint
from repro.par.executor import (
    CONTEXT_ENV,
    WORKERS_ENV,
    default_context,
    in_worker,
    pmap,
    pmap_stream,
    resolve_workers,
)
from repro.par.seeding import rng_from, root_sequence, spawn_seeds

__all__ = [
    "CONTEXT_ENV",
    "NpzCache",
    "WORKERS_ENV",
    "default_context",
    "fingerprint",
    "in_worker",
    "pmap",
    "pmap_stream",
    "resolve_workers",
    "rng_from",
    "root_sequence",
    "spawn_seeds",
]
