"""Process-pool ``pmap`` with ordered results and obs metric merge-back.

``pmap(fn, items)`` maps a picklable, *pure* function over a task list on
a ``multiprocessing`` pool and returns results in input order.  It is the
only place in the repo allowed to own a process pool
(``tools/check_par.py`` enforces that).

Execution mode is an implementation detail, never a semantic one: task
functions must derive their randomness from the task item itself (see
:mod:`repro.par.seeding`), so serial and parallel runs are bit-identical.

Serial fallback happens when the resolved worker count is <= 1 (including
``REPRO_WORKERS=0``), when there is at most one task, when already inside
a ``pmap`` worker (no nested pools), or when ``fn`` cannot be pickled
(e.g. a lambda factory) -- the fallback is counted in
``par.serial_fallback_total`` so it never hides silently.

Worker-side telemetry: each worker starts from an empty metrics registry
(and the parent's enabled flag); per-chunk registry deltas travel back
with the results and are merged into the parent registry in chunk order,
so counters and histograms survive the process boundary.  Span traces
stay parent-side only.

Fault tolerance: a chunk whose worker raises is retried on the pool up
to ``_MAX_CHUNK_ATTEMPTS`` times, then rescued by re-executing its tasks
serially in the parent (with per-task retries).  Because every task
derives its randomness from the task item itself, a re-run is
bit-identical to the first attempt, so retries are invisible in the
results -- only in the ``resil.par.*`` counters.  The
``par.worker_crash`` fault-injection seam (:mod:`repro.resil.faults`)
fires here, keyed by ``(task index, attempt)`` so the schedule is
worker-count invariant and a retry re-rolls the decision.

Env knobs: ``REPRO_WORKERS`` (default worker count when the caller
passes ``None``; 0/1 = serial) and ``REPRO_MP_CONTEXT``
(``fork``/``spawn``/``forkserver``; default prefers ``fork`` where the
platform offers it, for start-up speed).  All task/worker functions here
are module-level, so every context -- including ``spawn`` -- works.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
from collections.abc import Callable, Iterable, Sequence

from repro import obs
from repro.resil import faults

__all__ = [
    "CONTEXT_ENV",
    "WORKERS_ENV",
    "default_context",
    "in_worker",
    "pmap",
    "pmap_stream",
    "resolve_workers",
]

WORKERS_ENV = "REPRO_WORKERS"
CONTEXT_ENV = "REPRO_MP_CONTEXT"
_WORKER_FLAG_ENV = "REPRO_PAR_IN_WORKER"

#: Chunks per worker; >1 smooths load imbalance between uneven tasks.
_CHUNKS_PER_WORKER = 4

#: Pool-side attempts per chunk before the parent rescues it serially.
_MAX_CHUNK_ATTEMPTS = 3

#: Per-task attempts on the serial path (fallback and rescue).
_MAX_TASK_ATTEMPTS = 3

faults.register_point(
    "par.worker_crash",
    "raise inside a pmap task before it runs (keyed by task index, attempt)",
)


def in_worker() -> bool:
    """True inside a ``pmap`` worker process (nested pmap goes serial)."""
    return os.environ.get(_WORKER_FLAG_ENV) == "1"


def default_context() -> str:
    """Start method: ``REPRO_MP_CONTEXT``, else fork if available."""
    explicit = os.environ.get(CONTEXT_ENV, "").strip()
    if explicit:
        return explicit
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else 1.

    Anything <= 1 (including ``REPRO_WORKERS=0``) means serial; inside a
    worker process the answer is always 1 so pools never nest.
    """
    if in_worker():
        return 1
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    return workers if workers > 1 else 1


def _worker_init(obs_enabled: bool) -> None:
    """Runs once per worker: mark the process and zero its registry.

    Under ``fork`` the child inherits a *copy* of the parent registry;
    resetting makes every returned delta count each event exactly once.
    """
    os.environ[_WORKER_FLAG_ENV] = "1"
    obs.set_enabled(obs_enabled)
    obs.get_registry().reset()


def _run_one(fn: Callable, item, index: int, attempt: int):
    """One task through the ``par.worker_crash`` fault seam."""
    faults.inject("par.worker_crash", key=(index, attempt))
    return fn(item)


def _run_task_with_retry(fn: Callable, item, index: int,
                         base_attempt: int = 0):
    """Run one task serially, retrying up to ``_MAX_TASK_ATTEMPTS`` times.

    Per-task seeding makes every re-run bit-identical, so retrying a
    transient failure (an injected fault, a flaky resource) cannot
    change results; a genuinely deterministic error still propagates
    after the last attempt.
    """
    for attempt in range(_MAX_TASK_ATTEMPTS):
        try:
            return _run_one(fn, item, index, base_attempt + attempt)
        except Exception:
            obs.inc("resil.par.task_failures_total")
            if attempt == _MAX_TASK_ATTEMPTS - 1:
                raise
            obs.inc("resil.par.task_retries_total")
    raise AssertionError("unreachable")  # pragma: no cover


class _ChunkRunner:
    """Picklable wrapper running one chunk and capturing the obs delta."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, chunk: tuple[int, int, Sequence]) -> tuple[list, dict]:
        start, attempt, items = chunk
        results = [
            _run_one(self.fn, item, start + i, attempt)
            for i, item in enumerate(items)
        ]
        registry = obs.get_registry()
        delta = registry.dump()
        registry.reset()
        return results, delta


def _chunked(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        obs.inc("par.unpicklable_probe_total")
        return False


def _run_serial(fn: Callable, items: list) -> list:
    obs.inc("par.serial_fallback_total")
    obs.inc("par.tasks_total", len(items))
    return [_run_task_with_retry(fn, item, i) for i, item in enumerate(items)]


def _rescue_chunk(fn: Callable, items: Sequence, start: int) -> tuple[list, dict]:
    """Re-execute an irrecoverable chunk serially in the parent.

    Runs after the pool already failed ``_MAX_CHUNK_ATTEMPTS`` times, so
    fault keys continue from that attempt number; the empty obs delta
    mirrors the worker protocol (parent-side metrics are already live).
    """
    obs.inc("resil.par.serial_rescues_total")
    results = [
        _run_task_with_retry(fn, item, start + i,
                             base_attempt=_MAX_CHUNK_ATTEMPTS)
        for i, item in enumerate(items)
    ]
    return results, {}


def pmap(
    fn: Callable,
    items: Iterable,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    context: str | None = None,
    label: str | None = None,
) -> list:
    """Map ``fn`` over ``items`` on a process pool; ordered results.

    ``fn`` must be pure and picklable (module-level function or
    ``functools.partial`` over one); its randomness must come from the
    task item (a seed or :class:`~numpy.random.SeedSequence`), never
    from shared state -- that is what makes results identical at any
    ``workers`` value.

    Parameters mirror the env knobs: ``workers=None`` defers to
    ``REPRO_WORKERS`` (serial when unset), ``context=None`` defers to
    ``REPRO_MP_CONTEXT``.  ``chunk_size`` only affects scheduling
    granularity, never results.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    w = min(resolve_workers(workers), n)
    if w <= 1:
        return _run_serial(fn, items)
    if not _picklable(fn):
        obs.inc("par.pickle_fallback_total")
        return _run_serial(fn, items)

    if chunk_size is None:
        chunk_size = max(1, math.ceil(n / (w * _CHUNKS_PER_WORKER)))
    chunks = _chunked(items, chunk_size)
    starts = [i * chunk_size for i in range(len(chunks))]
    runner = _ChunkRunner(fn)
    chunk_out: list = [None] * len(chunks)
    rescue: list[int] = []
    ctx = multiprocessing.get_context(context or default_context())
    name = label or getattr(fn, "__name__", type(fn).__name__)
    with obs.span("par.pmap", label=name, workers=w, tasks=n,
                  chunks=len(chunks)):
        with ctx.Pool(
            processes=w,
            initializer=_worker_init,
            initargs=(obs.enabled(),),
        ) as pool:
            attempt = 0
            pending = {
                ci: pool.apply_async(runner, ((starts[ci], 0, chunk),))
                for ci, chunk in enumerate(chunks)
            }
            while pending:
                failed: list[int] = []
                for ci in sorted(pending):
                    try:
                        chunk_out[ci] = pending[ci].get()
                    except Exception:
                        obs.inc("resil.par.chunk_failures_total")
                        failed.append(ci)
                if not failed:
                    break
                attempt += 1
                if attempt >= _MAX_CHUNK_ATTEMPTS:
                    rescue = failed
                    break
                obs.inc("resil.par.chunk_retries_total", len(failed))
                pending = {
                    ci: pool.apply_async(
                        runner, ((starts[ci], attempt, chunks[ci]),)
                    )
                    for ci in failed
                }
        # Outside the pool: chunks the pool could not finish re-run
        # serially in the parent, so one poisoned worker path can no
        # longer discard every completed pass.
        for ci in rescue:
            chunk_out[ci] = _rescue_chunk(fn, chunks[ci], starts[ci])

    results: list = []
    registry = obs.get_registry()
    merge = obs.enabled()
    for chunk_results, delta in chunk_out:
        results.extend(chunk_results)
        if merge:
            registry.merge(delta)
    obs.inc("par.tasks_total", n)
    obs.inc("par.parallel_runs_total")
    obs.set_gauge("par.last_workers", w)
    return results


#: Chunks kept in flight per worker by :func:`pmap_stream`.  Two keeps
#: every worker busy while the consumer drains the head of the line
#: without letting completed-but-unconsumed results pile up unbounded.
_STREAM_INFLIGHT_PER_WORKER = 2


def _stream_serial(fn: Callable, items: list):
    obs.inc("par.serial_fallback_total")
    for i, item in enumerate(items):
        obs.inc("par.tasks_total")
        yield _run_task_with_retry(fn, item, i)


def pmap_stream(
    fn: Callable,
    items: Iterable,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    context: str | None = None,
    label: str | None = None,
):
    """Like :func:`pmap`, but a *generator* with bounded in-flight work.

    Results arrive in input order, yet at most
    ``workers * _STREAM_INFLIGHT_PER_WORKER`` chunks exist at once --
    submitted, running, or finished-but-unconsumed.  That is the
    property out-of-core consumers (``run_campaign(store_dir=...)``)
    need: the producer fans simulation out over the pool while the
    consumer appends each result to disk and drops it, so peak memory
    is set by the window, not the campaign.

    Semantics otherwise match :func:`pmap` exactly -- per-task seeding
    keeps results bit-identical at any worker count, worker obs deltas
    merge back in chunk order (as each chunk is consumed), and a chunk
    that keeps failing on the pool is retried ``_MAX_CHUNK_ATTEMPTS``
    times then rescued serially in the parent.  The pool lives until the
    generator is exhausted or closed.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return
    w = min(resolve_workers(workers), n)
    if w <= 1 or not _picklable(fn):
        if w > 1:
            obs.inc("par.pickle_fallback_total")
        yield from _stream_serial(fn, items)
        return

    if chunk_size is None:
        chunk_size = max(1, math.ceil(n / (w * _CHUNKS_PER_WORKER)))
    chunks = _chunked(items, chunk_size)
    starts = [i * chunk_size for i in range(len(chunks))]
    runner = _ChunkRunner(fn)
    window = w * _STREAM_INFLIGHT_PER_WORKER
    registry = obs.get_registry()
    merge = obs.enabled()
    name = label or getattr(fn, "__name__", type(fn).__name__)
    ctx = multiprocessing.get_context(context or default_context())
    with obs.span("par.pmap_stream", label=name, workers=w, tasks=n,
                  chunks=len(chunks)):
        with ctx.Pool(
            processes=w,
            initializer=_worker_init,
            initargs=(obs.enabled(),),
        ) as pool:
            pending: dict[int, object] = {}
            next_submit = 0
            for ci in range(len(chunks)):
                while next_submit < len(chunks) and \
                        next_submit < ci + window:
                    pending[next_submit] = pool.apply_async(
                        runner, ((starts[next_submit], 0,
                                  chunks[next_submit]),)
                    )
                    next_submit += 1
                result = None
                for attempt in range(1, _MAX_CHUNK_ATTEMPTS + 1):
                    try:
                        result = pending.pop(ci).get()
                        break
                    except Exception:
                        obs.inc("resil.par.chunk_failures_total")
                        if attempt == _MAX_CHUNK_ATTEMPTS:
                            break
                        obs.inc("resil.par.chunk_retries_total")
                        pending[ci] = pool.apply_async(
                            runner, ((starts[ci], attempt, chunks[ci]),)
                        )
                if result is None:
                    result = _rescue_chunk(fn, chunks[ci], starts[ci])
                chunk_results, delta = result
                if merge:
                    registry.merge(delta)
                obs.inc("par.tasks_total", len(chunk_results))
                yield from chunk_results
    obs.inc("par.parallel_runs_total")
    obs.set_gauge("par.last_workers", w)
