"""Deterministic per-task seed derivation for parallel work.

The reproducibility contract of :mod:`repro.par` rests on one rule:

    **a task's random stream depends only on the root entropy and the
    task's index -- never on worker count, chunking, or scheduling.**

``spawn_seeds(root, n)`` derives ``n`` child :class:`numpy.random.SeedSequence`
objects via ``SeedSequence.spawn`` (the collision-resistant construction
NumPy recommends for parallel streams); child ``i`` always hashes the same
way, so a campaign run serially, with 2 workers, or with 16 produces
bit-identical draws per task.

String entropy (area names, stage labels) is folded in through
``zlib.crc32`` rather than ``hash()`` so seeds are stable across
processes and interpreter runs.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["root_sequence", "rng_from", "spawn_seeds"]


def _entropy_word(item) -> int:
    """One non-negative 32/64-bit entropy word from an int or a string."""
    if isinstance(item, str):
        return zlib.crc32(item.encode())
    return int(item) % (2**64)


def root_sequence(*entropy) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` from mixed int/str entropy.

    ``root_sequence(2020, "Airport")`` is stable across processes; pass it
    (or any of its spawned children) to :func:`spawn_seeds`.
    """
    if not entropy:
        raise ValueError("root_sequence needs at least one entropy item")
    return np.random.SeedSequence([_entropy_word(e) for e in entropy])


def spawn_seeds(
    root: np.random.SeedSequence | int | str | None, n: int
) -> list[np.random.SeedSequence]:
    """``n`` child seeds keyed by task index (0..n-1).

    ``root=None`` draws fresh OS entropy -- every call differs, but the
    children of one call still follow the index-keyed contract, so a
    single fit/campaign remains worker-count invariant.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if root is None:
        ss = np.random.SeedSequence()
    elif isinstance(root, np.random.SeedSequence):
        ss = root
    else:
        ss = root_sequence(root)
    return ss.spawn(n)


def rng_from(seed: np.random.SeedSequence | int) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` for one task."""
    return np.random.default_rng(seed)
