"""Content-addressed on-disk caching: config fingerprint -> ``.npz`` file.

Two pieces, both dependency-light so any layer can use them:

* :func:`fingerprint` -- a stable SHA-256 digest of an arbitrary config
  object (dataclasses recursed field by field, numpy arrays by value,
  dicts key-sorted).  Two configs share a digest iff their canonical
  forms match, so *any* field change -- and any cache-version or schema
  change folded into the payload -- produces a new cache entry rather
  than silently loading stale data.
* :class:`NpzCache` -- a directory of ``<digest>.npz`` files, each
  holding a ``{table_name: {column: array}}`` mapping plus a JSON
  manifest that preserves table/column order.  Writes go through a
  temp file + ``os.replace`` so readers never observe a half-written
  entry; a truncated/corrupt entry loads as a miss (and is deleted so
  it cannot shadow the regenerated data), never as an error.

``repro.datasets.generate`` builds its dataset cache on these; the
module itself knows nothing about Tables or campaigns.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
from collections.abc import Mapping

import numpy as np

__all__ = ["NpzCache", "fingerprint"]

#: npz entry separating table name from column name ("tbl::col").
_SEP = "::"
_MANIFEST = "__manifest__"


# --------------------------------------------------------------------------- #
# Config fingerprinting
# --------------------------------------------------------------------------- #


def _canonical(obj):
    """A JSON-serializable canonical form; raises on nothing."""
    if isinstance(obj, np.generic):
        obj = obj.item()
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # full precision, -0.0/inf/nan all distinct texts
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__qualname__, "value": obj.value}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, **body}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else list(obj)
        return [_canonical(x) for x in seq]
    # Arbitrary objects (model instances, callables): their repr is the
    # best stable identity available without importing their modules.
    return {"__repr__": f"{type(obj).__qualname__}:{obj!r}"}


def fingerprint(obj) -> str:
    """Hex SHA-256 of the canonical form of ``obj``."""
    payload = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------------------- #
# npz-backed cache directory
# --------------------------------------------------------------------------- #


class NpzCache:
    """``{digest: {table: {column: array}}}`` persisted as npz files."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def save(self, key: str, tables: Mapping[str, Mapping[str, np.ndarray]]
             ) -> pathlib.Path:
        """Atomically persist one entry; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        manifest: dict[str, list[str]] = {}
        for tname, columns in tables.items():
            if _SEP in tname:
                raise ValueError(f"table name {tname!r} contains {_SEP!r}")
            manifest[tname] = list(columns)
            for cname, col in columns.items():
                if _SEP in cname:
                    raise ValueError(
                        f"column name {cname!r} contains {_SEP!r}"
                    )
                arrays[f"{tname}{_SEP}{cname}"] = np.asarray(col)
        arrays[_MANIFEST] = np.asarray(json.dumps(manifest))
        target = self.path(key)
        tmp = target.with_name(target.name + ".tmp")
        try:
            with open(tmp, "wb") as f:
                np.savez(f, **arrays)
                # Flush user- and kernel-space buffers before the rename:
                # os.replace only makes the *name* durable, so without the
                # fsync a crash shortly after could leave a fully renamed
                # shard with truncated contents -- the one corruption
                # load() would have to detect on every future hit.
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        # Chaos seam: optionally truncate the entry we just wrote, which
        # is what a crashed writer on a non-atomic filesystem leaves
        # behind.  load() must then treat it as a miss, never an error.
        from repro.resil import faults

        if faults.corrupt("cache.corrupt", key=key):
            data = target.read_bytes()
            target.write_bytes(data[:max(1, len(data) // 2)])
        return target

    def load(self, key: str) -> dict[str, dict[str, np.ndarray]] | None:
        """The stored entry, or None on miss/corruption (never raises).

        A truncated or garbled file (killed writer on a filesystem
        without atomic replace, disk corruption, partial copy) is
        treated exactly like a miss: the bad entry is deleted so
        ``key in cache`` stops claiming it exists, and the caller's
        regenerate-then-``save`` path overwrites it with a good one.

        Deletion uses ``unlink(missing_ok=True)``, and a file that
        vanishes between the existence check and the read counts as a
        plain miss: when two processes race to regenerate the same
        corrupt entry, whichever loses the delete race must not die
        with ``FileNotFoundError`` (and must not double-count the
        corruption).
        """
        p = self.path(key)
        if not p.exists():
            return None
        try:
            with np.load(p, allow_pickle=True) as z:
                manifest = json.loads(str(z[_MANIFEST][()]))
                out: dict[str, dict[str, np.ndarray]] = {}
                for tname, cnames in manifest.items():
                    out[tname] = {
                        c: z[f"{tname}{_SEP}{c}"] for c in cnames
                    }
                return out
        except FileNotFoundError:
            # Lost a regenerate race: another process already deleted
            # this (corrupt) entry.  A miss, not a corruption event.
            from repro import obs

            obs.inc("cache.lost_races_total")
            return None
        except Exception:
            from repro import obs

            obs.inc("cache.corrupt_entries_total")
            try:
                p.unlink(missing_ok=True)
            except OSError:
                pass  # unreadable AND undeletable: still report a miss
            return None

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for p in self.root.glob("*.npz"):
            p.unlink(missing_ok=True)
            removed += 1
        return removed
