"""Lumos5G reproduction: mapping and predicting mmWave 5G throughput.

A from-scratch Python implementation of the Lumos5G system (Narayanan et
al., IMC 2020): a physically-motivated mmWave measurement simulator
standing in for the paper's Minneapolis field campaign, the full data
pipeline (telemetry, cleaning, pixelization), a from-scratch ML stack
(GBDT, random forest, KNN, ordinary kriging, harmonic mean, numpy LSTM
Seq2Seq) and the composable feature-group prediction framework itself.

Quickstart::

    from repro.datasets import generate_datasets
    from repro.core import Lumos5G

    data = generate_datasets(areas=("Airport",), passes_per_trajectory=10)
    framework = Lumos5G(data)
    result = framework.evaluate_regression("Airport", "T+M", "gdbt")
    print(result.mae, result.rmse)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "datasets",
    "env",
    "geo",
    "ml",
    "mobility",
    "net",
    "obs",
    "radio",
    "sim",
    "ue",
]
