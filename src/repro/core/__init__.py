"""Lumos5G core: feature groups, labels, pipeline, maps, importance."""

from repro.core.features import (
    COMBINATIONS,
    GROUP_MEMBERS,
    PRIMARY_GROUPS,
    FeatureExtractor,
    FeatureMatrix,
    parse_combination,
    requires_panel_survey,
)
from repro.core.importance import (
    ImportanceReport,
    entropy_of_importance,
    group_of_feature,
    summarize_importance,
)
from repro.core.labels import (
    CLASS_ORDER,
    DEFAULT_CLASSES,
    DEFAULT_THRESHOLDS,
    HIGH,
    LOW,
    MEDIUM,
    ThroughputClasses,
    classify_throughput,
)
from repro.core.mapstore import ThroughputMapBundle
from repro.core.maps import (
    MapCell,
    coverage_map,
    coverage_throughput_mismatch,
    directional_throughput_map,
    map_divergence,
    throughput_map,
)
from repro.core.pipeline import (
    ALL_MODELS,
    BASELINE_MODELS,
    FRAMEWORK_MODELS,
    ClassificationResult,
    Lumos5G,
    ModelConfig,
    RegressionResult,
)
from repro.core.transfer import (
    TransferResult,
    cross_panel_transfer,
    panel_slice,
)
from repro.core.windows import WindowSet, build_windows

__all__ = [
    "ALL_MODELS",
    "BASELINE_MODELS",
    "CLASS_ORDER",
    "COMBINATIONS",
    "ClassificationResult",
    "DEFAULT_CLASSES",
    "DEFAULT_THRESHOLDS",
    "FRAMEWORK_MODELS",
    "FeatureExtractor",
    "FeatureMatrix",
    "GROUP_MEMBERS",
    "HIGH",
    "ImportanceReport",
    "LOW",
    "Lumos5G",
    "MEDIUM",
    "MapCell",
    "ModelConfig",
    "PRIMARY_GROUPS",
    "RegressionResult",
    "ThroughputMapBundle",
    "ThroughputClasses",
    "TransferResult",
    "WindowSet",
    "build_windows",
    "classify_throughput",
    "coverage_map",
    "coverage_throughput_mismatch",
    "cross_panel_transfer",
    "directional_throughput_map",
    "entropy_of_importance",
    "group_of_feature",
    "map_divergence",
    "panel_slice",
    "parse_combination",
    "requires_panel_survey",
    "summarize_importance",
    "throughput_map",
]
