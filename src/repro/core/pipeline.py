"""The Lumos5G framework: composable models over feature groups (Sec. 5-6).

``Lumos5G`` ties the pieces together: it takes cleaned per-area datasets
(plus the pooled ``"Global"``), extracts any Table-6 feature-group
combination, trains one of the framework's models (GDBT, Seq2Seq) or a
baseline (KNN, RF, Ordinary Kriging, Harmonic Mean), and evaluates it
under the paper's protocol -- 70/30 random train/test split, MAE/RMSE for
regression, weighted-average F1 and low-class recall for classification.
Seq2Seq consumes sequence windows and is split at run granularity so no
test run leaks history into training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import fstore, obs
from repro.core.features import (
    COMBINATIONS,
    parse_combination,
    requires_panel_survey,
)
from repro.core.labels import DEFAULT_CLASSES, ThroughputClasses
from repro.core.windows import build_windows
from repro.datasets.frame import Table
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GBDTClassifier, GBDTRegressor
from repro.ml.harmonic import HarmonicMeanPredictor
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.kriging import OrdinaryKriging
from repro.ml.metrics import mae, recall_of_class, rmse, weighted_f1
from repro.ml.nn.seq2seq import Seq2SeqRegressor
from repro.ml.preprocessing import split_by_run, train_test_split

FRAMEWORK_MODELS = ("gdbt", "seq2seq")
BASELINE_MODELS = ("knn", "rf", "ok", "hm")
ALL_MODELS = FRAMEWORK_MODELS + BASELINE_MODELS


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters for every model family.

    ``paper()`` mirrors the published settings (8000 estimators / depth 8 /
    lr 0.01; 2-layer 128-unit Seq2Seq, length-20 windows); ``fast()`` is
    the laptop-scale profile used by tests and benchmarks -- same
    architecture families, smaller budgets.
    """

    gdbt_estimators: int = 200
    gdbt_depth: int = 6
    gdbt_learning_rate: float = 0.08
    gdbt_min_samples_leaf: int = 10
    seq2seq_hidden: int = 32
    seq2seq_layers: int = 1
    seq2seq_epochs: int = 12
    seq2seq_batch: int = 256
    seq2seq_lr: float = 3e-3
    input_len: int = 20
    output_len: int = 1
    window_stride: int = 2
    knn_k: int = 5
    rf_estimators: int = 60
    rf_depth: int = 12
    hm_window: int = 5
    past_throughput_lags: int = 5

    @classmethod
    def paper(cls) -> "ModelConfig":
        return cls(
            gdbt_estimators=8000, gdbt_depth=8, gdbt_learning_rate=0.01,
            seq2seq_hidden=128, seq2seq_layers=2, seq2seq_epochs=2000,
            seq2seq_batch=256, input_len=20, output_len=1, window_stride=1,
        )

    @classmethod
    def fast(cls) -> "ModelConfig":
        return cls(
            gdbt_estimators=60, gdbt_depth=5, gdbt_learning_rate=0.15,
            seq2seq_hidden=24, seq2seq_layers=1, seq2seq_epochs=6,
            window_stride=4, rf_estimators=25,
        )


@dataclass
class RegressionResult:
    area: str
    feature_group: str
    model: str
    mae: float
    rmse: float
    n_train: int
    n_test: int
    y_true: np.ndarray = field(repr=False)
    y_pred: np.ndarray = field(repr=False)


@dataclass
class ClassificationResult:
    area: str
    feature_group: str
    model: str
    weighted_f1: float
    recall_low: float
    n_train: int
    n_test: int
    y_true: np.ndarray = field(repr=False)
    y_pred: np.ndarray = field(repr=False)


def _window_strata(
    window_run_ids: np.ndarray, row_strata: np.ndarray,
    row_run_ids: np.ndarray,
) -> np.ndarray:
    """Map per-row strata to per-window strata via each window's run id."""
    run_to_stratum = {}
    for run, stratum in zip(row_run_ids, row_strata):
        run_to_stratum.setdefault(run, stratum)
    return np.asarray([run_to_stratum[r] for r in window_run_ids],
                      dtype=object)


class Lumos5G:
    """Composable 5G throughput prediction over one or more area datasets."""

    def __init__(
        self,
        datasets: dict[str, Table],
        config: ModelConfig | None = None,
        classes: ThroughputClasses | None = None,
        seed: int = 42,
    ):
        if not datasets:
            raise ValueError("need at least one dataset")
        self.datasets = datasets
        self.config = config or ModelConfig()
        self.classes = classes or DEFAULT_CLASSES
        self.seed = seed
        self._matrix_cache: dict[tuple[str, str], tuple] = {}

    # ------------------------------------------------------------------ #

    @property
    def areas(self) -> list[str]:
        return list(self.datasets)

    def table(self, area: str) -> Table:
        try:
            return self.datasets[area]
        except KeyError:
            raise KeyError(
                f"no dataset for area {area!r}; have {self.areas}"
            ) from None

    def supports(self, area: str, spec: str) -> bool:
        """Whether a feature group is available for an area.

        T-group features require the panel survey; the Loop has none
        (matching the dashes in Tables 7-8).
        """
        if not requires_panel_survey(spec):
            return True
        t = self.table(area)
        dist = np.asarray(t["ue_panel_distance_m"], dtype=float)
        # Pooled datasets (Global) mix surveyed and unsurveyed areas; T
        # models train on the surveyed subset (the unsurveyed rows are
        # dropped), so any sizeable surveyed fraction suffices.
        return bool(np.isfinite(dist).mean() > 0.1)

    def _rows_for_spec(self, area: str, spec: str) -> np.ndarray:
        """Row mask: T specs drop rows without panel-survey features."""
        t = self.table(area)
        if requires_panel_survey(spec):
            return np.isfinite(np.asarray(t["ue_panel_distance_m"],
                                          dtype=float))
        return np.ones(len(t), dtype=bool)

    def feature_view(self, spec: str) -> fstore.FeatureView:
        """The feature-store view this framework trains/serves ``spec`` with.

        One definition for every consumer: :meth:`design` materializes
        it offline, :meth:`publish` stamps its fingerprint into the
        model, and the serving stack executes the same view online.
        """
        return fstore.combination_view(
            spec, self.config.past_throughput_lags
        )

    def design(self, area: str, spec: str):
        """(X, y, run_ids, feature_names) for an area/feature-group pair."""
        key = (area, spec)
        if key not in self._matrix_cache:
            t = self.table(area).filter(self._rows_for_spec(area, spec))
            fm = fstore.extract(t, spec, self.config.past_throughput_lags)
            y = fstore.target(t)
            run_ids = np.asarray(t["run_id"])
            self._matrix_cache[key] = (fm.X, y, run_ids, fm.names)
        return self._matrix_cache[key]

    def _run_strata(self, area: str, spec: str) -> np.ndarray:
        """Per-row stratum labels (trajectory x mode) aligned with design()."""
        t = self.table(area).filter(self._rows_for_spec(area, spec))
        return np.asarray([
            f"{traj}/{mode}" for traj, mode
            in zip(t["trajectory"], t["mobility_mode"])
        ], dtype=object)

    # ------------------------------------------------------------------ #

    def _make_regressor(self, model: str, spec: str):
        cfg = self.config
        if model == "gdbt":
            return GBDTRegressor(
                n_estimators=cfg.gdbt_estimators, max_depth=cfg.gdbt_depth,
                learning_rate=cfg.gdbt_learning_rate,
                min_samples_leaf=cfg.gdbt_min_samples_leaf,
                random_state=self.seed,
            )
        if model == "knn":
            return KNNRegressor(n_neighbors=cfg.knn_k)
        if model == "rf":
            return RandomForestRegressor(
                n_estimators=cfg.rf_estimators, max_depth=cfg.rf_depth,
                random_state=self.seed,
            )
        if model == "ok":
            if parse_combination(spec) != ["L"]:
                raise ValueError(
                    "Ordinary Kriging interpolates coordinates and only "
                    "applies to the L feature group (paper Table 9: NA)"
                )
            return OrdinaryKriging(random_state=self.seed)
        raise ValueError(f"unknown row-model {model!r}")

    def _make_classifier(self, model: str):
        cfg = self.config
        if model == "gdbt":
            return GBDTClassifier(
                n_estimators=cfg.gdbt_estimators, max_depth=cfg.gdbt_depth,
                learning_rate=cfg.gdbt_learning_rate,
                min_samples_leaf=cfg.gdbt_min_samples_leaf,
                random_state=self.seed,
            )
        if model == "knn":
            return KNNClassifier(n_neighbors=cfg.knn_k)
        if model == "rf":
            return RandomForestClassifier(
                n_estimators=cfg.rf_estimators, max_depth=cfg.rf_depth,
                random_state=self.seed,
            )
        raise ValueError(f"unknown native classifier {model!r}")

    # -- evaluation entry points -------------------------------------------- #

    def evaluate_regression(
        self, area: str, spec: str, model: str
    ) -> RegressionResult:
        """Train + evaluate one (area, feature group, model) cell of Table 8."""
        with obs.span("pipeline.evaluate_regression",
                      area=area, spec=spec, model=model):
            if model == "seq2seq":
                y_true, y_pred, n_tr, n_te = self._run_seq2seq(area, spec)
            elif model == "hm":
                y_true, y_pred, n_tr, n_te = self._run_harmonic(area)
            else:
                X, y, _, _ = self.design(area, spec)
                X_tr, X_te, y_tr, y_te = train_test_split(
                    X, y, test_size=0.3, rng=self.seed
                )
                with obs.span("model.fit", model=model, n_train=len(X_tr)):
                    reg = self._make_regressor(model, spec).fit(X_tr, y_tr)
                with obs.span("model.predict", model=model,
                              n_test=len(X_te)):
                    y_pred = reg.predict(X_te)
                y_true = y_te
                n_tr, n_te = len(X_tr), len(X_te)
        obs.inc("pipeline.evaluations_total")
        obs.set_gauge("pipeline.n_train", n_tr)
        obs.set_gauge("pipeline.n_test", n_te)
        return RegressionResult(
            area=area, feature_group=spec, model=model,
            mae=mae(y_true, y_pred), rmse=rmse(y_true, y_pred),
            n_train=n_tr, n_test=n_te, y_true=y_true, y_pred=y_pred,
        )

    def evaluate_classification(
        self, area: str, spec: str, model: str
    ) -> ClassificationResult:
        """Train + evaluate one cell of Table 7.

        GDBT/KNN/RF classify natively; Seq2Seq, OK and HM regress and the
        predicted throughput is post-processed into classes, exactly as
        the paper does for its Seq2Seq models.
        """
        with obs.span("pipeline.evaluate_classification",
                      area=area, spec=spec, model=model):
            if model in ("seq2seq", "ok", "hm"):
                reg = self.evaluate_regression(area, spec, model)
                labels_true = self.classes.classify(reg.y_true)
                labels_pred = self.classes.classify(reg.y_pred)
                n_tr, n_te = reg.n_train, reg.n_test
            else:
                X, y, _, _ = self.design(area, spec)
                labels = self.classes.classify(y)
                X_tr, X_te, l_tr, l_te = train_test_split(
                    X, labels, test_size=0.3, rng=self.seed
                )
                with obs.span("model.fit", model=model, n_train=len(X_tr)):
                    clf = self._make_classifier(model).fit(X_tr, l_tr)
                with obs.span("model.predict", model=model,
                              n_test=len(X_te)):
                    labels_pred = clf.predict(X_te)
                labels_true = l_te
                n_tr, n_te = len(X_tr), len(X_te)
        obs.inc("pipeline.evaluations_total")
        obs.set_gauge("pipeline.n_train", n_tr)
        obs.set_gauge("pipeline.n_test", n_te)
        return ClassificationResult(
            area=area, feature_group=spec, model=model,
            weighted_f1=weighted_f1(labels_true, labels_pred,
                                    labels=self.classes.names),
            recall_low=recall_of_class(labels_true, labels_pred,
                                       self.classes.low_class),
            n_train=n_tr, n_test=n_te,
            y_true=labels_true, y_pred=labels_pred,
        )

    # -- model runners -------------------------------------------------------- #

    def _run_seq2seq(self, area: str, spec: str):
        cfg = self.config
        X, y, run_ids, _ = self.design(area, spec)
        # The LSTM cannot digest NaN (missing signal reports); impute with
        # the column mean, the standard neutral value after standardization.
        if np.isnan(X).any():
            col_mean = np.nanmean(X, axis=0)
            col_mean = np.where(np.isfinite(col_mean), col_mean, 0.0)
            X = np.where(np.isnan(X), col_mean[None, :], X)
        # The window's past-target channel subsumes explicit C lags; keep
        # both for parity with the paper's "sequence of feature values".
        windows = build_windows(
            X, y, run_ids,
            input_len=cfg.input_len, output_len=cfg.output_len,
            stride=cfg.window_stride,
        )
        if len(windows) < 10:
            raise ValueError(
                f"not enough sequence windows for {area}/{spec} "
                f"({len(windows)}); collect more passes"
            )
        train_mask, test_mask = split_by_run(
            windows.run_ids, test_size=0.3, rng=self.seed,
            strata=_window_strata(windows.run_ids,
                                  self._run_strata(area, spec), run_ids),
        )
        model = Seq2SeqRegressor(
            hidden_dim=cfg.seq2seq_hidden,
            encoder_layers=cfg.seq2seq_layers,
            epochs=cfg.seq2seq_epochs,
            batch_size=cfg.seq2seq_batch,
            learning_rate=cfg.seq2seq_lr,
            random_state=self.seed,
        )
        with obs.span("model.fit", model="seq2seq",
                      n_train=int(train_mask.sum())):
            model.fit(windows.X[train_mask], windows.y[train_mask])
        with obs.span("model.predict", model="seq2seq",
                      n_test=int(test_mask.sum())):
            pred = np.atleast_2d(model.predict(windows.X[test_mask]).T).T
        true = windows.y[test_mask]
        return (true[:, 0], np.clip(pred[:, 0], 0.0, None),
                int(train_mask.sum()), int(test_mask.sum()))

    def _run_harmonic(self, area: str):
        cfg = self.config
        t = self.table(area)
        tput = np.asarray(t["throughput_mbps"], dtype=float)
        run_ids = np.asarray(t["run_id"])
        hm = HarmonicMeanPredictor(window=cfg.hm_window)
        pred = hm.predict_sessions(tput, run_ids)
        # HM needs no training; score on the same 30% the other models use.
        _, test_idx = train_test_split(
            np.arange(len(tput)), test_size=0.3, rng=self.seed
        )[:2]
        return tput[test_idx], pred[test_idx], 0, len(test_idx)

    # -- framework extras ------------------------------------------------------ #

    def evaluate_multi_horizon(
        self, area: str, spec: str, output_len: int = 10
    ) -> dict[int, float]:
        """Per-step MAE of a Seq2Seq model predicting the next k seconds.

        The paper distinguishes short-term (next second) from longer-term
        prediction (Sec. 5.2); Seq2Seq's decoder emits an arbitrary-length
        output sequence, so one model covers every horizon up to
        ``output_len``.  Returns ``{horizon_step (1-based): MAE}``.
        """
        cfg = self.config
        X, y, run_ids, _ = self.design(area, spec)
        if np.isnan(X).any():
            col_mean = np.nanmean(X, axis=0)
            col_mean = np.where(np.isfinite(col_mean), col_mean, 0.0)
            X = np.where(np.isnan(X), col_mean[None, :], X)
        windows = build_windows(
            X, y, run_ids, input_len=cfg.input_len,
            output_len=output_len, stride=cfg.window_stride,
        )
        if len(windows) < 10:
            raise ValueError("not enough windows for horizon evaluation")
        train_mask, test_mask = split_by_run(
            windows.run_ids, test_size=0.3, rng=self.seed,
            strata=_window_strata(windows.run_ids,
                                  self._run_strata(area, spec), run_ids),
        )
        model = Seq2SeqRegressor(
            hidden_dim=cfg.seq2seq_hidden,
            encoder_layers=cfg.seq2seq_layers,
            epochs=cfg.seq2seq_epochs,
            batch_size=cfg.seq2seq_batch,
            learning_rate=cfg.seq2seq_lr,
            random_state=self.seed,
        )
        model.fit(windows.X[train_mask], windows.y[train_mask])
        pred = np.clip(model.predict(windows.X[test_mask]), 0.0, None)
        true = windows.y[test_mask]
        return {
            k + 1: mae(true[:, k], pred[:, k]) for k in range(output_len)
        }

    def fit_regressor(self, area: str, spec: str, model: str = "gdbt"):
        """Train a deployable regressor on ALL of an area's data.

        Unlike :meth:`evaluate_regression` (which holds out a test set),
        this is the call an application makes to build the model it will
        actually ship -- e.g. the predictor behind an ABR policy or a
        :class:`~repro.core.mapstore.ThroughputMapBundle`.
        """
        X, y, _, _ = self.design(area, spec)
        with obs.span("model.fit", model=model, n_train=len(X)):
            return self._make_regressor(model, spec).fit(X, y)

    def fit_classifier(self, area: str, spec: str, model: str = "gdbt"):
        """Train a deployable throughput-class classifier on all data."""
        X, y, _, _ = self.design(area, spec)
        labels = self.classes.classify(y)
        with obs.span("model.fit", model=model, n_train=len(X)):
            return self._make_classifier(model).fit(X, labels)

    def publish(
        self,
        registry,
        area: str,
        spec: str,
        model: str = "gdbt",
        task: str = "regression",
        name: str | None = None,
    ) -> tuple[str, int]:
        """Train a deployable model on all data and version it for serving.

        The handoff from training to the online path: fits via
        :meth:`fit_regressor` / :meth:`fit_classifier` and saves the
        result into a :class:`repro.serve.ModelRegistry`.  Returns the
        registry ``(name, version)``; ``repro serve`` loads it from
        there.

        A frozen drift baseline over the training-time prediction
        stream (``drift_baseline_``; serialized with the model) rides
        along so the serving telemetry plane can watch live predictions
        for distribution shift (docs/observability.md).

        The feature-store view the model was trained on is stamped into
        the payload too (``feature_view_``, including its
        content-addressed fingerprint; docs/feature_store.md): the
        registry refuses to serve the model against a different feature
        version, and the serving stack rebuilds the online transformer
        straight from the stamp.
        """
        from repro.obs.telemetry import attach_baseline

        X, _, _, _ = self.design(area, spec)
        if task == "regression":
            est = self.fit_regressor(area, spec, model)
            train_preds = np.asarray(est.predict(X), dtype=float)
        elif task == "classification":
            est = self.fit_classifier(area, spec, model)
            # Classifier drift is watched on max class probability --
            # the same scalar the serving loop extracts per response.
            train_preds = np.max(
                np.asarray(est.predict_proba(X), dtype=float), axis=1
            )
        else:
            raise ValueError(
                f"unknown task {task!r}; use 'regression' or "
                "'classification'"
            )
        attach_baseline(est, train_preds)
        fstore.attach_view(est, self.feature_view(spec))
        if name is None:
            name = "-".join(
                part.lower().replace("+", "")
                for part in (area, spec, model, task[:3])
            )
        version = registry.save(name, est)
        obs.inc("pipeline.models_published_total")
        return name, version

    def feature_importance(
        self, area: str, spec: str
    ) -> dict[str, float]:
        """GDBT global feature importance for Fig. 22."""
        X, y, _, names = self.design(area, spec)
        X_tr, _, y_tr, _ = train_test_split(X, y, test_size=0.3, rng=self.seed)
        reg = self._make_regressor("gdbt", spec).fit(X_tr, y_tr)
        return dict(zip(names, reg.feature_importances_.tolist()))

    def evaluation_grid(
        self,
        areas: list[str] | None = None,
        specs: list[str] | None = None,
        models: list[str] | None = None,
        task: str = "regression",
    ) -> list:
        """Sweep the full (area x feature-group x model) grid of a table."""
        areas = areas or self.areas
        specs = specs or list(COMBINATIONS)
        models = models or list(FRAMEWORK_MODELS)
        out = []
        for area in areas:
            for spec in specs:
                if not self.supports(area, spec):
                    continue
                for model in models:
                    if model == "ok" and spec != "L":
                        continue
                    if task == "regression":
                        out.append(self.evaluate_regression(area, spec, model))
                    else:
                        out.append(
                            self.evaluate_classification(area, spec, model)
                        )
        return out
