"""Feature groups and their composition (Table 6).

Lumos5G's central design idea is *composability*: features are organized
into primary groups that can be combined per use case --

* **L** (location): pixelized longitude/latitude coordinates;
* **M** (mobility): UE moving speed + compass direction;
* **T** (tower): UE-panel distance, positional angle, mobility angle
  (location-agnostic; requires the panel survey);
* **C** (connection): past throughput measurements plus PHY features
  (radio type, LTE and 5G signal strength, handoff flags);

and the paper's evaluated combinations **L+M**, **T+M**, **L+M+C**,
**T+M+C**.  :class:`FeatureExtractor` materializes any combination from a
cleaned dataset table; circular quantities (compass, angles) are encoded
as sin/cos pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.datasets.frame import Table
from repro.ml.preprocessing import cyclic_encode
from repro.radio.signal import UNAVAILABLE

PRIMARY_GROUPS = ("L", "M", "T", "C")
COMBINATIONS = ("L", "L+M", "T+M", "L+M+C", "T+M+C")

#: Table-6 membership, used by tests and documentation.
GROUP_MEMBERS = {
    "L": ["pixel_x", "pixel_y"],
    "M": ["moving_speed", "compass_direction"],
    "T": ["ue_panel_distance", "positional_angle", "mobility_angle"],
    "C": ["past_throughput", "radio_type", "lte_signal", "nr_signal",
          "horizontal_handoff", "vertical_handoff"],
}


def parse_combination(spec: str) -> list[str]:
    """'L+M+C' -> ['L', 'M', 'C'], validating group names."""
    groups = [g.strip() for g in spec.split("+") if g.strip()]
    if not groups:
        raise ValueError("empty feature-group specification")
    for g in groups:
        if g not in PRIMARY_GROUPS:
            raise ValueError(
                f"unknown feature group {g!r}; expected one of {PRIMARY_GROUPS}"
            )
    if len(set(groups)) != len(groups):
        raise ValueError(f"duplicate groups in {spec!r}")
    return groups


def requires_panel_survey(spec: str) -> bool:
    """T-group features need surveyed panel locations (absent at the Loop)."""
    return "T" in parse_combination(spec)


@dataclass(frozen=True)
class FeatureMatrix:
    """A named feature matrix; names align with matrix columns."""

    spec: str
    names: tuple[str, ...]
    X: np.ndarray

    def __post_init__(self) -> None:
        if self.X.ndim != 2 or self.X.shape[1] != len(self.names):
            raise ValueError("column names / matrix width mismatch")


class FeatureExtractor:
    """Materialize feature-group combinations from a cleaned table.

    Parameters
    ----------
    past_throughput_lags:
        Number of previous per-second throughput samples included by the
        C group (within-run lags; the first seconds of a run repeat the
        earliest available sample).
    """

    def __init__(self, past_throughput_lags: int = 5):
        if past_throughput_lags < 1:
            raise ValueError("need at least one throughput lag")
        self.past_throughput_lags = past_throughput_lags

    # -- per-group column builders ----------------------------------------- #

    def _location(self, t: Table) -> tuple[list[str], list[np.ndarray]]:
        return (
            ["pixel_x", "pixel_y"],
            [np.asarray(t["pixel_x"], dtype=float),
             np.asarray(t["pixel_y"], dtype=float)],
        )

    def _mobility(self, t: Table) -> tuple[list[str], list[np.ndarray]]:
        sc = cyclic_encode(t["compass_direction_deg"])
        return (
            ["moving_speed", "compass_sin", "compass_cos"],
            [np.asarray(t["moving_speed_mps"], dtype=float),
             sc[:, 0], sc[:, 1]],
        )

    def _tower(self, t: Table) -> tuple[list[str], list[np.ndarray]]:
        theta_m = cyclic_encode(t["mobility_angle_deg"])
        return (
            ["ue_panel_distance", "positional_angle",
             "mobility_angle_sin", "mobility_angle_cos"],
            [np.asarray(t["ue_panel_distance_m"], dtype=float),
             np.asarray(t["positional_angle_deg"], dtype=float),
             theta_m[:, 0], theta_m[:, 1]],
        )

    def _connection(self, t: Table) -> tuple[list[str], list[np.ndarray]]:
        names: list[str] = []
        cols: list[np.ndarray] = []
        tput = np.asarray(t["throughput_mbps"], dtype=float)
        run_ids = np.asarray(t["run_id"])
        for lag in range(1, self.past_throughput_lags + 1):
            names.append(f"past_throughput_{lag}")
            cols.append(_lag_within_runs(tput, run_ids, lag))
        names.append("radio_type_is_5g")
        cols.append(np.asarray(
            [1.0 if v == "5G" else 0.0 for v in t["radio_type"]]
        ))
        for col in ("lte_rsrp", "lte_rsrq", "lte_rssi",
                    "nr_ss_rsrp", "nr_ss_rsrq", "nr_ss_rssi"):
            names.append(col)
            raw = np.asarray(t[col], dtype=float)
            # Android's "unavailable" sentinel becomes NaN (missing).
            cols.append(np.where(raw <= UNAVAILABLE + 1.0, np.nan, raw))
        for col in ("horizontal_handoff", "vertical_handoff"):
            names.append(col)
            cols.append(np.asarray(t[col], dtype=float))
        return names, cols

    # -- public API ---------------------------------------------------------- #

    def extract(self, table: Table, spec: str) -> FeatureMatrix:
        """Build the feature matrix for a combination like ``"T+M+C"``."""
        builders = {
            "L": self._location,
            "M": self._mobility,
            "T": self._tower,
            "C": self._connection,
        }
        with obs.span("features.extract", spec=spec, rows=len(table)):
            names: list[str] = []
            cols: list[np.ndarray] = []
            for group in parse_combination(spec):
                n, c = builders[group](table)
                names.extend(n)
                cols.extend(c)
            X = np.column_stack(cols) if cols else np.empty((len(table), 0))
        obs.inc("features.extractions_total")
        obs.inc("features.rows_total", len(table))
        return FeatureMatrix(spec=spec, names=tuple(names), X=X)

    def target(self, table: Table) -> np.ndarray:
        """The regression target: current-second throughput in Mbps."""
        return np.asarray(table["throughput_mbps"], dtype=float)


def _lag_within_runs(
    values: np.ndarray, run_ids: np.ndarray, lag: int
) -> np.ndarray:
    """Shift ``values`` by ``lag`` without crossing run boundaries.

    Rows whose lag would cross into the previous run repeat the first
    value of their own run (no future leakage, no NaN).
    """
    out = np.empty_like(values)
    for run in np.unique(run_ids):
        mask = run_ids == run
        v = values[mask]
        shifted = np.concatenate([np.repeat(v[0], min(lag, len(v))),
                                  v[:-lag] if lag < len(v) else v[:0]])
        out[mask] = shifted[:len(v)]
    return out
