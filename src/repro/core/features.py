"""Feature groups and their composition (Table 6) -- the training facade.

Lumos5G's central design idea is *composability*: features are organized
into primary groups that can be combined per use case --

* **L** (location): pixelized longitude/latitude coordinates;
* **M** (mobility): UE moving speed + compass direction;
* **T** (tower): UE-panel distance, positional angle, mobility angle
  (location-agnostic; requires the panel survey);
* **C** (connection): past throughput measurements plus PHY features
  (radio type, LTE and 5G signal strength, handoff flags);

and the paper's evaluated combinations **L+M**, **T+M**, **L+M+C**,
**T+M+C**.

The *definitions* live in the feature store (:mod:`repro.fstore`,
docs/feature_store.md) as declarative, versioned feature views with
content-addressed fingerprints, executed identically offline (batch
materialization) and online (single-row serving).
:class:`FeatureExtractor` is the thin training-side facade over those
views, kept for its established API; new code should consume
``repro.fstore`` directly -- ``tools/check_fstore.py`` keeps further
``FeatureExtractor`` use out of the library so the store stays the
single source of feature truth.
"""

from __future__ import annotations

from repro.datasets.frame import Table
from repro.fstore.ops import lag_within_runs
from repro.fstore.views import (
    COMBINATIONS,
    FeatureMatrix,
    GROUP_MEMBERS,
    PRIMARY_GROUPS,
    combination_view,
    parse_combination,
    target as _target,
)

__all__ = [
    "COMBINATIONS",
    "FeatureExtractor",
    "FeatureMatrix",
    "GROUP_MEMBERS",
    "PRIMARY_GROUPS",
    "parse_combination",
    "requires_panel_survey",
]


def requires_panel_survey(spec: str) -> bool:
    """T-group features need surveyed panel locations (absent at the Loop)."""
    return "T" in parse_combination(spec)


class FeatureExtractor:
    """Materialize feature-group combinations from a cleaned table.

    A facade over :func:`repro.fstore.combination_view`: the same view
    definitions (and therefore bit-identical values) that the offline
    materializer and the online serving path execute.

    Parameters
    ----------
    past_throughput_lags:
        Number of previous per-second throughput samples included by the
        C group (within-run lags; the first seconds of a run repeat the
        earliest available sample).
    """

    def __init__(self, past_throughput_lags: int = 5):
        if past_throughput_lags < 1:
            raise ValueError("need at least one throughput lag")
        self.past_throughput_lags = past_throughput_lags

    def view(self, spec: str):
        """The :class:`repro.fstore.FeatureView` behind a combination."""
        return combination_view(spec, self.past_throughput_lags)

    def extract(self, table: Table, spec: str) -> FeatureMatrix:
        """Build the feature matrix for a combination like ``"T+M+C"``."""
        from repro import fstore

        return fstore.extract(table, spec, self.past_throughput_lags)

    def target(self, table: Table):
        """The regression target: current-second throughput in Mbps."""
        return _target(table)


#: Kept under its historical name for existing callers/tests; the
#: canonical implementation is :func:`repro.fstore.ops.lag_within_runs`.
def _lag_within_runs(values, run_ids, lag):
    return lag_within_runs(values, run_ids, lag=lag)
