"""Throughput classes for the classification formulation (Sec. 5.2).

The paper uses three levels: *low* below 300 Mbps, *medium* 300-700 Mbps,
*high* above 700 Mbps, chosen because 5G throughput routinely fluctuates
+-200 Mbps from uncontrollable effects.  The thresholds are parameters so
the "other choices of throughput classes" the paper alludes to can be
studied (see the class-threshold ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

LOW, MEDIUM, HIGH = "low", "medium", "high"
DEFAULT_THRESHOLDS = (300.0, 700.0)
CLASS_ORDER = (LOW, MEDIUM, HIGH)


@dataclass(frozen=True)
class ThroughputClasses:
    """A monotone binning of throughput (Mbps) into named classes."""

    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    names: tuple[str, ...] = CLASS_ORDER

    def __post_init__(self) -> None:
        if len(self.names) != len(self.thresholds) + 1:
            raise ValueError("need exactly one more name than thresholds")
        if list(self.thresholds) != sorted(self.thresholds):
            raise ValueError("thresholds must be ascending")

    def classify(self, throughput_mbps) -> np.ndarray:
        """Vector of class names for throughput values."""
        tput = np.asarray(throughput_mbps, dtype=float)
        bins = np.digitize(tput, self.thresholds)
        names = np.asarray(self.names, dtype=object)
        return names[bins]

    def class_index(self, throughput_mbps) -> np.ndarray:
        """Integer class codes 0..k-1 (0 = lowest class)."""
        return np.digitize(np.asarray(throughput_mbps, dtype=float),
                           self.thresholds)

    @property
    def low_class(self) -> str:
        """The class whose recall the paper reports (below 300 Mbps)."""
        return self.names[0]


DEFAULT_CLASSES = ThroughputClasses()


def classify_throughput(throughput_mbps) -> np.ndarray:
    """Classify with the paper's default 300/700 Mbps thresholds."""
    return DEFAULT_CLASSES.classify(throughput_mbps)
