"""Feature-importance analysis (Fig. 22, Appendix A.2).

GDBT's split gains give a global importance score per feature (normalized
to sum to 1).  The paper's headline observation: *no single feature or
feature group dominates* -- the interplay of connection status, the two
UE-panel angles, distance and speed collectively drives prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import GROUP_MEMBERS

#: Feature-name prefixes -> owning primary group, for aggregation.
_PREFIX_TO_GROUP = {
    "pixel_x": "L", "pixel_y": "L",
    "moving_speed": "M", "compass": "M",
    "ue_panel_distance": "T", "positional_angle": "T", "mobility_angle": "T",
    "past_throughput": "C", "radio_type": "C", "lte_": "C", "nr_": "C",
    "horizontal_handoff": "C", "vertical_handoff": "C",
}


def group_of_feature(name: str) -> str:
    """Map a materialized feature column to its primary group."""
    for prefix, group in _PREFIX_TO_GROUP.items():
        if name.startswith(prefix):
            return group
    raise ValueError(f"feature {name!r} belongs to no known group")


@dataclass(frozen=True)
class ImportanceReport:
    """Per-feature and per-group normalized importances."""

    per_feature: dict[str, float]
    per_group: dict[str, float]

    @property
    def dominant_feature_share(self) -> float:
        """Importance of the single most important feature."""
        return max(self.per_feature.values()) if self.per_feature else 0.0

    @property
    def dominant_group_share(self) -> float:
        return max(self.per_group.values()) if self.per_group else 0.0

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        return sorted(self.per_feature.items(), key=lambda kv: -kv[1])[:k]


def summarize_importance(per_feature: dict[str, float]) -> ImportanceReport:
    """Aggregate raw per-feature importances into an :class:`ImportanceReport`."""
    total = sum(per_feature.values())
    if total <= 0:
        norm = dict.fromkeys(per_feature, 0.0)
    else:
        norm = {k: v / total for k, v in per_feature.items()}
    per_group: dict[str, float] = dict.fromkeys(GROUP_MEMBERS, 0.0)
    for name, value in norm.items():
        per_group[group_of_feature(name)] += value
    per_group = {g: v for g, v in per_group.items() if v > 0.0}
    return ImportanceReport(per_feature=norm, per_group=per_group)


def entropy_of_importance(per_feature: dict[str, float]) -> float:
    """Shannon entropy (nats) of the importance distribution.

    Higher entropy = importance spread across features; the paper's
    "no single feature dominates" corresponds to entropy well above 0.
    """
    p = np.asarray([v for v in per_feature.values() if v > 0.0], dtype=float)
    if p.sum() <= 0:
        return 0.0
    p = p / p.sum()
    return float(-(p * np.log(p)).sum())
