"""Downloadable throughput-map bundles -- "Lumos5G in action" (Fig. 4).

The paper envisions UEs downloading, per area, a *throughput map
augmented with ML models* which apps query through an API with their
current context.  :class:`ThroughputMapBundle` is that artifact:

* the area's throughput map cells (pixel grid, mean + count per cell,
  optionally per direction octant);
* a trained GDBT regressor over L+M features, serialized inline;
* a ``predict(pixel_x, pixel_y, heading_deg, speed_mps)`` API with a
  graceful fallback chain (model -> directional cell -> cell -> global
  mean) so the app always gets an estimate.

Bundles serialize to a single JSON document -- exactly the thing a CDN
would hand to Alice's, Bob's, Charlie's and Daisy's phones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro import fstore
from repro.datasets.frame import Table
from repro.ml.gbdt import GBDTRegressor
from repro.ml.preprocessing import cyclic_encode
from repro.ml.serialize import gbdt_from_dict, gbdt_to_dict

BUNDLE_VERSION = 1
N_DIRECTION_BINS = 8


def _octant(heading_deg: float) -> int:
    return int((heading_deg % 360.0) // (360.0 / N_DIRECTION_BINS))


@dataclass
class ThroughputMapBundle:
    """A serializable area bundle: map cells + embedded model."""

    area: str
    cell_size_px: float
    global_mean: float
    #: (px, py) -> [mean, count]
    cells: dict[tuple[int, int], tuple[float, int]]
    #: (px, py, octant) -> [mean, count]
    directional_cells: dict[tuple[int, int, int], tuple[float, int]]
    model: GBDTRegressor | None = None
    min_cell_samples: int = 3

    # -- construction ---------------------------------------------------- #

    @classmethod
    def build(
        cls,
        table: Table,
        area: str,
        cell_size_px: float = 4.0,
        train_model: bool = True,
        n_estimators: int = 150,
        seed: int = 0,
    ) -> "ThroughputMapBundle":
        """Build the bundle from a cleaned campaign table."""
        px = np.floor(np.asarray(table["pixel_x"], dtype=float)
                      / cell_size_px).astype(int)
        py = np.floor(np.asarray(table["pixel_y"], dtype=float)
                      / cell_size_px).astype(int)
        tput = np.asarray(table["throughput_mbps"], dtype=float)
        heading = np.asarray(table["compass_direction_deg"], dtype=float)
        octants = np.asarray([_octant(h) for h in heading])

        cells: dict[tuple[int, int], tuple[float, int]] = {}
        directional: dict[tuple[int, int, int], tuple[float, int]] = {}
        for key in set(zip(px.tolist(), py.tolist())):
            mask = (px == key[0]) & (py == key[1])
            cells[key] = (float(tput[mask].mean()), int(mask.sum()))
            for o in np.unique(octants[mask]):
                sub = mask & (octants == o)
                directional[(key[0], key[1], int(o))] = (
                    float(tput[sub].mean()), int(sub.sum())
                )

        model = None
        if train_model:
            fm = fstore.extract(table, "L+M")
            model = GBDTRegressor(
                n_estimators=n_estimators, max_depth=6, learning_rate=0.1,
                random_state=seed,
            ).fit(fm.X, tput)
        return cls(
            area=area,
            cell_size_px=cell_size_px,
            global_mean=float(tput.mean()),
            cells=cells,
            directional_cells=directional,
            model=model,
        )

    # -- the app-facing API ------------------------------------------------ #

    def predict(
        self,
        pixel_x: float,
        pixel_y: float,
        heading_deg: float = 0.0,
        speed_mps: float = 1.4,
    ) -> float:
        """Expected throughput (Mbps) for a context.

        Uses the embedded model when the query lands on mapped ground;
        off-map queries (where the model would be extrapolating) and
        model-less bundles fall back to the direction-conditioned cell
        mean, then the cell mean, then the area-wide mean -- an estimate
        always comes back.
        """
        key = (int(pixel_x // self.cell_size_px),
               int(pixel_y // self.cell_size_px))
        if self.model is not None and key in self.cells:
            sc = cyclic_encode([heading_deg])[0]
            X = np.asarray([[pixel_x, pixel_y, speed_mps, sc[0], sc[1]]])
            return float(max(self.model.predict(X)[0], 0.0))
        return self.lookup(pixel_x, pixel_y, heading_deg)

    def lookup(
        self, pixel_x: float, pixel_y: float,
        heading_deg: float | None = None,
    ) -> float:
        """Map-only estimate (no model), with the fallback chain."""
        key = (int(pixel_x // self.cell_size_px),
               int(pixel_y // self.cell_size_px))
        if heading_deg is not None:
            dkey = (*key, _octant(heading_deg))
            entry = self.directional_cells.get(dkey)
            if entry and entry[1] >= self.min_cell_samples:
                return entry[0]
        entry = self.cells.get(key)
        if entry and entry[1] >= self.min_cell_samples:
            return entry[0]
        return self.global_mean

    def coverage_fraction(self, points) -> float:
        """Fraction of query points whose cell has map data."""
        hits = 0
        for x, y in points:
            key = (int(x // self.cell_size_px),
                   int(y // self.cell_size_px))
            hits += key in self.cells
        return hits / max(len(points), 1)

    # -- persistence --------------------------------------------------------- #

    def to_json(self) -> str:
        return json.dumps({
            "bundle_version": BUNDLE_VERSION,
            "area": self.area,
            "cell_size_px": self.cell_size_px,
            "global_mean": self.global_mean,
            "cells": [[k[0], k[1], v[0], v[1]]
                      for k, v in sorted(self.cells.items())],
            "directional_cells": [
                [k[0], k[1], k[2], v[0], v[1]]
                for k, v in sorted(self.directional_cells.items())
            ],
            "model": (gbdt_to_dict(self.model)
                      if self.model is not None else None),
        })

    @classmethod
    def from_json(cls, payload: str) -> "ThroughputMapBundle":
        data = json.loads(payload)
        if data.get("bundle_version") != BUNDLE_VERSION:
            raise ValueError("unsupported bundle version")
        return cls(
            area=data["area"],
            cell_size_px=float(data["cell_size_px"]),
            global_mean=float(data["global_mean"]),
            cells={(int(x), int(y)): (float(m), int(n))
                   for x, y, m, n in data["cells"]},
            directional_cells={
                (int(x), int(y), int(o)): (float(m), int(n))
                for x, y, o, m, n in data["directional_cells"]
            },
            model=(gbdt_from_dict(data["model"])
                   if data["model"] is not None else None),
        )

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path) -> "ThroughputMapBundle":
        with open(path) as f:
            return cls.from_json(f.read())
