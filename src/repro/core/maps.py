"""Throughput maps: the "Google traffic map for 5G" (Figs. 3, 6, 9).

Two map flavours appear in the paper:

* a **coverage map** -- per cell, the fraction of samples with 5G
  connectivity (Fig. 3b), which the paper shows is *insufficient* to
  understand throughput;
* a **throughput map** -- per cell, the mean measured throughput
  (Figs. 3c, 6, 9), optionally conditioned on mobility direction, which
  is the artifact Lumos5G advocates building.

Maps are produced over pixelized coordinates or local meters via
:class:`~repro.geo.grid.GridAccumulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.frame import Table
from repro.geo.geometry import angle_difference
from repro.geo.grid import GridAccumulator, throughput_color_level


@dataclass(frozen=True)
class MapCell:
    x: float
    y: float
    value: float
    count: int
    color_level: int


def _accumulate(
    table: Table, values: np.ndarray, cell_size: float
) -> GridAccumulator:
    acc = GridAccumulator(cell_size=cell_size)
    acc.add_many(
        np.asarray(table["pixel_x"], dtype=float),
        np.asarray(table["pixel_y"], dtype=float),
        values,
    )
    return acc


def throughput_map(
    table: Table, cell_size: float = 2.0, min_samples: int = 3
) -> list[MapCell]:
    """Mean-throughput heatmap cells over pixelized coordinates."""
    values = np.asarray(table["throughput_mbps"], dtype=float)
    acc = _accumulate(table, values, cell_size)
    return [
        MapCell(
            x=(s.cell[0] + 0.5) * cell_size,
            y=(s.cell[1] + 0.5) * cell_size,
            value=s.mean,
            count=s.count,
            color_level=throughput_color_level(s.mean),
        )
        for s in acc.stats(min_samples=min_samples)
    ]


def coverage_map(
    table: Table, cell_size: float = 2.0, min_samples: int = 3
) -> list[MapCell]:
    """Per-cell fraction of samples with 5G connectivity (Fig. 3b)."""
    is_5g = np.asarray(
        [1.0 if v == "5G" else 0.0 for v in table["radio_type"]]
    )
    acc = _accumulate(table, is_5g, cell_size)
    return [
        MapCell(
            x=(s.cell[0] + 0.5) * cell_size,
            y=(s.cell[1] + 0.5) * cell_size,
            value=s.mean,
            count=s.count,
            color_level=int(round(s.mean * 5)),
        )
        for s in acc.stats(min_samples=min_samples)
    ]


def directional_throughput_map(
    table: Table,
    direction_deg: float,
    tolerance_deg: float = 45.0,
    cell_size: float = 2.0,
    min_samples: int = 3,
) -> list[MapCell]:
    """Throughput map restricted to one travel direction (Fig. 9 NB vs SB)."""
    headings = np.asarray(table["compass_direction_deg"], dtype=float)
    keep = np.asarray([
        angle_difference(h, direction_deg) <= tolerance_deg for h in headings
    ])
    return throughput_map(table.filter(keep), cell_size, min_samples)


def map_divergence(
    map_a: list[MapCell], map_b: list[MapCell]
) -> float:
    """Mean |difference| of cell values over the cells two maps share.

    Quantifies the paper's observation that the NB and SB heatmaps are
    "highly different" despite covering the same ground.
    """
    index_a = {(c.x, c.y): c.value for c in map_a}
    common = [
        abs(index_a[(c.x, c.y)] - c.value)
        for c in map_b if (c.x, c.y) in index_a
    ]
    if not common:
        raise ValueError("maps share no cells")
    return float(np.mean(common))


def coverage_throughput_mismatch(
    table: Table, cell_size: float = 2.0,
    good_coverage: float = 0.9, low_throughput_mbps: float = 300.0,
) -> float:
    """Fraction of well-covered cells whose mean throughput is still low.

    The paper's argument for throughput maps over coverage maps: plenty
    of cells show solid 5G connectivity yet poor throughput.
    """
    cov = {(c.x, c.y): c.value for c in coverage_map(table, cell_size)}
    tput = {(c.x, c.y): c.value for c in throughput_map(table, cell_size)}
    covered = [xy for xy, v in cov.items() if v >= good_coverage and xy in tput]
    if not covered:
        return 0.0
    low = sum(1 for xy in covered if tput[xy] < low_throughput_mbps)
    return low / len(covered)
