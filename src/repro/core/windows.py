"""Sequence windowing for Seq2Seq models.

The Seq2Seq models consume a *history* of feature vectors and predict the
next k throughput values (paper: input and output sequence length 20).
``build_windows`` slides a window along each measurement run independently
-- windows never straddle run boundaries -- and returns the tensors the
:class:`~repro.ml.nn.seq2seq.Seq2SeqRegressor` expects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WindowSet:
    """Windows plus bookkeeping to map predictions back to rows."""

    X: np.ndarray  # (n, T, D)
    y: np.ndarray  # (n, k)
    #: Row index (into the source table) of each window's first target step.
    target_rows: np.ndarray
    #: Run id of each window.
    run_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.X)


def build_windows(
    features: np.ndarray,
    target: np.ndarray,
    run_ids: np.ndarray,
    input_len: int = 20,
    output_len: int = 1,
    stride: int = 1,
    include_past_target: bool = True,
) -> WindowSet:
    """Slide (input_len -> output_len) windows within each run.

    A window uses feature rows ``t-input_len .. t-1`` (optionally augmented
    with the concurrent throughput as an extra channel -- the "history"
    the Seq2Seq model conditions on) to predict throughput at rows
    ``t .. t+output_len-1``.
    """
    features = np.asarray(features, dtype=float)
    target = np.asarray(target, dtype=float)
    run_ids = np.asarray(run_ids)
    if len(features) != len(target) or len(features) != len(run_ids):
        raise ValueError("features/target/run_ids length mismatch")
    if input_len < 1 or output_len < 1 or stride < 1:
        raise ValueError("window parameters must be positive")

    xs, ys, rows, runs = [], [], [], []
    for run in np.unique(run_ids):
        mask = run_ids == run
        idx = np.nonzero(mask)[0]
        F = features[idx]
        y = target[idx]
        if include_past_target:
            F = np.column_stack([F, y])
        n = len(idx)
        for start in range(0, n - input_len - output_len + 1, stride):
            t = start + input_len
            xs.append(F[start:t])
            ys.append(y[t:t + output_len])
            rows.append(idx[t])
            runs.append(run)
    if not xs:
        d = features.shape[1] + (1 if include_past_target else 0)
        return WindowSet(
            X=np.empty((0, input_len, d)),
            y=np.empty((0, output_len)),
            target_rows=np.empty(0, dtype=int),
            run_ids=np.empty(0, dtype=run_ids.dtype),
        )
    return WindowSet(
        X=np.stack(xs),
        y=np.stack(ys),
        target_rows=np.asarray(rows, dtype=int),
        run_ids=np.asarray(runs),
    )
