"""Transferability analysis (Sec. 6.2).

Tower-based (T) features are location-agnostic: they describe the UE from
the panel's perspective (distance + two angles) rather than by absolute
coordinates.  A model trained against one panel should therefore transfer
to another panel in a similar environment.  The paper demonstrates this at
the Airport: a T+M model trained on North-panel data scores w-avgF1 0.71
on South-panel data overall, rising to 0.91 within 25 m of the panel where
the two environments are most alike.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import fstore
from repro.core.labels import DEFAULT_CLASSES, ThroughputClasses
from repro.datasets.frame import Table
from repro.ml.gbdt import GBDTClassifier
from repro.ml.metrics import weighted_f1


@dataclass
class TransferResult:
    """Outcome of a cross-panel transfer experiment."""

    train_panel: int
    test_panel: int
    overall_f1: float
    near_f1: float  # within `near_distance_m` of the panel
    near_distance_m: float
    n_train: int
    n_test: int


def panel_slice(table: Table, panel_id: int) -> Table:
    """Rows where the UE was connected to the given 5G panel."""
    mask = (np.asarray(table["cell_id"], dtype=int) == panel_id) & np.asarray(
        [v == "5G" for v in table["radio_type"]]
    )
    return table.filter(mask)


def cross_panel_transfer(
    table: Table,
    train_panel: int,
    test_panel: int,
    spec: str = "T+M",
    near_distance_m: float = 25.0,
    classes: ThroughputClasses | None = None,
    past_throughput_lags: int = 5,
    gdbt_kwargs: dict | None = None,
) -> TransferResult:
    """Train a classifier on one panel's samples, test on another's."""
    classes = classes or DEFAULT_CLASSES
    train_t = panel_slice(table, train_panel)
    test_t = panel_slice(table, test_panel)
    if len(train_t) < 50 or len(test_t) < 50:
        raise ValueError(
            f"too few samples (train={len(train_t)}, test={len(test_t)}) "
            "for a transfer experiment"
        )
    X_train = fstore.extract(train_t, spec, past_throughput_lags).X
    y_train = classes.classify(fstore.target(train_t))
    X_test = fstore.extract(test_t, spec, past_throughput_lags).X
    y_test = classes.classify(fstore.target(test_t))

    kwargs = {"n_estimators": 120, "max_depth": 5, "learning_rate": 0.1}
    kwargs.update(gdbt_kwargs or {})
    clf = GBDTClassifier(**kwargs).fit(X_train, y_train)
    pred = clf.predict(X_test)
    overall = weighted_f1(y_test, pred, labels=classes.names)

    dist = np.asarray(test_t["ue_panel_distance_m"], dtype=float)
    near = dist <= near_distance_m
    if near.sum() >= 10:
        near_f1 = weighted_f1(y_test[near], pred[near], labels=classes.names)
    else:
        near_f1 = float("nan")
    return TransferResult(
        train_panel=train_panel,
        test_panel=test_panel,
        overall_f1=overall,
        near_f1=near_f1,
        near_distance_m=near_distance_m,
        n_train=len(train_t),
        n_test=len(test_t),
    )
