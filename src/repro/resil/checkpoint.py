"""Crash-safe, content-addressed checkpointing for long campaigns.

A :class:`CheckpointStore` persists the result of each independently
seeded unit of work (a campaign pass) as it completes, under a directory
named by a :func:`repro.par.fingerprint` of everything that determines
the results (config, area, schema, store version).  A process killed
mid-campaign therefore loses only in-flight passes; re-running the same
campaign with the same checkpoint root skips completed passes and -- by
the per-task seeding contract -- produces output bit-identical to an
uninterrupted run.

Because the address is a content hash, a changed config simply resolves
to a different subdirectory: stale checkpoints can never leak into a new
campaign, and the resume-vs-fresh decision needs no bookkeeping files.
Entries ride on :class:`repro.par.cache.NpzCache`, so writes are atomic
(temp file + rename) and a truncated entry -- the writer died mid-write
-- loads as a miss and is simply recomputed.

The checkpoint root comes from an explicit argument or the
``REPRO_CHECKPOINT_DIR`` environment variable (:func:`resolve_dir`);
with neither set, checkpointing is off and callers run exactly the
pre-existing in-memory path.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections.abc import Mapping

import numpy as np

from repro import obs
from repro.par.cache import NpzCache

__all__ = ["CHECKPOINT_ENV", "CheckpointStore", "resolve_dir"]

CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"

#: The one table name used inside each npz entry.
_TABLE = "part"


def resolve_dir(
    explicit: str | os.PathLike | None = None,
) -> pathlib.Path | None:
    """The checkpoint root: explicit argument, else ``REPRO_CHECKPOINT_DIR``.

    ``None`` (checkpointing disabled) when neither is set.
    """
    root = explicit or os.environ.get(CHECKPOINT_ENV, "").strip()
    return pathlib.Path(root) if root else None


class CheckpointStore:
    """Indexed part checkpoints under ``<root>/<fingerprint>/``."""

    def __init__(self, root: str | os.PathLike, fingerprint: str):
        if not fingerprint:
            raise ValueError("fingerprint must be a non-empty digest")
        self.fingerprint = fingerprint
        self.root = pathlib.Path(root) / fingerprint
        self._cache = NpzCache(self.root)

    @staticmethod
    def key(index: int) -> str:
        return f"part{int(index):06d}"

    def save(self, index: int, columns: Mapping[str, np.ndarray]) -> None:
        """Atomically persist one completed part's column arrays."""
        self._cache.save(self.key(index), {_TABLE: dict(columns)})
        obs.inc("resil.checkpoint.saves_total")

    def load(self, index: int) -> dict[str, np.ndarray] | None:
        """The stored columns, or None on miss/corruption (never raises)."""
        entry = self._cache.load(self.key(index))
        if entry is None:
            return None
        obs.inc("resil.checkpoint.hits_total")
        return entry[_TABLE]

    def save_json(self, index: int, state: dict) -> None:
        """Atomically persist one JSON-serializable state blob.

        The rollout controller checkpoints its stage machine through
        here: the state dict rides as a uint8 byte column, so it gets
        the same atomic-write / corrupt-entry-is-a-miss guarantees as
        array checkpoints.
        """
        raw = np.frombuffer(
            json.dumps(state, sort_keys=True).encode(), dtype=np.uint8
        )
        self.save(index, {"json": raw.copy()})

    def load_json(self, index: int) -> dict | None:
        """The stored state dict, or None on miss/corruption."""
        columns = self.load(index)
        if columns is None or "json" not in columns:
            return None
        try:
            return json.loads(bytes(columns["json"]).decode())
        except (ValueError, UnicodeDecodeError):
            return None

    def completed(self, n: int) -> list[int]:
        """Indices in ``range(n)`` with an entry on disk (unvalidated)."""
        return [i for i in range(n) if self.key(i) in self._cache]

    def clear(self) -> int:
        """Delete this campaign's checkpoints; returns files removed."""
        return self._cache.clear()
