"""Retry with capped exponential backoff, deadlines, circuit breakers.

Three primitives, all deterministic and all emitting ``repro.obs``
counters (docs/robustness.md has the full semantics):

* :func:`retry` + :class:`RetryPolicy` -- re-run a callable under a
  capped exponential backoff schedule whose jitter is *seeded*, not
  drawn from a global RNG: ``RetryPolicy(seed=s).schedule()`` is the
  same tuple in every process at any worker count, so retrying never
  perturbs the repo's determinism contract.  Exhaustion raises
  :class:`RetryExhausted` chained to the last error.
* :class:`Deadline` -- a monotonic-clock budget; ``check()`` raises
  :class:`DeadlineExceeded` once the budget is spent.  Serving uses it
  to bound per-request latency.
* :class:`CircuitBreaker` -- the classic closed -> open -> half-open
  state machine: ``failure_threshold`` consecutive failures open the
  circuit, ``allow()`` short-circuits callers while open, and after
  ``reset_timeout_s`` a limited number of half-open probes decide
  whether to close it again.

This module is the only place in ``src/repro/`` allowed to sleep in a
retry loop (``tools/check_resil.py`` enforces that); callers inject a
``sleep`` callable in tests so no test ever actually waits.
"""

from __future__ import annotations

import time
import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro import obs
from repro.obs.telemetry.context import current_trace_id
from repro.resil.faults import unit_hash

_LOG = obs.get_logger("resil.retry")

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "RetryExhausted",
    "RetryPolicy",
    "retry",
]


# --------------------------------------------------------------------------- #
# Retry with deterministic backoff
# --------------------------------------------------------------------------- #


class RetryExhausted(RuntimeError):
    """Every attempt failed; ``last`` (== ``__cause__``) is the final error."""

    def __init__(self, label: str, attempts: int, last: BaseException):
        self.label = label
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"{label or 'operation'} failed after {attempts} attempt(s): "
            f"{last!r}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded, deterministic jitter.

    Attempt ``k`` (1-based) failing sleeps ``delay_s(k)`` before attempt
    ``k + 1``: ``base_delay_s * multiplier**(k-1)`` capped at
    ``max_delay_s``, then scaled by a jitter factor in ``[1 - jitter,
    1 + jitter)`` derived by hashing ``(seed, k)`` -- the same schedule
    in every process, unlike ``random.random()`` jitter.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay_s,
                  self.base_delay_s * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            u = unit_hash(self.seed, "retry.jitter", attempt)
            raw *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return float(min(max(raw, 0.0), self.max_delay_s))

    def schedule(self) -> tuple[float, ...]:
        """Every backoff delay this policy can sleep, in order."""
        return tuple(self.delay_s(a) for a in range(1, self.max_attempts))


def retry(
    fn: Callable,
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple = (Exception,),
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
    deadline: "Deadline | None" = None,
) -> object:
    """Call ``fn()`` under ``policy``, retrying exceptions in ``retry_on``.

    Non-matching exceptions propagate immediately.  When the final
    attempt fails, :class:`RetryExhausted` is raised from the last
    error.  An optional :class:`Deadline` is checked before every
    attempt, converting a slow death into a prompt
    :class:`DeadlineExceeded`.
    """
    policy = policy or RetryPolicy()
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None:
            deadline.check(label)
        try:
            result = fn()
        except retry_on as exc:
            obs.inc("resil.retry.failures_total")
            if attempt == policy.max_attempts:
                obs.inc("resil.retry.exhausted_total")
                _LOG.warning("retry exhausted",
                             trace_id=current_trace_id() or "-",
                             label=label or "-", attempts=attempt,
                             error=str(exc))
                raise RetryExhausted(label, attempt, exc) from exc
            obs.inc("resil.retry.retries_total")
            _LOG.debug("retrying after failure",
                       trace_id=current_trace_id() or "-",
                       label=label or "-", attempt=attempt,
                       error=str(exc))
            sleep(policy.delay_s(attempt))
            continue
        if attempt > 1:
            obs.inc("resil.retry.recoveries_total")
        return result
    raise AssertionError("unreachable")  # pragma: no cover


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #


class DeadlineExceeded(TimeoutError):
    """A time budget ran out (request deadline, retry deadline)."""


class Deadline:
    """A monotonic time budget: ``Deadline(0.5).check()`` for 500 ms."""

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ValueError("deadline must be >= 0 seconds")
        self.seconds = float(seconds)
        self._clock = clock
        self._t0 = clock()

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    @property
    def remaining_s(self) -> float:
        return self.seconds - self.elapsed_s

    @property
    def expired(self) -> bool:
        return self.remaining_s <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            obs.inc("resil.deadline_exceeded_total")
            suffix = f" in {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded{suffix} "
                f"(elapsed {self.elapsed_s:.3f}s)"
            )


# --------------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------------- #

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """The breaker is open; the protected call was not attempted."""


class CircuitBreaker:
    """Closed -> open -> half-open failure isolation, thread-safe.

    ``failure_threshold`` *consecutive* failures trip the breaker open;
    while open, :meth:`allow` returns False (and counts a short
    circuit).  After ``reset_timeout_s`` the breaker turns half-open and
    admits up to ``half_open_max_calls`` probe calls: one success closes
    it (and resets the failure count), one failure re-opens it.  The
    clock is injectable so state transitions are unit-testable without
    sleeping.
    """

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0

    def _poll(self) -> None:
        """Open -> half-open once the reset timeout elapses (lock held)."""
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout_s:
            self._state = HALF_OPEN
            self._half_open_inflight = 0
            obs.inc("resil.breaker.half_opens_total")

    @property
    def state(self) -> str:
        with self._lock:
            self._poll()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a protected call may proceed right now."""
        with self._lock:
            self._poll()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and \
                    self._half_open_inflight < self.half_open_max_calls:
                self._half_open_inflight += 1
                return True
        obs.inc("resil.breaker.short_circuits_total")
        return False

    def record_success(self) -> None:
        with self._lock:
            reopened = self._state != CLOSED
            self._state = CLOSED
            self._failures = 0
            self._half_open_inflight = 0
        if reopened:
            obs.inc("resil.breaker.closes_total")
            _LOG.info("circuit closed",
                      trace_id=current_trace_id() or "-",
                      breaker=self.name or "-")

    def record_failure(self) -> None:
        with self._lock:
            self._poll()
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN
                or (self._state == CLOSED
                    and self._failures >= self.failure_threshold)
            )
            if tripped:
                self._state = OPEN
                self._opened_at = self._clock()
                self._half_open_inflight = 0
        if tripped:
            obs.inc("resil.breaker.opens_total")
            _LOG.warning("circuit opened",
                         trace_id=current_trace_id() or "-",
                         breaker=self.name or "-",
                         failures=self._failures)

    def call(self, fn: Callable) -> object:
        """Run ``fn()`` under the breaker; raise CircuitOpenError if open."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'!s} is open"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
