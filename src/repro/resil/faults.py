"""Deterministic, seeded fault injection for chaos testing.

Faults are configured by the ``REPRO_FAULTS`` environment variable (or
programmatically via :func:`configure`) as a comma-separated spec of
``point:rate`` pairs::

    REPRO_FAULTS="par.worker_crash:0.1,cache.corrupt:0.05,serve.model_load:0.2"

Each *injection point* is a named seam in the library (registered with
:func:`register_point`; see :func:`registered_points` for the catalog).
Instrumented seams call :func:`inject` -- which raises :class:`FaultError`
when the schedule says so -- or :func:`corrupt`, which returns True and
lets the seam damage its own artifact (e.g. truncate a cache file).

The schedule is **deterministic**: whether the fault fires for a given
``(point, key, occurrence)`` triple is a pure hash of those values and
the seed (``REPRO_FAULTS_SEED``, default 2020).  Same seed, same spec ->
same fault schedule, so chaos tests reproduce exactly.  Two properties
follow from the keying:

* call sites that pass a stable ``key`` (a task index, a model version)
  get decisions independent of call *order* -- and therefore independent
  of worker count or scheduling;
* repeat queries for the same ``(point, key)`` hash in a fresh
  *occurrence* counter, so a retried operation re-rolls the dice instead
  of failing forever (rate 1.0 still always fires).

With ``REPRO_FAULTS`` unset every call is a cheap no-op, so the seams
cost nothing in production runs and the no-fault goldens stay
bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections.abc import Mapping

from repro import obs

__all__ = [
    "DEFAULT_SEED",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultError",
    "FaultInjector",
    "active_injector",
    "configure",
    "corrupt",
    "inject",
    "parse_spec",
    "register_point",
    "registered_points",
    "reset",
    "unit_hash",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
DEFAULT_SEED = 2020


class FaultError(RuntimeError):
    """Raised by :func:`inject` when the schedule fires at a seam."""

    def __init__(self, point: str, key=None):
        self.point = point
        self.key = key
        detail = f" (key={key!r})" if key is not None else ""
        super().__init__(f"injected fault at {point!r}{detail}")


# --------------------------------------------------------------------------- #
# Injection-point catalog
# --------------------------------------------------------------------------- #

_points_lock = threading.Lock()

#: ``{point name: description}`` -- every named seam in the library.  The
#: core seams are registered here so the catalog is complete even before
#: their host modules import; seam modules re-register idempotently.
_POINTS: dict[str, str] = {
    "par.worker_crash": "raise inside a pmap task before it runs "
                        "(repro.par.executor)",
    "cache.corrupt": "truncate a just-written cache entry "
                     "(repro.par.cache.NpzCache.save)",
    "serve.model_load": "raise while deserializing a registry model "
                        "(repro.serve.registry.ModelRegistry.load)",
    "serve.predict": "raise inside a micro-batch predict call "
                     "(repro.serve.batcher.BatchPredictor)",
    "sim.pass_crash": "raise before simulating one campaign pass "
                      "(repro.sim.collection)",
    "datasets.area_crash": "raise before generating one area's dataset "
                           "(repro.datasets.generate)",
}


def register_point(name: str, description: str = "") -> str:
    """Add a seam to the catalog (idempotent); returns ``name``."""
    with _points_lock:
        _POINTS.setdefault(name, description)
    return name


def registered_points() -> dict[str, str]:
    """``{point: description}`` for every registered seam."""
    with _points_lock:
        return dict(_POINTS)


# --------------------------------------------------------------------------- #
# Spec parsing and the deterministic schedule
# --------------------------------------------------------------------------- #


def parse_spec(text: str) -> dict[str, float]:
    """``"a:0.1,b:0.05"`` -> ``{"a": 0.1, "b": 0.05}``; raises ValueError.

    Whitespace around tokens is ignored; empty tokens are skipped, so a
    trailing comma (or an entirely empty string) is legal and yields
    fewer (or zero) entries rather than an error.
    """
    rates: dict[str, float] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        point, sep, rate_text = token.partition(":")
        point = point.strip()
        if not sep or not point:
            raise ValueError(
                f"bad fault spec token {token!r}; expected 'point:rate'"
            )
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(
                f"bad fault rate in {token!r}; expected a float"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"fault rate in {token!r} must be within [0, 1]"
            )
        rates[point] = rate
    return rates


def unit_hash(seed: int, *parts) -> float:
    """A deterministic uniform draw in [0, 1) from ``(seed, *parts)``.

    Stable across processes and platforms (blake2b of the repr-encoded
    parts); the shared primitive behind the fault schedule and the retry
    jitter in :mod:`repro.resil.retry`.
    """
    token = "|".join([str(int(seed))] + [repr(p) for p in parts]).encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultInjector:
    """A fault schedule: per-point rates plus the deciding seed."""

    def __init__(self, rates: Mapping[str, float] | None = None,
                 seed: int = DEFAULT_SEED):
        self.rates = dict(rates or {})
        for point, rate in self.rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"rate for point {point!r} must be within [0, 1]"
                )
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._occurrences: dict[tuple, int] = {}

    @property
    def armed(self) -> bool:
        """True when any point can ever fire."""
        return any(rate > 0.0 for rate in self.rates.values())

    def rate(self, point: str) -> float:
        return float(self.rates.get(point, 0.0))

    def should_fire(self, point: str, key=None) -> bool:
        """One scheduled decision for ``(point, key)``.

        Deterministic in ``(seed, point, key, occurrence)``, where the
        occurrence index counts prior queries of the same ``(point,
        key)`` in this process -- so a retry of the same operation rolls
        a fresh (but still reproducible) decision.
        """
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        with self._lock:
            occurrence = self._occurrences.get((point, key), 0)
            self._occurrences[(point, key)] = occurrence + 1
        if unit_hash(self.seed, point, key, occurrence) >= rate:
            return False
        obs.inc("resil.faults.injected_total")
        obs.inc(f"resil.fault.{point}_total")
        return True

    def reset_schedule(self) -> None:
        """Forget occurrence counts (the next query re-runs the schedule)."""
        with self._lock:
            self._occurrences.clear()


# --------------------------------------------------------------------------- #
# The active (process-wide) injector
# --------------------------------------------------------------------------- #

_state_lock = threading.Lock()
_env_injector: FaultInjector | None = None
_env_source: tuple[str, str] | None = None
_pinned: FaultInjector | None = None


def configure(rates: Mapping[str, float] | str | None,
              seed: int = DEFAULT_SEED) -> FaultInjector:
    """Pin a programmatic fault schedule (tests); :func:`reset` unpins.

    ``rates`` may be a spec string (``"a:0.1,b:0.2"``) or a mapping;
    ``None`` pins an empty (never-firing) injector.
    """
    global _pinned
    if isinstance(rates, str):
        rates = parse_spec(rates)
    injector = FaultInjector(rates, seed)
    with _state_lock:
        _pinned = injector
    return injector


def reset() -> None:
    """Drop any pinned injector and the env-derived cache."""
    global _pinned, _env_injector, _env_source
    with _state_lock:
        _pinned = None
        _env_injector = None
        _env_source = None


def active_injector() -> FaultInjector:
    """The injector in effect: pinned one, else derived from the env.

    The env-derived injector is rebuilt whenever ``REPRO_FAULTS`` /
    ``REPRO_FAULTS_SEED`` change, so tests that monkeypatch the env see
    their spec take effect immediately.
    """
    global _env_injector, _env_source
    with _state_lock:
        if _pinned is not None:
            return _pinned
        text = os.environ.get(FAULTS_ENV, "")
        seed_text = os.environ.get(FAULTS_SEED_ENV, "").strip()
        source = (text, seed_text)
        if _env_injector is None or _env_source != source:
            seed = int(seed_text) if seed_text else DEFAULT_SEED
            _env_injector = FaultInjector(parse_spec(text), seed)
            _env_source = source
        return _env_injector


def inject(point: str, key=None) -> None:
    """Raise :class:`FaultError` if the active schedule fires at ``point``."""
    if active_injector().should_fire(point, key):
        raise FaultError(point, key)


def corrupt(point: str, key=None) -> bool:
    """True when the seam should corrupt its artifact (never raises)."""
    return active_injector().should_fire(point, key)
