"""``repro.resil`` -- resilience: faults, retries, breakers, checkpoints.

The layer that lets the campaign and the serving loop survive worker
crashes, corrupt artifacts and flaky model loads (docs/robustness.md has
the full guide):

* :mod:`repro.resil.faults` -- deterministic, seeded fault injection.
  ``REPRO_FAULTS="par.worker_crash:0.1,cache.corrupt:0.05"`` arms named
  seams across ``par``, ``serve``, ``sim`` and ``datasets``; the same
  seed always yields the same fault schedule, so chaos tests reproduce.
* :mod:`repro.resil.retry` -- :func:`retry` with capped exponential
  backoff and *seeded* jitter (identical schedule at any worker count),
  :class:`Deadline` budgets, and a :class:`CircuitBreaker` state
  machine.  All emit ``resil.*`` obs counters.
* :mod:`repro.resil.checkpoint` -- content-addressed per-pass
  checkpoint/resume for campaigns (``REPRO_CHECKPOINT_DIR``); resuming
  an interrupted run is bit-identical to an uninterrupted one.

Consumers: ``par.pmap`` (chunk retry + serial rescue), ``par.cache``
(corruption seam), ``serve`` (request deadlines, model-load retry with
quarantine + version fallback, service breaker) and ``sim.collection``
(per-pass checkpointing).  ``tools/check_resil.py`` keeps ad-hoc
``time.sleep`` retry loops and silent ``except Exception`` swallows out
of the rest of the library.
"""

from repro.resil.faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultError,
    FaultInjector,
    active_injector,
    configure,
    corrupt,
    inject,
    parse_spec,
    register_point,
    registered_points,
    unit_hash,
)
from repro.resil.retry import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryExhausted,
    RetryPolicy,
    retry,
)
from repro.resil.checkpoint import CHECKPOINT_ENV, CheckpointStore, resolve_dir

__all__ = [
    "CHECKPOINT_ENV",
    "CheckpointStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultError",
    "FaultInjector",
    "RetryExhausted",
    "RetryPolicy",
    "active_injector",
    "configure",
    "corrupt",
    "inject",
    "parse_spec",
    "register_point",
    "registered_points",
    "resolve_dir",
    "retry",
    "unit_hash",
]
