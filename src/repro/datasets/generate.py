"""End-to-end dataset generation: campaign -> cleaning -> ML-ready tables.

``generate_datasets`` is the one call most consumers need: it simulates
the measurement campaign for the requested areas (fanning areas out over
a process pool when ``workers`` > 1), runs the Sec.-3.1 cleaning
pipeline, and returns cleaned per-area tables plus the pooled "Global"
table used in Sec. 6.

Caching is two-tier and content-addressed:

* a module-level memo keeps repeated test/benchmark calls cheap within
  one process (default-config calls only, as before);
* an optional on-disk ``.npz`` cache (``cache_dir`` argument or the
  ``REPRO_CACHE_DIR`` env var) persists every generated dataset keyed by
  a fingerprint of the full request -- areas, seeds, campaign and
  cleaning configs, the telemetry schema and ``DATASET_CACHE_VERSION``
  -- so a stale entry can never load silently: any config or schema
  change simply hashes to a different key.

``clear_cache()`` drops both tiers.
"""

from __future__ import annotations

import os

import numpy as np

from typing import TYPE_CHECKING

from repro import obs
from repro.datasets.cleaning import CleaningConfig, CleaningReport, clean
from repro.datasets.frame import Table
from repro.par import NpzCache, fingerprint, pmap
from repro.resil import faults
from repro.ue.telemetry import TelemetryRecord

if TYPE_CHECKING:  # avoid a circular import with repro.sim at runtime
    from repro.sim.collection import CampaignConfig

DEFAULT_AREAS = ("Airport", "Intersection", "Loop")

faults.register_point(
    "datasets.area_crash",
    "raise before simulating one area's dataset (keyed by area name)",
)

#: Bump whenever the meaning of cached bytes changes (schema migrations,
#: cleaning semantics, npz layout); old entries then never match a key.
DATASET_CACHE_VERSION = 1

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_CACHE: dict[tuple, dict[str, Table]] = {}


def _disk_cache(cache_dir: str | os.PathLike | None) -> NpzCache | None:
    root = cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    return NpzCache(root) if root else None


def _cache_key(
    areas: tuple[str, ...],
    include_global: bool,
    cleaning: CleaningConfig | None,
    campaign: "CampaignConfig",
) -> str:
    """Content hash of everything that determines the output tables."""
    return fingerprint({
        "version": DATASET_CACHE_VERSION,
        "schema": TelemetryRecord.field_names(),
        "areas": list(areas),
        "include_global": include_global,
        "cleaning": cleaning if cleaning is not None else CleaningConfig(),
        "campaign": campaign,
    })


def _tables_to_arrays(tables: dict[str, Table]) -> dict[str, dict]:
    return {
        name: {c: t[c] for c in t.column_names}
        for name, t in tables.items()
    }


def _tables_from_arrays(arrays: dict[str, dict]) -> dict[str, Table]:
    return {name: Table(columns) for name, columns in arrays.items()}


def _generate_area_task(
    campaign: "CampaignConfig",
    cleaning: CleaningConfig | None,
    workers: int | None,
    area: str,
) -> tuple[str, Table, CleaningReport, int, int]:
    """Pure per-area task: simulate + clean one area (pmap-friendly).

    ``workers`` lets a single-area request still fan out per pass; when
    this task itself runs inside a pool worker, the nested ``pmap`` is
    forced serial, so the knob never stacks pools.
    """
    from repro.env.areas import build_area
    from repro.sim.collection import run_area_campaign

    faults.inject("datasets.area_crash", key=area)
    raw = run_area_campaign(build_area(area), campaign, workers=workers)
    cleaned, report = clean(raw, cleaning)
    next_run_offset = int(np.asarray(raw["run_id"], dtype=int).max()) + 1
    return area, cleaned, report, len(raw), next_run_offset


def generate_datasets(
    areas: tuple[str, ...] | list[str] = DEFAULT_AREAS,
    passes_per_trajectory: int = 30,
    seed: int = 2020,
    include_global: bool = True,
    cleaning: CleaningConfig | None = None,
    campaign: "CampaignConfig | None" = None,
    use_cache: bool = True,
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> dict[str, Table]:
    """Simulate, clean and return ``{area: table}`` (+ ``"Global"``).

    The Global table pools every area, mirroring the paper's combined
    dataset; rows keep their ``area`` column so per-area slices remain
    possible.  Run ids are offset per area so they stay globally unique.

    ``workers`` parallelizes across areas (each area's campaign then
    runs serially inside its worker; seeding keeps the result identical
    at any worker count).  When a disk cache is configured
    (``cache_dir`` or ``REPRO_CACHE_DIR``) and ``use_cache`` is true,
    generated datasets round-trip through content-addressed ``.npz``
    files that survive across processes.
    """
    from repro.sim.collection import CampaignConfig

    if campaign is None:
        campaign = CampaignConfig(
            passes_per_trajectory=passes_per_trajectory,
            driving_passes=passes_per_trajectory,
            seed=seed,
        )
        memo_key: tuple | None = (tuple(areas), passes_per_trajectory, seed,
                                  include_global, cleaning, True)
    else:
        memo_key = None  # custom campaigns are disk-cacheable, not memoized

    disk = _disk_cache(cache_dir) if use_cache else None
    if use_cache and memo_key is not None and memo_key in _CACHE:
        obs.inc("datasets.cache_hits_total")
        return _CACHE[memo_key]
    if disk is not None:
        key = _cache_key(tuple(areas), include_global, cleaning, campaign)
        cached = disk.load(key)
        if cached is not None:
            obs.inc("datasets.disk_cache_hits_total")
            out = _tables_from_arrays(cached)
            if memo_key is not None:
                _CACHE[memo_key] = out
            return out
        obs.inc("datasets.disk_cache_misses_total")
    obs.inc("datasets.cache_misses_total")

    log = obs.get_logger("datasets")
    out: dict[str, Table] = {}
    reports: dict[str, CleaningReport] = {}
    with obs.span("datasets.generate", areas="+".join(areas), seed=seed):
        from functools import partial

        area_results = pmap(
            partial(_generate_area_task, campaign, cleaning, workers),
            list(areas),
            workers=workers,
            label="datasets.generate",
        )
        offset = 0
        pooled = []
        for area, cleaned, report, raw_rows, next_offset in area_results:
            reports[area] = report
            out[area] = cleaned
            obs.inc("datasets.rows_generated_total", len(cleaned))
            log.info("generated", area=area, rows=len(cleaned),
                     raw_rows=raw_rows, seed=seed)
            if include_global:
                shifted = cleaned.with_column(
                    "run_id",
                    np.asarray(cleaned["run_id"], dtype=int) + offset,
                )
                pooled.append(shifted)
                offset += next_offset
        if include_global and pooled:
            out["Global"] = Table.concat(pooled)
    generate_datasets.last_reports = reports  # type: ignore[attr-defined]
    if use_cache and memo_key is not None:
        _CACHE[memo_key] = out
    if disk is not None:
        disk.save(key, _tables_to_arrays(out))
    return out


def dataset_statistics(tables: dict[str, Table]) -> dict[str, dict]:
    """Table-3-style statistics per dataset."""
    stats = {}
    for name, t in tables.items():
        tput = np.asarray(t["throughput_mbps"], dtype=float)
        modes, counts = np.unique(t["mobility_mode"], return_counts=True)
        stats[name] = {
            "rows": len(t),
            "runs": len(np.unique(t["run_id"])),
            "gb_downloaded": float(tput.sum() / 8.0 / 1000.0),  # Mbps-s -> GB
            "mode_counts": dict(zip(modes.tolist(), counts.tolist())),
            "mean_throughput_mbps": float(tput.mean()),
            "peak_throughput_mbps": float(tput.max()),
        }
    return stats


def clear_cache(cache_dir: str | os.PathLike | None = None) -> None:
    """Drop memoized datasets *and* the active on-disk cache entries.

    The disk tier resolves exactly like :func:`generate_datasets`
    (``cache_dir`` argument, else ``REPRO_CACHE_DIR``); pass the same
    directory you generated with to invalidate it.
    """
    _CACHE.clear()
    disk = _disk_cache(cache_dir)
    if disk is not None:
        removed = disk.clear()
        obs.inc("datasets.disk_cache_cleared_total", removed)
