"""End-to-end dataset generation: campaign -> cleaning -> ML-ready tables.

``generate_datasets`` is the one call most consumers need: it simulates
the measurement campaign for the requested areas, runs the Sec.-3.1
cleaning pipeline, and returns cleaned per-area tables plus the pooled
"Global" table used in Sec. 6.  A module-level memo cache keeps repeated
test/benchmark calls cheap within one process.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro import obs
from repro.datasets.cleaning import CleaningConfig, CleaningReport, clean
from repro.datasets.frame import Table

if TYPE_CHECKING:  # avoid a circular import with repro.sim at runtime
    from repro.sim.collection import CampaignConfig

DEFAULT_AREAS = ("Airport", "Intersection", "Loop")

_CACHE: dict[tuple, dict[str, Table]] = {}


def generate_datasets(
    areas: tuple[str, ...] | list[str] = DEFAULT_AREAS,
    passes_per_trajectory: int = 30,
    seed: int = 2020,
    include_global: bool = True,
    cleaning: CleaningConfig | None = None,
    campaign: "CampaignConfig | None" = None,
    use_cache: bool = True,
) -> dict[str, Table]:
    """Simulate, clean and return ``{area: table}`` (+ ``"Global"``).

    The Global table pools every area, mirroring the paper's combined
    dataset; rows keep their ``area`` column so per-area slices remain
    possible.  Run ids are offset per area so they stay globally unique.
    """
    from repro.sim.collection import CampaignConfig, run_campaign

    key = (tuple(areas), passes_per_trajectory, seed, include_global,
           cleaning, campaign is None)
    if use_cache and campaign is None and key in _CACHE:
        obs.inc("datasets.cache_hits_total")
        return _CACHE[key]
    obs.inc("datasets.cache_misses_total")

    if campaign is None:
        campaign = CampaignConfig(
            passes_per_trajectory=passes_per_trajectory,
            driving_passes=passes_per_trajectory,
            seed=seed,
        )
    log = obs.get_logger("datasets")
    out: dict[str, Table] = {}
    reports: dict[str, CleaningReport] = {}
    with obs.span("datasets.generate", areas="+".join(areas), seed=seed):
        raw = run_campaign(list(areas), campaign)
        offset = 0
        pooled = []
        with obs.span("datasets.clean"):
            for area, table in raw.items():
                cleaned, report = clean(table, cleaning)
                reports[area] = report
                out[area] = cleaned
                obs.inc("datasets.rows_generated_total", len(cleaned))
                log.info("generated", area=area, rows=len(cleaned),
                         raw_rows=len(table), seed=seed)
                if include_global:
                    shifted = cleaned.with_column(
                        "run_id",
                        np.asarray(cleaned["run_id"], dtype=int) + offset,
                    )
                    pooled.append(shifted)
                    offset += int(
                        np.asarray(table["run_id"], dtype=int).max()
                    ) + 1
        if include_global and pooled:
            out["Global"] = Table.concat(pooled)
    out_reports = reports  # kept for callers that want them via attribute
    generate_datasets.last_reports = out_reports  # type: ignore[attr-defined]
    if use_cache and key[-1]:
        _CACHE[key] = out
    return out


def dataset_statistics(tables: dict[str, Table]) -> dict[str, dict]:
    """Table-3-style statistics per dataset."""
    stats = {}
    for name, t in tables.items():
        tput = np.asarray(t["throughput_mbps"], dtype=float)
        modes, counts = np.unique(t["mobility_mode"], return_counts=True)
        stats[name] = {
            "rows": len(t),
            "runs": len(np.unique(t["run_id"])),
            "gb_downloaded": float(tput.sum() / 8.0 / 1000.0),  # Mbps-s -> GB
            "mode_counts": dict(zip(modes.tolist(), counts.tolist())),
            "mean_throughput_mbps": float(tput.mean()),
            "peak_throughput_mbps": float(tput.max()),
        }
    return stats


def clear_cache() -> None:
    """Drop memoized datasets (mainly for tests)."""
    _CACHE.clear()
