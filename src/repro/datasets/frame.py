"""A small column-oriented table, the repo's DataFrame stand-in.

pandas is not available in this environment, so datasets flow through
:class:`Table` -- a dict of named numpy columns with the handful of
operations the pipeline needs: row filtering by boolean mask, column
selection, group-by, sorting, concatenation and CSV round-tripping.
String columns are stored as object arrays; numeric columns as float64 or
int64.
"""

from __future__ import annotations

import csv
import io
import operator
from collections.abc import Callable, Iterable, Mapping, Sequence

import numpy as np


class Table:
    """Immutable-ish column table: ``{name: np.ndarray}`` of equal length."""

    def __init__(self, columns: Mapping[str, Sequence | np.ndarray]):
        self._columns: dict[str, np.ndarray] = {}
        length = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            self._columns[name] = arr
        self._length = length or 0

    # -- basic protocol ---------------------------------------------------- #

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __repr__(self) -> str:
        return f"Table({len(self)} rows x {len(self._columns)} cols)"

    # -- construction ------------------------------------------------------ #

    @classmethod
    def from_records(cls, records: Iterable, fields: Sequence[str]) -> "Table":
        """Build from an iterable of objects with the named attributes.

        Columnar build: one C-level ``attrgetter`` pass over the records
        transposes them into per-field value tuples, instead of a Python
        ``getattr`` loop per field x row.  Values and dtypes are
        identical to the per-row construction.
        """
        fields = list(fields)
        rows = list(records)
        if not rows or not fields:
            return cls({f: np.asarray([]) for f in fields})
        getter = operator.attrgetter(*fields)
        if len(fields) == 1:
            columns = ([getter(r) for r in rows],)
        else:
            columns = zip(*map(getter, rows))
        return cls({
            f: np.asarray(col) for f, col in zip(fields, columns)
        })

    @classmethod
    def concat(cls, tables: Sequence["Table"]) -> "Table":
        """Stack tables with identical column sets.

        Each output column is preallocated once at its promoted dtype
        (``np.result_type`` over the inputs -- the same promotion
        ``np.concatenate`` applies) and filled slice by slice, so no
        intermediate per-part list of casted copies is built.
        """
        tables = [t for t in tables if len(t)]
        if not tables:
            return cls({})
        names = tables[0].column_names
        for t in tables[1:]:
            if t.column_names != names:
                raise ValueError("cannot concat tables with different columns")
        total = sum(len(t) for t in tables)
        columns: dict[str, np.ndarray] = {}
        for n in names:
            dtype = np.result_type(*(t[n].dtype for t in tables))
            out = np.empty(total, dtype=dtype)
            pos = 0
            for t in tables:
                part = t[n]
                out[pos:pos + len(part)] = part
                pos += len(part)
            columns[n] = out
        return cls(columns)

    # -- transformation ---------------------------------------------------- #

    def filter(self, mask: np.ndarray) -> "Table":
        """Select rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise ValueError("mask length mismatch")
        return Table({n: c[mask] for n, c in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Table":
        """Select rows by integer index array (allows reordering)."""
        indices = np.asarray(indices, dtype=int)
        return Table({n: c[indices] for n, c in self._columns.items()})

    def select(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in order."""
        return Table({n: self[n] for n in names})

    def with_column(self, name: str, values: Sequence | np.ndarray) -> "Table":
        """Return a copy with one column added or replaced."""
        cols = dict(self._columns)
        arr = np.asarray(values)
        if len(arr) != len(self):
            raise ValueError("new column length mismatch")
        cols[name] = arr
        return Table(cols)

    def sort_by(self, *names: str) -> "Table":
        """Stable sort by one or more columns (last name varies slowest)."""
        order = np.lexsort(tuple(self[n] for n in names))
        return self.take(order)

    def groupby(self, *names: str) -> dict[tuple, "Table"]:
        """Split into sub-tables keyed by unique combinations of columns."""
        if not names:
            raise ValueError("groupby needs at least one column")
        keys = list(zip(*(self[n].tolist() for n in names)))
        index: dict[tuple, list[int]] = {}
        for i, key in enumerate(keys):
            index.setdefault(key, []).append(i)
        return {k: self.take(np.asarray(idx)) for k, idx in index.items()}

    def unique(self, name: str) -> np.ndarray:
        return np.unique(self[name])

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Float matrix of the named columns (the X of an ML problem)."""
        return np.column_stack(
            [np.asarray(self[n], dtype=float) for n in names]
        )

    # -- CSV I/O ------------------------------------------------------------ #

    def to_csv(self, path_or_buf) -> None:
        """Write as CSV (header + rows).

        Batched formatting: columns are converted to native Python
        scalars once (``tolist``) and streamed through ``writerows``'s C
        loop.  ``str()`` of a native scalar matches ``str()`` of the
        numpy scalar it came from (shortest-repr floats), so the bytes
        are identical to the old per-row loop.
        """
        own = isinstance(path_or_buf, (str, bytes))
        f = open(path_or_buf, "w", newline="") if own else path_or_buf
        try:
            writer = csv.writer(f)
            names = self.column_names
            writer.writerow(names)
            writer.writerows(
                zip(*(self._columns[n].tolist() for n in names))
            )
        finally:
            if own:
                f.close()

    @classmethod
    def from_csv(cls, path_or_buf,
                 parsers: Mapping[str, Callable] | None = None) -> "Table":
        """Read a CSV; numeric-looking columns are parsed as float."""
        own = isinstance(path_or_buf, (str, bytes))
        f = open(path_or_buf, newline="") if own else path_or_buf
        try:
            reader = csv.reader(f)
            header = next(reader)
            raw: list[list[str]] = [[] for _ in header]
            for row in reader:
                for j, cell in enumerate(row):
                    raw[j].append(cell)
        finally:
            if own:
                f.close()
        columns: dict[str, np.ndarray] = {}
        for name, cells in zip(header, raw):
            if parsers and name in parsers:
                columns[name] = np.asarray([parsers[name](c) for c in cells])
                continue
            try:
                columns[name] = np.asarray([float(c) for c in cells])
            except ValueError:
                columns[name] = np.asarray(cells, dtype=object)
        return cls(columns)

    def to_csv_string(self) -> str:
        buf = io.StringIO()
        self.to_csv(buf)
        return buf.getvalue()
