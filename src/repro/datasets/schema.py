"""Dataset schema and export in the public Lumos5G column convention.

The authors released part of their dataset at https://lumos5g.umn.edu; its
CSV uses columns like ``run_num``, ``movingSpeed``, ``compassDirection``,
``nrStatus``, ``nr_ssRsrp`` and ``Throughput``.  :func:`to_public_csv_table`
re-labels our raw telemetry into that convention so code written against
the public dataset can consume simulated campaigns unchanged, and
:func:`from_public_csv_table` maps back.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.frame import Table

#: our column -> public Lumos5G dataset column
PUBLIC_COLUMN_MAP = {
    "run_id": "run_num",
    "timestamp_s": "seq_num",
    "latitude": "latitude",
    "longitude": "longitude",
    "moving_speed_mps": "movingSpeed",
    "compass_direction_deg": "compassDirection",
    "radio_type": "nrStatus",
    "lte_rssi": "lte_rssi",
    "lte_rsrp": "lte_rsrp",
    "lte_rsrq": "lte_rsrq",
    "nr_ss_rsrp": "nr_ssRsrp",
    "nr_ss_rsrq": "nr_ssRsrq",
    "nr_ss_rssi": "nr_ssRssi",
    "throughput_mbps": "Throughput",
    "mobility_mode": "mobility_mode",
    "trajectory": "trajectory_direction",
    "cell_id": "tower_id",
}

#: nrStatus encoding used by the public dataset.
NR_STATUS_CONNECTED = "CONNECTED"
NR_STATUS_NOT_RESTRICTED = "NOT_RESTRICTED"


def to_public_csv_table(raw: Table) -> Table:
    """Re-label a raw telemetry table into public-dataset columns."""
    columns = {}
    for ours, public in PUBLIC_COLUMN_MAP.items():
        col = raw[ours]
        if ours == "radio_type":
            col = np.asarray([
                NR_STATUS_CONNECTED if v == "5G" else NR_STATUS_NOT_RESTRICTED
                for v in col
            ], dtype=object)
        columns[public] = col
    return Table(columns)


def from_public_csv_table(public: Table) -> Table:
    """Inverse of :func:`to_public_csv_table` (radio type decoded)."""
    columns = {}
    for ours, pub in PUBLIC_COLUMN_MAP.items():
        col = public[pub]
        if ours == "radio_type":
            col = np.asarray(
                ["5G" if v == NR_STATUS_CONNECTED else "4G" for v in col],
                dtype=object,
            )
        columns[ours] = col
    return Table(columns)


#: Columns every cleaned dataset table must carry (raw + derived).
CLEANED_EXTRA_COLUMNS = ("pixel_x", "pixel_y")
