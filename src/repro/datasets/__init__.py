"""Datasets: column table, Table-1 schema, cleaning, generation."""

from repro.datasets.cleaning import (
    CleaningConfig,
    CleaningReport,
    clean,
    clean_stream,
    filter_gps_error,
    pixelize,
    trim_buffer_period,
)
from repro.datasets.frame import Table
from repro.datasets.generate import (
    DEFAULT_AREAS,
    clear_cache,
    dataset_statistics,
    generate_datasets,
)
from repro.datasets.public import load_public_dataset
from repro.datasets.schema import (
    PUBLIC_COLUMN_MAP,
    from_public_csv_table,
    to_public_csv_table,
)

__all__ = [
    "DEFAULT_AREAS",
    "CleaningConfig",
    "CleaningReport",
    "PUBLIC_COLUMN_MAP",
    "Table",
    "clean",
    "clean_stream",
    "clear_cache",
    "dataset_statistics",
    "filter_gps_error",
    "from_public_csv_table",
    "generate_datasets",
    "load_public_dataset",
    "pixelize",
    "to_public_csv_table",
    "trim_buffer_period",
]
