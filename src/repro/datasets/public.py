"""Loader for the public Lumos5G dataset (https://lumos5g.umn.edu).

The released dataset is a set of CSV files (one merged file or per-run
files) using columns like ``run_num``, ``seq_num``, ``latitude``,
``longitude``, ``movingSpeed``, ``compassDirection``, ``nrStatus``,
``lte_rsrp``, ``nr_ssRsrp``, ``Throughput``, ``mobility_mode``,
``trajectory_direction``, ``tower_id``.  :func:`load_public_dataset`
reads one file or every ``*.csv`` under a directory, normalizes the
columns into this repo's telemetry schema (filling fields the public
release does not carry), and returns a cleaned-compatible
:class:`~repro.datasets.frame.Table` ready for the feature extractor.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.datasets.frame import Table
from repro.datasets.schema import PUBLIC_COLUMN_MAP, from_public_csv_table

#: Defaults for telemetry fields absent from the public release.
_FIELD_DEFAULTS = {
    "area": "Public",
    "mobility_mode": "walking",
    "trajectory": "unknown",
    "gps_accuracy_m": 3.0,
    "detected_activity": "WALKING",
    "compass_accuracy_deg": 6.0,
    "nr_ss_rssi": -9999.0,
    "lte_rssi": -9999.0,
    "lte_rsrq": -9999.0,
    "nr_ss_rsrq": -9999.0,
    "horizontal_handoff": 0.0,
    "vertical_handoff": 0.0,
    "ue_panel_distance_m": float("nan"),
    "positional_angle_deg": float("nan"),
    "mobility_angle_deg": float("nan"),
    "carrier_load_ues": 1.0,
    "true_x_m": float("nan"),
    "true_y_m": float("nan"),
    "true_heading_deg": float("nan"),
    "true_speed_mps": float("nan"),
}

REQUIRED_PUBLIC_COLUMNS = ("run_num", "latitude", "longitude", "Throughput")


def _csv_files(path: pathlib.Path) -> list[pathlib.Path]:
    if path.is_file():
        return [path]
    files = sorted(path.glob("**/*.csv"))
    if not files:
        raise FileNotFoundError(f"no CSV files under {path}")
    return files


def load_public_dataset(path) -> Table:
    """Read public-format CSV file(s) into the internal telemetry schema.

    Run numbers from separate files are offset so they stay unique.
    Raises ``ValueError`` when a file lacks the minimal required columns.
    """
    path = pathlib.Path(path)
    tables: list[Table] = []
    run_offset = 0
    for f in _csv_files(path):
        raw = Table.from_csv(str(f))
        missing = [c for c in REQUIRED_PUBLIC_COLUMNS if c not in raw]
        if missing:
            raise ValueError(f"{f} is missing required columns {missing}")
        raw = _with_public_defaults(raw)
        internal = from_public_csv_table(raw)
        internal = _with_internal_defaults(internal)
        runs = np.asarray(internal["run_id"], dtype=float).astype(int)
        internal = internal.with_column("run_id", runs + run_offset)
        run_offset = int(internal["run_id"].max()) + 1
        tables.append(internal)
    return Table.concat(tables) if len(tables) > 1 else tables[0]


def _with_public_defaults(raw: Table) -> Table:
    """Fill public-side columns the file may omit."""
    n = len(raw)
    inverse = {pub: ours for ours, pub in PUBLIC_COLUMN_MAP.items()}
    for pub, ours in inverse.items():
        if pub in raw:
            continue
        default = _FIELD_DEFAULTS.get(ours, 0.0)
        if pub == "seq_num":
            # Per-run second counter when absent.
            runs = np.asarray(raw["run_num"], dtype=float).astype(int)
            seq = np.zeros(n, dtype=int)
            for run in np.unique(runs):
                mask = runs == run
                seq[mask] = np.arange(mask.sum())
            raw = raw.with_column("seq_num", seq)
        elif pub == "nrStatus":
            raw = raw.with_column(
                "nrStatus", np.asarray(["CONNECTED"] * n, dtype=object)
            )
        elif isinstance(default, str):
            raw = raw.with_column(pub, np.asarray([default] * n,
                                                  dtype=object))
        else:
            raw = raw.with_column(pub, np.full(n, float(default)))
    return raw


def _with_internal_defaults(table: Table) -> Table:
    """Add internal-only telemetry fields the public release never had."""
    n = len(table)
    for name, default in _FIELD_DEFAULTS.items():
        if name in table:
            continue
        if isinstance(default, str):
            table = table.with_column(
                name, np.asarray([default] * n, dtype=object)
            )
        else:
            table = table.with_column(name, np.full(n, float(default)))
    return table
