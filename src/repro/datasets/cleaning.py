"""Data-quality pipeline (Sec. 3.1, "Ensuring High Data Quality").

The paper applies four measures before any analysis; this module applies
the three that operate on logged data (the fourth -- repeating passes --
is the campaign design itself):

1. **GPS-error filter** -- discard runs whose mean reported GPS accuracy
   exceeds 5 m along the trajectory.
2. **Buffer period** -- drop the first seconds of every run, while the UE
   performs GPS/compass calibration.
3. **Pixelization** -- discretize raw GPS coordinates to Web-Mercator
   pixel coordinates at zoom level 17 (~1 m cells), reducing localization
   noise and sparsity.  Adds ``pixel_x``/``pixel_y`` columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.frame import Table
from repro.geo.mercator import DEFAULT_ZOOM, latlon_to_pixel


@dataclass(frozen=True)
class CleaningConfig:
    max_mean_gps_error_m: float = 5.0
    buffer_period_s: int = 10
    zoom: int = DEFAULT_ZOOM


@dataclass(frozen=True)
class CleaningReport:
    """What the pipeline kept and dropped."""

    input_rows: int
    output_rows: int
    runs_dropped_gps: int
    rows_dropped_buffer: int

    @property
    def retention(self) -> float:
        return self.output_rows / self.input_rows if self.input_rows else 0.0


def filter_gps_error(
    table: Table, max_mean_error_m: float = 5.0
) -> tuple[Table, int]:
    """Drop whole runs whose mean reported GPS accuracy is too large."""
    run_ids = table["run_id"]
    acc = np.asarray(table["gps_accuracy_m"], dtype=float)
    bad_runs = set()
    for run in np.unique(run_ids):
        mask = run_ids == run
        if acc[mask].mean() > max_mean_error_m:
            bad_runs.add(run)
    keep = np.asarray([r not in bad_runs for r in run_ids])
    return table.filter(keep), len(bad_runs)


def trim_buffer_period(table: Table, buffer_s: int = 10) -> tuple[Table, int]:
    """Drop the first ``buffer_s`` seconds of every run."""
    keep = np.asarray(table["timestamp_s"], dtype=float) >= buffer_s
    return table.filter(keep), int((~keep).sum())


def pixelize(table: Table, zoom: int = DEFAULT_ZOOM) -> Table:
    """Add pixelized coordinates (``pixel_x``, ``pixel_y``) at a zoom level."""
    lats = np.asarray(table["latitude"], dtype=float)
    lons = np.asarray(table["longitude"], dtype=float)
    px = np.empty(len(lats), dtype=np.int64)
    py = np.empty(len(lats), dtype=np.int64)
    for i in range(len(lats)):
        px[i], py[i] = latlon_to_pixel(lats[i], lons[i], zoom)
    return table.with_column("pixel_x", px).with_column("pixel_y", py)


def clean(
    table: Table, config: CleaningConfig | None = None
) -> tuple[Table, CleaningReport]:
    """Run the full pipeline; returns (cleaned_table, report)."""
    config = config or CleaningConfig()
    input_rows = len(table)
    table, runs_dropped = filter_gps_error(table, config.max_mean_gps_error_m)
    table, rows_buffered = trim_buffer_period(table, config.buffer_period_s)
    table = pixelize(table, config.zoom)
    report = CleaningReport(
        input_rows=input_rows,
        output_rows=len(table),
        runs_dropped_gps=runs_dropped,
        rows_dropped_buffer=rows_buffered,
    )
    return table, report
