"""Data-quality pipeline (Sec. 3.1, "Ensuring High Data Quality").

The paper applies four measures before any analysis; this module applies
the three that operate on logged data (the fourth -- repeating passes --
is the campaign design itself):

1. **GPS-error filter** -- discard runs whose mean reported GPS accuracy
   exceeds 5 m along the trajectory.
2. **Buffer period** -- drop the first seconds of every run, while the UE
   performs GPS/compass calibration.
3. **Pixelization** -- discretize raw GPS coordinates to Web-Mercator
   pixel coordinates at zoom level 17 (~1 m cells), reducing localization
   noise and sparsity.  Adds ``pixel_x``/``pixel_y`` columns.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro import obs
from repro.datasets.frame import Table
from repro.geo.mercator import DEFAULT_ZOOM, latlon_to_pixel
from repro.par import fingerprint


@dataclass(frozen=True)
class CleaningConfig:
    max_mean_gps_error_m: float = 5.0
    buffer_period_s: int = 10
    zoom: int = DEFAULT_ZOOM


@dataclass(frozen=True)
class CleaningReport:
    """What the pipeline kept and dropped."""

    input_rows: int
    output_rows: int
    runs_dropped_gps: int
    rows_dropped_buffer: int

    @property
    def retention(self) -> float:
        return self.output_rows / self.input_rows if self.input_rows else 0.0


def filter_gps_error(
    table: Table, max_mean_error_m: float = 5.0
) -> tuple[Table, int]:
    """Drop whole runs whose mean reported GPS accuracy is too large."""
    run_ids = table["run_id"]
    acc = np.asarray(table["gps_accuracy_m"], dtype=float)
    bad_runs = set()
    for run in np.unique(run_ids):
        mask = run_ids == run
        if acc[mask].mean() > max_mean_error_m:
            bad_runs.add(run)
    keep = np.asarray([r not in bad_runs for r in run_ids])
    return table.filter(keep), len(bad_runs)


def trim_buffer_period(table: Table, buffer_s: int = 10) -> tuple[Table, int]:
    """Drop the first ``buffer_s`` seconds of every run."""
    keep = np.asarray(table["timestamp_s"], dtype=float) >= buffer_s
    return table.filter(keep), int((~keep).sum())


def pixelize(table: Table, zoom: int = DEFAULT_ZOOM) -> Table:
    """Add pixelized coordinates (``pixel_x``, ``pixel_y``) at a zoom level."""
    lats = np.asarray(table["latitude"], dtype=float)
    lons = np.asarray(table["longitude"], dtype=float)
    px = np.empty(len(lats), dtype=np.int64)
    py = np.empty(len(lats), dtype=np.int64)
    for i in range(len(lats)):
        px[i], py[i] = latlon_to_pixel(lats[i], lons[i], zoom)
    return table.with_column("pixel_x", px).with_column("pixel_y", py)


def clean_stream(reader, out_dir, config: CleaningConfig | None = None,
                 chunk_rows: int | None = None):
    """Out-of-core :func:`clean`: raw campaign store -> cleaned store.

    ``reader`` is a :class:`repro.colstore.ChunkReader` over raw
    telemetry whose runs are contiguous in row order (true of every
    campaign store).  The GPS-error filter needs a whole run's mean
    accuracy before it can keep or drop a single row, so the stream
    buffers exactly one run at a time -- rows of the open run carry
    across chunk seams, and a closed run is decided, trimmed and
    pixelized through *the same batch functions* :func:`clean` uses,
    making the cleaned store bit-identical to cleaning the gathered
    table (``tests/datasets/test_clean_stream.py``).  Peak memory is
    one run plus one chunk, never the campaign.

    The output store is content-addressed (cleaning config x input
    manifest digest); a finalized store at ``out_dir`` with a matching
    ``cache_key`` is reused, its :class:`CleaningReport` rebuilt from
    the manifest meta.  Returns ``(ChunkReader, CleaningReport)``.
    """
    from repro.colstore import ChunkReader, Manifest, ShardWriter

    config = config or CleaningConfig()
    key = fingerprint({
        "datasets_clean_stream": 1,
        "config": asdict(config),
        "manifest": reader.manifest.digest(),
    })
    if Manifest.exists(out_dir):
        try:
            existing = ChunkReader(out_dir)
        except ValueError:
            existing = None
        if (existing is not None
                and existing.manifest.meta.get("cache_key") == key):
            obs.inc("datasets.clean_cache_hits_total")
            return existing, CleaningReport(
                **existing.manifest.meta["report"])
    obs.inc("datasets.clean_cache_misses_total")
    writer = ShardWriter(
        out_dir,
        chunk_rows=chunk_rows or reader.manifest.chunk_rows,
        meta={"kind": "campaign_clean", "cache_key": key,
              "config": asdict(config)},
    )
    input_rows = 0
    runs_dropped = 0
    rows_buffered = 0
    output_rows = 0
    open_run = None
    parts: list[dict[str, np.ndarray]] = []
    closed: set = set()

    def close_run() -> None:
        nonlocal runs_dropped, rows_buffered, output_rows
        names = list(parts[0])
        run_table = Table({
            n: np.concatenate([p[n] for p in parts]) for n in names
        })
        acc = np.asarray(run_table["gps_accuracy_m"], dtype=float)
        if acc.mean() > config.max_mean_gps_error_m:
            runs_dropped += 1
            return
        kept, dropped = trim_buffer_period(run_table, config.buffer_period_s)
        rows_buffered += dropped
        kept = pixelize(kept, config.zoom)
        output_rows += len(kept)
        writer.append(kept)

    with obs.span("datasets.clean_stream", rows=len(reader)), writer:
        for tbl in reader.iter_chunks():
            run_ids = np.asarray(tbl["run_id"])
            input_rows += len(run_ids)
            change = np.flatnonzero(run_ids[1:] != run_ids[:-1]) + 1
            starts = np.concatenate([[0], change, [len(run_ids)]])
            for s, e in zip(starts[:-1], starts[1:]):
                run = run_ids[s]
                if run != open_run:
                    if parts:
                        close_run()
                        closed.add(open_run)
                        parts = []
                    if run in closed:
                        raise ValueError(
                            f"run {run!r} reappeared after closing; "
                            "clean_stream needs run-contiguous chunks"
                        )
                    open_run = run
                # Copy out of the mmap view so the chunk's pages can be
                # released while the run stays buffered.
                parts.append({n: np.array(tbl[n][s:e])
                              for n in tbl.column_names})
        if parts:
            close_run()
        report = CleaningReport(
            input_rows=input_rows,
            output_rows=output_rows,
            runs_dropped_gps=runs_dropped,
            rows_dropped_buffer=rows_buffered,
        )
        writer.meta["report"] = asdict(report)
    obs.inc("datasets.clean_stream_rows_total", input_rows)
    obs.inc("datasets.clean_runs_dropped_total", runs_dropped)
    return ChunkReader(out_dir), report


def clean(
    table: Table, config: CleaningConfig | None = None
) -> tuple[Table, CleaningReport]:
    """Run the full pipeline; returns (cleaned_table, report)."""
    config = config or CleaningConfig()
    input_rows = len(table)
    table, runs_dropped = filter_gps_error(table, config.max_mean_gps_error_m)
    table, rows_buffered = trim_buffer_period(table, config.buffer_period_s)
    table = pixelize(table, config.zoom)
    report = CleaningReport(
        input_rows=input_rows,
        output_rows=len(table),
        runs_dropped_gps=runs_dropped,
        rows_dropped_buffer=rows_buffered,
    )
    return table, report
