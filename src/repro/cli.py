"""Command-line interface: simulate, evaluate, map, serve.

Examples::

    python -m repro generate --area Airport --passes 10 --out airport.csv
    python -m repro evaluate --area Airport --features T+M --model gdbt \
        --verbose --metrics-out metrics.json
    python -m repro map --area Airport --cell-size 2
    python -m repro areas
    python -m repro serve --model model.json < requests.jsonl

``--verbose`` turns on observability (structured logs, metrics, span
tracing; see docs/observability.md) and prints the span tree plus a
metrics snapshot after the command; ``--metrics-out FILE`` dumps the
snapshot and trace as JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np

from repro import __version__, obs
from repro.core.maps import coverage_map, throughput_map
from repro.core.pipeline import ALL_MODELS, Lumos5G, ModelConfig
from repro.datasets.generate import generate_datasets
from repro.datasets.schema import to_public_csv_table
from repro.env.areas import AREA_BUILDERS, build_area


def _add_common_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--area", default="Airport",
                        choices=sorted(AREA_BUILDERS))
    parser.add_argument("--passes", type=int, default=10,
                        help="walking passes per trajectory")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="process-pool size for the simulation "
                             "(default: $REPRO_WORKERS, else serial; "
                             "N<=1 runs serially; results are identical "
                             "at any worker count)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="enable telemetry; print span tree + metrics")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write a JSON metrics/trace snapshot to FILE")


def _dataset(args):
    data = generate_datasets(
        areas=(args.area,), passes_per_trajectory=args.passes,
        seed=args.seed, include_global=False, use_cache=False,
        workers=args.workers,
    )
    return data


def cmd_areas(_args) -> int:
    for name in sorted(AREA_BUILDERS):
        print(build_area(name).describe())
    return 0


def cmd_generate(args) -> int:
    if (args.out is None) == (args.store_dir is None):
        print("generate: give exactly one of --out or --store-dir",
              file=sys.stderr)
        return 2
    if args.store_dir:
        # Out-of-core path: raw telemetry straight to a chunked columnar
        # store (docs/colstore.md); cleaning happens at training time.
        from repro.sim.collection import CampaignConfig, run_area_campaign

        cfg = CampaignConfig(passes_per_trajectory=args.passes,
                             driving_passes=args.passes, seed=args.seed)
        reader = run_area_campaign(
            build_area(args.area), cfg, workers=args.workers,
            store_dir=args.store_dir, chunk_rows=args.chunk_rows,
        )
        print(f"wrote {len(reader)} rows to {args.store_dir} "
              f"({reader.n_chunks} chunks, area={args.area} "
              f"seed={args.seed} passes={args.passes})")
        return 0
    data = _dataset(args)
    table = data[args.area]
    if args.public_schema:
        table = to_public_csv_table(table)
    table.to_csv(args.out)
    print(f"wrote {len(table)} rows to {args.out} "
          f"(area={args.area} seed={args.seed} passes={args.passes})")
    return 0


def cmd_fit(args) -> int:
    from repro.colstore.pipeline import STREAM_MODELS, train_from_store
    from repro.core.pipeline import ModelConfig
    from repro.ml.serialize import model_to_json

    if args.model not in STREAM_MODELS:
        print(f"fit: model must be one of {STREAM_MODELS} "
              "(the families with a streaming fit)", file=sys.stderr)
        return 2
    work_dir = args.work_dir or os.path.join(args.from_store, "_work")
    config = ModelConfig.fast() if args.fast else ModelConfig()
    try:
        estimator, info = train_from_store(
            args.from_store, work_dir,
            spec=args.features, model=args.model, task=args.task,
            config=config, seed=args.seed, max_bins=args.max_bins,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"fit: {exc}", file=sys.stderr)
        return 2
    report = info["cleaning_report"]
    print(f"trained {args.model} ({args.task}) on {info['train_rows']} "
          f"rows / {info['n_chunks']} chunks from {args.from_store}")
    print(f"  cleaning: kept {report.output_rows}/{report.input_rows} rows "
          f"({report.retention:.1%}), dropped {report.runs_dropped_gps} "
          "runs for GPS error")
    print(f"  features: {info['view']} "
          f"(fingerprint {info['view_fingerprint'][:12]}...)")
    baseline = info.get("drift_baseline")
    if baseline:
        print(f"  drift baseline: {baseline['stat']} "
              f"mean {baseline['mean']:.1f} p50 {baseline['p50']:.1f} "
              f"(n={baseline['count']})")
    print(f"  {_telemetry_fit_summary(info['fit_telemetry'])}")
    if args.out:
        with open(args.out, "w") as f:
            f.write(model_to_json(estimator))
        print(f"  model written to {args.out}")
    return 0


def _telemetry_fit_summary(tel: dict | None) -> str:
    if not tel:
        return "fit telemetry unavailable"
    parts = [f"fit: {tel.get('fit_wall_s', 0.0):.1f}s"]
    if "rounds_completed" in tel:
        parts.append(f"{tel['rounds_completed']} rounds")
    if "n_trees" in tel:
        parts.append(f"{tel['n_trees']} trees")
    if "final_train_loss" in tel:
        parts.append(f"train loss {tel['final_train_loss']:.2f}")
    if tel.get("out_of_core"):
        parts.append("out-of-core")
    return ", ".join(parts)


def cmd_evaluate(args) -> int:
    data = _dataset(args)
    framework = Lumos5G(data, config=ModelConfig(), seed=args.seed)
    if not framework.supports(args.area, args.features):
        print(f"{args.features} is unavailable for {args.area} "
              "(no panel survey)", file=sys.stderr)
        return 2
    reg = framework.evaluate_regression(args.area, args.features, args.model)
    clf = framework.evaluate_classification(args.area, args.features,
                                            args.model)
    print(f"{args.area} / {args.features} / {args.model}")
    print(f"  regression:      MAE={reg.mae:.1f}  RMSE={reg.rmse:.1f} Mbps")
    print(f"  classification:  weighted-F1={clf.weighted_f1:.3f}  "
          f"recall(low)={clf.recall_low:.3f}")
    return 0


def cmd_map(args) -> int:
    data = _dataset(args)
    table = data[args.area]
    tmap = throughput_map(table, cell_size=args.cell_size)
    cmap = coverage_map(table, cell_size=args.cell_size)
    values = np.asarray([c.value for c in tmap])
    coverage = np.asarray([c.value for c in cmap])
    print(f"{args.area}: {len(tmap)} cells at {args.cell_size:.0f}-px size")
    print(f"  throughput Mbps: min={values.min():.0f} "
          f"median={np.median(values):.0f} max={values.max():.0f}")
    print(f"  5G coverage:     median={np.median(coverage):.2f}")
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["x", "y", "mean_throughput_mbps", "samples"])
            for c in tmap:
                writer.writerow([c.x, c.y, f"{c.value:.1f}", c.count])
        print(f"  cell table written to {args.csv}")
    return 0


def cmd_serve(args) -> int:
    from repro.ml.serialize import model_from_json
    from repro.resil import CircuitOpenError, FaultError, RetryExhausted
    from repro.serve import (
        InferenceService,
        ModelNotFound,
        ModelRegistry,
        RegistryError,
        ServeConfig,
    )

    if bool(args.model) == bool(args.registry):
        print("serve: pass exactly one of --model FILE or "
              "--registry DIR (with --name)", file=sys.stderr)
        return 2
    if args.registry and not args.name:
        print("serve: --registry needs --name", file=sys.stderr)
        return 2
    try:
        if args.model:
            with open(args.model) as f:
                model = model_from_json(f.read())
            if args.expect_view:
                stamp = getattr(model, "feature_view_", None) or {}
                actual = stamp.get("fingerprint")
                if actual != args.expect_view:
                    raise RegistryError(
                        f"model {args.model} was published against "
                        f"feature-view fingerprint {actual}, expected "
                        f"{args.expect_view}"
                    )
        else:
            # Resilient load: retries flaky reads, quarantines corrupt
            # version files and falls back to the newest good version.
            # --expect-view makes the registry verify the model's
            # feature-view stamp (FeatureViewMismatch is a
            # RegistryError: exit 1 below).
            model = ModelRegistry(args.registry).load_resilient(
                args.name, args.model_version,
                expect_view=args.expect_view or None,
            )
    except FileNotFoundError:
        print(f"serve: model file not found: {args.model}", file=sys.stderr)
        return 2
    except ModelNotFound as exc:
        print(f"serve: {exc.args[0]}", file=sys.stderr)
        return 2
    except (RetryExhausted, FaultError, CircuitOpenError) as exc:
        print(f"serve: model load failed: {exc}", file=sys.stderr)
        return 1
    except RegistryError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"serve: cannot load model: {exc}", file=sys.stderr)
        return 2

    events_stream = None
    if args.events_out:
        try:
            events_stream = open(args.events_out, "w")
        except OSError as exc:
            print(f"serve: cannot write {args.events_out}: {exc}",
                  file=sys.stderr)
            return 2
    if args.gateway:
        return _serve_gateway(args, model, events_stream)
    service = InferenceService(model, ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        cache_quant_step=args.quant_step,
        request_deadline_ms=args.deadline_ms,
        telemetry=not args.no_telemetry,
        window_s=args.window_s,
        slow_window_s=max(args.slow_window_s, args.window_s),
        latency_slo_p99_ms=args.slo_p99_ms,
        latency_slo_p999_ms=args.slo_p999_ms,
        availability_target=args.availability_target,
    ), event_stream=events_stream)
    try:
        instream = sys.stdin if args.input == "-" else open(args.input)
    except OSError as exc:
        print(f"serve: cannot read {args.input}: {exc}", file=sys.stderr)
        if events_stream is not None:
            events_stream.close()
        return 2
    outstream = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        stats = service.run_jsonl(instream, outstream)
    finally:
        if instream is not sys.stdin:
            instream.close()
        if outstream is not sys.stdout:
            outstream.close()
        if events_stream is not None:
            events_stream.close()
    args._serve_telemetry = stats.telemetry  # picked up by --metrics-out
    hit_rate = (service.cache.hit_rate if service.cache is not None else 0.0)
    failed = f", {stats.failures} failed" if stats.failures else ""
    print(f"served {stats.requests} requests "
          f"({stats.errors} malformed) in {stats.wall_s:.2f}s: "
          f"{stats.rows_per_s:.0f} rows/s, {stats.batches} batches, "
          f"cache hit rate {hit_rate:.2f}{failed}"
          f"{_telemetry_summary(stats.telemetry)}", file=sys.stderr)
    if args.strict and (stats.errors or stats.budget_burned):
        return 1
    return 0


def _serve_gateway(args, model, events_stream) -> int:
    """The ``serve --gateway`` path: shard the request stream."""
    from repro.gateway import AsyncGateway, GatewayConfig
    from repro.serve import ModelRegistry

    version = 1
    if args.registry:
        version = (args.model_version
                   or ModelRegistry(args.registry).latest_version(args.name)
                   or 1)
    config = GatewayConfig(
        shards=args.shards,
        queue_depth=args.shard_queue,
        max_batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        request_deadline_ms=args.deadline_ms,
        backend=args.gateway_backend,
        telemetry=not args.no_telemetry,
        window_s=args.window_s,
        slow_window_s=max(args.slow_window_s, args.window_s),
        latency_slo_p99_ms=args.slo_p99_ms,
        latency_slo_p999_ms=args.slo_p999_ms,
        availability_target=args.availability_target,
    )
    try:
        instream = sys.stdin if args.input == "-" else open(args.input)
    except OSError as exc:
        print(f"serve: cannot read {args.input}: {exc}", file=sys.stderr)
        if events_stream is not None:
            events_stream.close()
        return 2
    outstream = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        with AsyncGateway(model, version=version, config=config) as gateway:
            stats = gateway.run_jsonl(instream, outstream)
    finally:
        if instream is not sys.stdin:
            instream.close()
        if outstream is not sys.stdout:
            outstream.close()
        if events_stream is not None:
            events_stream.close()
    args._serve_telemetry = stats.telemetry  # picked up by --metrics-out
    shed = f", {stats.shed} shed" if stats.shed else ""
    failed = f", {stats.failures} failed" if stats.failures else ""
    expired = (f", {stats.deadline_exceeded} expired"
               if stats.deadline_exceeded else "")
    per_shard = "/".join(str(s["submitted"]) for s in stats.per_shard)
    print(f"gateway served {stats.requests} requests "
          f"({stats.errors} malformed) over {len(stats.per_shard)} shards "
          f"[{per_shard}] in {stats.wall_s:.2f}s: "
          f"{stats.rows_per_s:.0f} rows/s, model v{version}"
          f"{shed}{failed}{expired}"
          f"{_telemetry_summary(stats.telemetry)}", file=sys.stderr)
    if args.strict and (stats.errors or stats.budget_burned):
        return 1
    return 0


def _telemetry_summary(telemetry: dict | None) -> str:
    """The windowed-quantile / SLO / drift tail of the serve summary."""
    if not telemetry:
        return ""
    parts = []
    hist = (telemetry.get("window", {}).get("histograms", {})
            .get("serve.request_latency_s"))
    if hist and hist.get("count"):
        parts.append(f"window p99={hist['p99'] * 1e3:.2f}ms "
                     f"p999={hist['p999'] * 1e3:.2f}ms")
    verdict = telemetry.get("last_evaluation") or {}
    slos = verdict.get("slos") or []
    if slos:
        if any(s.get("alerting") for s in slos):
            slo_flag = "ALERT"
        elif all(s.get("ok") for s in slos):
            slo_flag = "ok"
        else:
            slo_flag = "breach"
        parts.append(f"slo {slo_flag}")
        parts.append("budget BURNED" if verdict.get("budget_burned")
                     else "budget ok")
    drift = verdict.get("drift")
    if drift is not None:
        parts.append("drift DRIFT" if drift.get("drifted") else "drift ok")
    return f", {', '.join(parts)}" if parts else ""


def cmd_rollout(args) -> int:
    from repro.core.pipeline import ModelConfig
    from repro.rollout import (
        DriftCampaignConfig,
        GuardConfig,
        RefitConfig,
        run_drifting_campaign,
    )

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-rollout-")
    config = DriftCampaignConfig(
        area=args.area,
        phases=args.phases,
        foliage_step_db=args.foliage_step_db,
        passes_per_trajectory=args.passes,
        seed=args.seed,
        workers=args.workers,
        shards=args.shards,
        canary_fraction=args.canary_fraction,
        name=args.name,
        model=ModelConfig.fast() if args.fast else ModelConfig(),
        refit=RefitConfig(n_rounds=args.refit_rounds),
        guard=GuardConfig(),
    )
    try:
        summary = run_drifting_campaign(
            work_dir, config=config, registry_dir=args.registry,
            events_out=args.events_out,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"rollout: {exc}", file=sys.stderr)
        return 2
    print(f"rollout: {config.phases} drift phase(s) over {args.area} "
          f"({summary['requests']} requests served)")
    for phase in summary["phases"]:
        drift = phase["drift"] or {}
        line = (f"  phase {phase['phase']}: "
                f"+{phase['foliage_db']:.0f} dB foliage, "
                f"drift {'DETECTED' if drift.get('drifted') else 'ok'}")
        rollout = phase["rollout"]
        if rollout is not None:
            line += (f" -> candidate v{rollout['candidate']} "
                     f"{rollout['outcome']}")
            if rollout.get("escalated"):
                line += " (cold retrain)"
        print(line)
    print(f"  serving: v{summary['serving']} of versions "
          f"{summary['versions']} (registry pin)")
    print(f"  digest: {summary['digest'][:16]}...")
    if args.summary_out:
        with open(args.summary_out, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True, default=str)
        print(f"  summary written to {args.summary_out}")
    if args.events_out:
        print(f"  events written to {args.events_out}")
    return 0


def cmd_obs_report(args) -> int:
    from repro.obs.telemetry import render_report

    try:
        with open(args.metrics) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs report: cannot read {args.metrics}: {exc}",
              file=sys.stderr)
        return 2
    events = None
    if args.events:
        try:
            with open(args.events) as f:
                events = [json.loads(line) for line in f if line.strip()]
        except (OSError, json.JSONDecodeError) as exc:
            print(f"obs report: cannot read {args.events}: {exc}",
                  file=sys.stderr)
            return 2
    print(render_report(payload, events))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lumos5G reproduction: simulate campaigns, train and "
                    "evaluate 5G throughput predictors, build maps.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    p_areas = sub.add_parser("areas", help="list the measurement areas")
    p_areas.set_defaults(func=cmd_areas)

    p_gen = sub.add_parser(
        "generate",
        help="simulate a campaign to CSV or to a columnar store",
    )
    _add_common_dataset_args(p_gen)
    p_gen.add_argument("--out", help="output CSV path (cleaned dataset)")
    p_gen.add_argument("--store-dir", metavar="DIR",
                       help="write raw telemetry to a chunked columnar "
                            "store instead of CSV (docs/colstore.md); "
                            "train from it with 'fit --from-store'")
    p_gen.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                       help="rows per store chunk (default 262144); "
                            "results are identical at any value")
    p_gen.add_argument("--public-schema", action="store_true",
                       help="use the public Lumos5G dataset column names")
    p_gen.set_defaults(func=cmd_generate)

    p_fit = sub.add_parser(
        "fit",
        help="train a model out-of-core from a columnar store",
        description="Stream a raw campaign store through cleaning, "
                    "feature materialization and a bounded-memory model "
                    "fit (docs/colstore.md).  Intermediates land in "
                    "--work-dir and are reused across runs.",
    )
    p_fit.add_argument("--from-store", required=True, metavar="DIR",
                       help="raw campaign store ('generate --store-dir')")
    p_fit.add_argument("--work-dir", metavar="DIR",
                       help="where cleaned/feature stores go "
                            "(default: <store>/_work)")
    p_fit.add_argument("--features", default="L+M+T+C",
                       help="feature groups, e.g. L, L+M, T+M+C")
    p_fit.add_argument("--model", default="gdbt", choices=("gdbt", "rf"))
    p_fit.add_argument("--task", default="regression",
                       choices=("regression", "classification"))
    p_fit.add_argument("--seed", type=int, default=2020)
    p_fit.add_argument("--max-bins", type=int, default=256, metavar="N",
                       help="histogram bins per feature")
    p_fit.add_argument("--fast", action="store_true",
                       help="laptop-scale hyperparameters "
                            "(ModelConfig.fast())")
    p_fit.add_argument("--out", metavar="FILE",
                       help="write the fitted model as JSON")
    p_fit.add_argument("--verbose", "-v", action="store_true",
                       help="enable telemetry; print span tree + metrics")
    p_fit.add_argument("--metrics-out", metavar="FILE",
                       help="write a JSON metrics/trace snapshot to FILE")
    p_fit.set_defaults(func=cmd_fit)

    p_eval = sub.add_parser("evaluate", help="train + evaluate one model")
    _add_common_dataset_args(p_eval)
    p_eval.add_argument("--features", default="T+M",
                        help="feature groups, e.g. L, L+M, T+M+C")
    p_eval.add_argument("--model", default="gdbt", choices=ALL_MODELS)
    p_eval.set_defaults(func=cmd_evaluate)

    p_map = sub.add_parser("map", help="summarize throughput/coverage maps")
    _add_common_dataset_args(p_map)
    p_map.add_argument("--cell-size", type=float, default=2.0)
    p_map.add_argument("--csv", help="optionally dump map cells to CSV")
    p_map.set_defaults(func=cmd_map)

    p_serve = sub.add_parser(
        "serve",
        help="answer JSONL prediction requests from a saved model",
        description="Read one JSON request per line ({\"features\": [...]}), "
                    "micro-batch them through the model, write one JSON "
                    "response per line in input order (docs/serving.md).",
    )
    src = p_serve.add_argument_group("model source (exactly one)")
    src.add_argument("--model", metavar="FILE",
                     help="serialized model JSON (repro.ml.serialize)")
    src.add_argument("--registry", metavar="DIR",
                     help="model registry root (repro.serve.ModelRegistry)")
    src.add_argument("--name", help="registry model name")
    src.add_argument("--model-version", type=int, default=None, metavar="N",
                     help="registry version (default: latest)")
    src.add_argument("--expect-view", default=None, metavar="FINGERPRINT",
                     help="require the model's feature-view fingerprint "
                          "(repro.fstore) to match; mismatch refuses to "
                          "serve (exit 1)")
    p_serve.add_argument("--input", default="-", metavar="FILE",
                         help="JSONL request file (default: stdin)")
    p_serve.add_argument("--output", default="-", metavar="FILE",
                         help="JSONL response file (default: stdout)")
    p_serve.add_argument("--batch-size", type=int, default=64, metavar="N",
                         help="max rows per micro-batch (default 64)")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         metavar="MS",
                         help="max wait for a batch to fill (default 2)")
    p_serve.add_argument("--cache-size", type=int, default=4096, metavar="N",
                         help="LRU prediction cache entries; 0 disables")
    p_serve.add_argument("--quant-step", type=float, default=0.25,
                         metavar="STEP",
                         help="feature quantization step for cache keys")
    p_serve.add_argument("--deadline-ms", type=float, default=0.0,
                         metavar="MS",
                         help="per-request queue deadline; 0 = unbounded")
    p_serve.add_argument("--strict", action="store_true",
                         help="exit 1 if any request line was malformed "
                              "or the availability error budget burned")
    gw = p_serve.add_argument_group("sharded gateway (docs/serving.md)")
    gw.add_argument("--gateway", action="store_true",
                    help="route requests over N predictor shards "
                         "(repro.gateway; rendezvous-hashed by the "
                         "request's key/ue/id)")
    gw.add_argument("--shards", type=int, default=4, metavar="N",
                    help="predictor shard count (default 4)")
    gw.add_argument("--shard-queue", type=int, default=64, metavar="N",
                    help="per-shard in-flight admission window; beyond "
                         "it requests shed with 429-style responses "
                         "(default 64)")
    gw.add_argument("--gateway-backend", default="thread",
                    choices=("thread", "process"),
                    help="run shard models in-process or one worker "
                         "process per shard (default thread)")
    tel = p_serve.add_argument_group("telemetry (docs/observability.md)")
    tel.add_argument("--no-telemetry", action="store_true",
                     help="disable the windowed telemetry plane")
    tel.add_argument("--window-s", type=float, default=60.0, metavar="S",
                     help="fast SLO/drift window length (default 60)")
    tel.add_argument("--slow-window-s", type=float, default=600.0,
                     metavar="S",
                     help="slow burn-rate window length (default 600)")
    tel.add_argument("--slo-p99-ms", type=float, default=50.0, metavar="MS",
                     help="windowed p99 latency SLO threshold (default 50)")
    tel.add_argument("--slo-p999-ms", type=float, default=250.0,
                     metavar="MS",
                     help="windowed p999 latency SLO threshold (default 250)")
    tel.add_argument("--availability-target", type=float, default=0.999,
                     metavar="R",
                     help="availability SLO target ratio (default 0.999)")
    tel.add_argument("--events-out", metavar="FILE",
                     help="stream structured telemetry events as JSONL")
    p_serve.add_argument("--verbose", "-v", action="store_true",
                         help="enable telemetry; print span tree + metrics")
    p_serve.add_argument("--metrics-out", metavar="FILE",
                         help="write a JSON metrics/trace snapshot to FILE")
    p_serve.set_defaults(func=cmd_serve)

    p_rollout = sub.add_parser(
        "rollout",
        help="drive the continuous-learning loop over seeded drift",
        description="Simulate a drifting measurement campaign (seasonal "
                    "foliage loss stepped per phase), detect drift "
                    "against the serving model's baseline, warm-start "
                    "refit a candidate and roll it out through shadow "
                    "and canary stages (docs/continuous_learning.md).",
    )
    p_rollout.add_argument("--area", default="Airport",
                           help="measurement area (default Airport)")
    p_rollout.add_argument("--phases", type=int, default=1,
                           help="drift phases after the baseline campaign")
    p_rollout.add_argument("--foliage-step-db", type=float, default=10.0,
                           help="extra foliage loss per phase, dB")
    p_rollout.add_argument("--passes", type=int, default=2,
                           help="campaign passes per trajectory")
    p_rollout.add_argument("--seed", type=int, default=2020)
    p_rollout.add_argument("--workers", type=int, default=None,
                           help="campaign simulation workers")
    p_rollout.add_argument("--shards", type=int, default=2,
                           help="gateway predictor shards")
    p_rollout.add_argument("--canary-fraction", type=float, default=0.5,
                           help="UE-key slice served by the canary")
    p_rollout.add_argument("--refit-rounds", type=int, default=20,
                           help="boosting rounds appended per refit")
    p_rollout.add_argument("--name", default="lumos5g",
                           help="registry model name")
    p_rollout.add_argument("--registry", metavar="DIR", default=None,
                           help="model registry directory "
                                "(default: under --work-dir)")
    p_rollout.add_argument("--work-dir", metavar="DIR", default=None,
                           help="campaign stores + refit scratch "
                                "(default: a fresh temp dir)")
    p_rollout.add_argument("--fast", action="store_true",
                           help="smaller model config for quick runs")
    p_rollout.add_argument("--events-out", metavar="FILE", default=None,
                           help="write the rollout/drift event log as JSONL")
    p_rollout.add_argument("--summary-out", metavar="FILE", default=None,
                           help="write the JSON campaign summary")
    p_rollout.set_defaults(func=cmd_rollout)

    p_obs = sub.add_parser(
        "obs",
        help="observability utilities (docs/observability.md)",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command")
    p_report = obs_sub.add_parser(
        "report",
        help="render a --metrics-out snapshot as an operator report",
        description="Print the windowed metrics, SLO statuses, drift "
                    "verdict and event tally recorded by a previous "
                    "--metrics-out / --events-out run.",
    )
    p_report.add_argument("--metrics", required=True, metavar="FILE",
                          help="JSON payload a --metrics-out run wrote")
    p_report.add_argument("--events", metavar="FILE",
                          help="JSONL event stream an --events-out run wrote")
    p_report.set_defaults(func=cmd_obs_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        parser.print_help(sys.stderr)
        return 2

    verbose = getattr(args, "verbose", False)
    metrics_out = getattr(args, "metrics_out", None)
    if verbose or metrics_out:
        obs.set_enabled(True)
    if verbose:
        obs.configure_logging("info")
    if not obs.enabled():
        return args.func(args)

    # Fresh trace/metrics per invocation (matters when main() is called
    # repeatedly in one process, e.g. from the tests).
    obs.get_tracer().reset()
    obs.get_registry().reset()
    with obs.span(args.command):
        code = args.func(args)
    tracer = obs.get_tracer()
    registry_snapshot = obs.get_registry().snapshot()
    if verbose:
        print()
        print(tracer.render())
        print(obs.format_snapshot(registry_snapshot))
    if metrics_out:
        payload = {
            "command": args.command,
            "argv": list(argv) if argv is not None else sys.argv[1:],
            "metrics": registry_snapshot,
            "trace": tracer.to_dict(),
        }
        telemetry = getattr(args, "_serve_telemetry", None)
        if telemetry is not None:
            payload["telemetry"] = telemetry
        try:
            with open(metrics_out, "w") as f:
                json.dump(payload, f, indent=2, sort_keys=True)
                f.write("\n")
        except OSError as exc:
            print(f"cannot write metrics snapshot: {exc}", file=sys.stderr)
            return code or 1
        print(f"metrics snapshot written to {metrics_out}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
