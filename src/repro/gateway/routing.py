"""Rendezvous (highest-random-weight) routing of UE keys to shards.

Every request carries a routing key -- the UE identity, an area name,
whatever the client wants its requests partitioned by -- and the
gateway must map that key to one of N predictor shards such that

* the mapping is **deterministic** across processes and platforms
  (replays and chaos transcripts stay stable),
* keys spread **evenly** (no shard melts while its neighbors idle), and
* changing the shard count is **minimally disruptive**: growing N to
  N+1 moves only the keys whose highest score belongs to the new shard
  (an expected 1/(N+1) fraction), and every moved key lands *on* the
  new shard -- the classic rendezvous-hashing guarantee, which
  ``hash(key) % N`` (reshuffles almost everything) cannot give.

Scores are blake2b hashes of ``(seed, key, shard)`` -- the same
primitive family as :func:`repro.resil.faults.unit_hash`, stable with
no dependence on Python's randomized ``hash()``.  ``tests/gateway/``
pins all three properties with hypothesis.
"""

from __future__ import annotations

import hashlib

__all__ = ["in_canary", "route", "shard_scores"]


def _score(seed: int, key: str, shard: int) -> int:
    """Deterministic 64-bit weight of placing ``key`` on ``shard``."""
    token = f"{int(seed)}|{key}|{int(shard)}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_scores(key: str, n_shards: int, seed: int = 0) -> list[int]:
    """Every shard's rendezvous score for ``key`` (index = shard)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return [_score(seed, key, s) for s in range(n_shards)]


def in_canary(key: str, fraction: float, seed: int = 0) -> bool:
    """Whether ``key`` falls in the deterministic canary slice.

    The key's rendezvous score against a reserved virtual "canary"
    member is normalized to [0, 1) and compared to ``fraction`` -- a
    pure function of ``(seed, key)``, so the same UEs are canaried on
    every gateway and every replay, and growing ``fraction`` only ever
    *adds* keys to the slice (the rollout controller widens the canary
    without churning it).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if fraction == 0.0:
        return False
    if fraction == 1.0:
        return True
    return _score(seed, key, -1) / 2.0 ** 64 < fraction


def route(key: str, n_shards: int, seed: int = 0) -> int:
    """The shard index owning ``key``: argmax of the rendezvous scores.

    Ties (a ~2^-64 event) break toward the lower shard index so the
    answer is still a pure function of ``(seed, key, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    best_shard = 0
    best_score = -1
    for shard in range(n_shards):
        score = _score(seed, key, shard)
        if score > best_score:
            best_score = score
            best_shard = shard
    return best_shard
