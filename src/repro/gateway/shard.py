"""One predictor shard: admission control, breaker, hot-swap generations.

A :class:`PredictorShard` owns everything between "the gateway routed a
request here" and "a prediction came back":

* **Admission control** -- a bounded in-flight window (``queue_depth``).
  A submit that would exceed it raises :class:`ShedError` immediately;
  the gateway turns that into a 429-style response instead of letting
  queues grow without bound and every request's latency with them.
* **A per-shard circuit breaker** (:class:`repro.resil.retry.
  CircuitBreaker`, injectable clock).  Genuine prediction failures --
  crash-seam fires, dead worker processes, a poisoned model -- trip it;
  while open, submits shed without touching the executor, and the
  half-open probe re-admits traffic once the backend recovers.  Deadline
  expiries do *not* feed the breaker (they are a load symptom, not a
  backend fault).
* **Hot swap without torn responses** -- each ``(model, version)`` pair
  gets its own *generation*: a :class:`~repro.serve.batcher.
  BatchPredictor` whose predict closure is pinned to that version.
  :meth:`swap` installs the new generation atomically and drain-closes
  the old one in the background, so every in-flight row completes
  against exactly the model version stamped at submit time -- never a
  mixture, never a drop.

The model itself runs in an *executor* (``repro.gateway.procworker``):
in-process for the thread backend, a dedicated worker process for the
process backend.  Both fire the ``gateway.shard_crash`` fault seam with
the same ``(shard_index, seq)`` key, so chaos schedules are
backend-invariant.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.gateway.procworker import ProcessShardExecutor, ThreadShardExecutor
from repro.resil.retry import CircuitBreaker, DeadlineExceeded
from repro.serve.batcher import BatchPredictor

__all__ = ["PredictorShard", "ShedError"]

_LOG = obs.get_logger("gateway.shard")


class ShedError(RuntimeError):
    """The shard refused the request (full window or open breaker)."""

    def __init__(self, reason: str, shard: int):
        self.reason = reason
        self.shard = shard
        super().__init__(f"shard {shard} shed request: {reason}")


class _Generation:
    """One (version, micro-batcher) pair; swapped atomically as a unit."""

    __slots__ = ("version", "batcher")

    def __init__(self, version: int, batcher: BatchPredictor):
        self.version = version
        self.batcher = batcher


class PredictorShard:
    """A routed slice of the serving fleet, fronted by a micro-batcher."""

    def __init__(
        self,
        index: int,
        model,
        version: int = 1,
        *,
        backend: str = "thread",
        queue_depth: int = 64,
        max_batch_size: int = 32,
        max_wait_s: float = 0.001,
        deadline_s: float = 0.0,
        predict_attempts: int = 2,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 5.0,
        breaker_clock=time.monotonic,
        telemetry=None,
        mp_context: str | None = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.index = index
        self.backend = backend
        self.queue_depth = queue_depth
        self._batch_kwargs = dict(
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            deadline_s=deadline_s,
            predict_attempts=predict_attempts,
            telemetry=telemetry,
        )
        if backend == "process":
            self.executor = ProcessShardExecutor(index, context=mp_context)
        else:
            self.executor = ThreadShardExecutor(index)
        self.breaker = CircuitBreaker(
            name=f"gateway.shard{index}",
            failure_threshold=breaker_threshold,
            reset_timeout_s=breaker_reset_s,
            clock=breaker_clock,
        )
        self._lock = threading.Lock()
        #: Predict-call sequence shared across generations: the fault
        #: seam key stays monotonic through hot swaps.
        self._seq = 0
        self._inflight = 0
        self._drains: list[threading.Thread] = []
        #: Cumulative shard counters (read by GatewayStats.per_shard).
        self.submitted = 0
        self.completed = 0
        self.failures = 0
        self.shed_queue = 0
        self.shed_breaker = 0
        self.deadline_exceeded = 0
        self.swaps = 0
        self.executor.load(int(version), model)
        self._generation = _Generation(
            int(version), self._make_batcher(int(version))
        )

    # -- generations --------------------------------------------------------- #

    def _make_batcher(self, version: int) -> BatchPredictor:
        def predict(X):
            with self._lock:
                seq = self._seq
                self._seq += 1
            return self.executor.predict(version, X, seq)

        return BatchPredictor(predict, **self._batch_kwargs).start()

    @property
    def version(self) -> int:
        """The model version new submits are stamped with."""
        return self._generation.version

    @property
    def inflight(self) -> int:
        return self._inflight

    def swap(self, model, version: int) -> None:
        """Install ``(model, version)`` for new requests; drain the old.

        The executor learns the new version first, then the generation
        slot is exchanged under the lock -- a submit sees either the old
        generation (and completes against the old model) or the new one,
        never a half-installed state.  The outgoing batcher drain-closes
        on a background thread so in-flight futures resolve normally.
        """
        version = int(version)
        self.executor.load(version, model)
        new_gen = _Generation(version, self._make_batcher(version))
        with self._lock:
            old_gen = self._generation
            self._generation = new_gen
            self.swaps += 1
        obs.inc("gateway.swaps_total")
        _LOG.info("shard hot-swapped model", trace_id="-", shard=self.index,
                  old_version=old_gen.version, new_version=version)

        def drain():
            old_gen.batcher.close()  # waits for its queue to empty
            self.executor.unload(old_gen.version)

        t = threading.Thread(
            target=drain, name=f"gateway-shard{self.index}-drain",
            daemon=True,
        )
        t.start()
        self._drains.append(t)

    # -- submission ---------------------------------------------------------- #

    def submit(self, features, trace_id: str | None = None):
        """Admit one row; returns ``(future, stamped_version)``.

        Raises :class:`ShedError` when the in-flight window is full or
        the breaker is open -- the caller never blocks here, which is
        what keeps the gateway's event loop honest.
        """
        with self._lock:
            generation = self._generation
            if self._inflight >= self.queue_depth:
                self.shed_queue += 1
                obs.inc("gateway.shed_total")
                raise ShedError("queue full", self.index)
            if not self.breaker.allow():
                self.shed_breaker += 1
                obs.inc("gateway.shed_total")
                raise ShedError("circuit breaker open", self.index)
            self._inflight += 1
            self.submitted += 1
        try:
            fut = generation.batcher.submit(features, trace_id=trace_id)
        except Exception:
            with self._lock:
                self._inflight -= 1
                self.submitted -= 1
            raise
        fut.add_done_callback(self._settle)
        return fut, generation.version

    def _settle(self, fut) -> None:
        exc = fut.exception()
        with self._lock:
            self._inflight -= 1
            if exc is None:
                self.completed += 1
            elif isinstance(exc, DeadlineExceeded):
                self.deadline_exceeded += 1
            else:
                self.failures += 1
        # Breaker bookkeeping outside the shard lock (it has its own):
        # deadline expiry is load, not backend health -- skip it.
        if exc is None:
            self.breaker.record_success()
        elif not isinstance(exc, DeadlineExceeded):
            self.breaker.record_failure()
            obs.inc("gateway.shard_failures_total")

    def flush(self) -> None:
        """Wake the current generation's collector (end of a burst)."""
        self._generation.batcher.flush()

    # -- lifecycle ----------------------------------------------------------- #

    def close(self) -> None:
        self._generation.batcher.close()
        for t in self._drains:
            t.join(timeout=5.0)
        self.executor.close()

    def __enter__(self) -> "PredictorShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failures": self.failures,
                "shed_queue": self.shed_queue,
                "shed_breaker": self.shed_breaker,
                "deadline_exceeded": self.deadline_exceeded,
                "swaps": self.swaps,
                "inflight": self._inflight,
                "version": self._generation.version,
                "breaker_state": self.breaker.state,
            }
