"""``repro.gateway`` -- the sharded async inference front door.

One asyncio event loop multiplexes many concurrent JSONL client
connections; each request routes by its UE/area key (rendezvous
hashing, :mod:`repro.gateway.routing`) to one of N predictor shards
(:mod:`repro.gateway.shard`) -- a micro-batcher plus per-shard
admission window, circuit breaker and hot-swappable model generations,
backed in-process or by a dedicated worker process per shard
(:mod:`repro.gateway.procworker`).  Open-loop load schedules for the
bench and chaos suites live in :mod:`repro.gateway.loadgen`.

Quickstart::

    from repro.gateway import AsyncGateway, GatewayConfig

    with AsyncGateway(model, version=1,
                      config=GatewayConfig(shards=4)) as gw:
        stats = gw.run_jsonl(request_lines, sys.stdout)

CLI: ``repro serve --gateway --shards 4 ...`` (docs/serving.md).
"""

from repro.gateway.gateway import (
    AsyncGateway,
    GatewayConfig,
    GatewayStats,
    run_open_loop,
)
from repro.gateway.loadgen import (
    ScheduledRequests,
    diurnal,
    flash_crowd,
    steady,
)
from repro.gateway.procworker import (
    ProcessShardExecutor,
    ShardCrashed,
    ThreadShardExecutor,
)
from repro.gateway.routing import route, shard_scores
from repro.gateway.shard import PredictorShard, ShedError

__all__ = [
    "AsyncGateway",
    "GatewayConfig",
    "GatewayStats",
    "PredictorShard",
    "ProcessShardExecutor",
    "ScheduledRequests",
    "ShardCrashed",
    "ShedError",
    "ThreadShardExecutor",
    "diurnal",
    "flash_crowd",
    "route",
    "run_open_loop",
    "shard_scores",
    "steady",
]
