"""Deterministic open-loop load: seeded arrival schedules for the gateway.

Closed-loop load (send, wait, send) hides overload: the generator slows
down exactly when the server does, so tail latency looks flat no matter
how sick the backend is (the *coordinated omission* trap).  The bench
and the chaos suite drive the gateway **open loop** instead -- request
``i`` is due at schedule time ``t_i`` regardless of how request ``i-1``
fared -- which is the only arrival model under which p99/p999 and shed
rates mean anything.

Three arrival processes, all pure functions of ``(seed, rate, horizon)``
via :func:`numpy.random.default_rng`:

* :func:`steady`   -- homogeneous Poisson: exponential inter-arrivals
  at a constant ``rate_hz``.
* :func:`diurnal`  -- inhomogeneous Poisson whose rate follows a
  sinusoidal day curve (peak/trough around the mean), sampled by
  *thinning* [Lewis & Shedler 1979]: draw at the peak rate, keep each
  arrival with probability ``rate(t)/peak``.
* :func:`flash_crowd` -- a steady base rate with a burst window at
  ``burst_mult`` times the base (a stadium emptying onto one cell),
  also via thinning.

Schedules are plain ``float`` arrival-time arrays; they can be replayed
wall-clock (``time_scale=1``), compressed for tests, or fed through
:class:`ScheduledRequests` which asyncio-sleeps until each due time and
yields ``(t_due, line)`` pairs.
"""

from __future__ import annotations

import asyncio

import numpy as np

__all__ = [
    "ScheduledRequests",
    "diurnal",
    "flash_crowd",
    "steady",
]


def steady(rate_hz: float, horizon_s: float, seed: int = 0) -> np.ndarray:
    """Poisson arrivals at a constant rate over ``[0, horizon_s)``."""
    if rate_hz <= 0 or horizon_s <= 0:
        return np.empty(0)
    rng = np.random.default_rng(seed)
    # Draw enough exponentials to cover the horizon with slack, then cut.
    n_guess = max(16, int(rate_hz * horizon_s * 1.5) + 64)
    times = np.cumsum(rng.exponential(1.0 / rate_hz, size=n_guess))
    while times.size and times[-1] < horizon_s:
        more = np.cumsum(rng.exponential(1.0 / rate_hz, size=n_guess))
        times = np.concatenate([times, times[-1] + more])
    return times[times < horizon_s]


def _thin(peak_rate_hz: float, horizon_s: float, seed: int, rate_fn
          ) -> np.ndarray:
    """Inhomogeneous Poisson by thinning a peak-rate homogeneous draw."""
    candidates = steady(peak_rate_hz, horizon_s, seed)
    if candidates.size == 0:
        return candidates
    rng = np.random.default_rng(seed + 1)  # independent keep/drop stream
    keep_prob = np.asarray(rate_fn(candidates), dtype=float) / peak_rate_hz
    return candidates[rng.random(candidates.size) < keep_prob]


def diurnal(mean_rate_hz: float, horizon_s: float, seed: int = 0,
            period_s: float | None = None,
            swing: float = 0.8) -> np.ndarray:
    """A sinusoidal day curve: rate(t) = mean * (1 + swing*sin(...)).

    ``period_s`` defaults to the horizon (one full day compressed into
    the run); ``swing`` in [0, 1) sets peak/trough amplitude.
    """
    if not 0.0 <= swing < 1.0:
        raise ValueError("swing must be within [0, 1)")
    if mean_rate_hz <= 0 or horizon_s <= 0:
        return np.empty(0)
    period = period_s if period_s is not None else horizon_s
    peak = mean_rate_hz * (1.0 + swing)

    def rate_fn(t):
        return mean_rate_hz * (1.0 + swing * np.sin(2 * np.pi * t / period))

    return _thin(peak, horizon_s, seed, rate_fn)


def flash_crowd(base_rate_hz: float, horizon_s: float, seed: int = 0,
                burst_start_frac: float = 0.4,
                burst_len_frac: float = 0.2,
                burst_mult: float = 8.0) -> np.ndarray:
    """A steady base with one burst window at ``burst_mult`` x the base."""
    if burst_mult < 1.0:
        raise ValueError("burst_mult must be >= 1")
    if base_rate_hz <= 0 or horizon_s <= 0:
        return np.empty(0)
    t0 = horizon_s * burst_start_frac
    t1 = t0 + horizon_s * burst_len_frac
    peak = base_rate_hz * burst_mult

    def rate_fn(t):
        t = np.asarray(t)
        return np.where((t >= t0) & (t < t1), peak, base_rate_hz)

    return _thin(peak, horizon_s, seed, rate_fn)


class ScheduledRequests:
    """Replay ``lines`` at ``schedule`` times (open loop) in asyncio.

    An async iterator yielding ``(t_due_s, line)`` as each due time
    arrives on the loop's clock; ``time_scale`` compresses the schedule
    (0.1 = ten times faster than recorded).  Crucially it sleeps until
    the *schedule*, never until the previous response -- arrival times
    do not depend on service times.
    """

    def __init__(self, schedule, lines, time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        schedule = np.asarray(schedule, dtype=float)
        lines = list(lines)
        if schedule.size != len(lines):
            raise ValueError(
                f"schedule has {schedule.size} arrivals for "
                f"{len(lines)} lines"
            )
        self.schedule = schedule
        self.lines = lines
        self.time_scale = time_scale

    def __len__(self) -> int:
        return len(self.lines)

    def __aiter__(self):
        return self._gen()

    async def _gen(self):
        loop = asyncio.get_running_loop()
        t_start = loop.time()
        for t_due, line in zip(self.schedule, self.lines):
            delay = t_start + t_due * self.time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            yield float(t_due), line
