"""Process-backed shard executors: one predictor process per shard.

The gateway's thread backend runs every shard's model inside the
gateway process -- fine for numpy models (predict releases the GIL) and
for tests, but a real deployment wants fault and memory isolation per
shard.  :class:`ProcessShardExecutor` gives each shard its own worker
process, talking over a ``multiprocessing`` pipe:

parent -> child   ``("load", version, payload)`` (a
                  ``repro.ml.serialize`` dict -- no pickle of model
                  objects crosses the boundary),
                  ``("predict", version, seq, rows)``, ``("stop",)``
child -> parent   ``("ok", version)``, ``("preds", rows)``,
                  ``("error", repr)``

The start method comes from :func:`repro.par.executor.default_context`
(``REPRO_MP_CONTEXT``), and the worker function is module-level so
``spawn`` works.  Models are cached in the child by version, so a hot
swap ships the new payload once and in-flight batches against the old
version keep predicting it -- the stamped version can never tear.

Crash semantics: the ``gateway.shard_crash`` fault seam fires *inside
the child* (``os._exit``), exactly like a segfaulting model server.
The parent sees a dead pipe, raises :class:`ShardCrashed` into the
shard's micro-batcher (failing that batch's requests and feeding the
shard breaker), and **respawns lazily**: the next predict restarts the
process and re-ships every model payload the executor knows, so a
half-open breaker probe finds a fresh worker to recover on.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import numpy as np

from repro import obs
from repro.ml.serialize import model_from_dict, model_to_dict
from repro.par.executor import default_context
from repro.resil import faults

__all__ = ["ProcessShardExecutor", "ShardCrashed", "ThreadShardExecutor"]

_LOG = obs.get_logger("gateway.procworker")

faults.register_point(
    "gateway.shard_crash",
    "kill/abort a predictor shard mid-batch (keyed by shard index, seq)",
)


class ShardCrashed(RuntimeError):
    """The shard's worker process died mid-request (pipe went dead)."""


class ThreadShardExecutor:
    """In-process executor: models by version, predicts on the caller.

    The default backend.  ``predict`` runs on the shard's micro-batcher
    thread; numpy-heavy models release the GIL there, so N shards really
    do overlap.  The ``gateway.shard_crash`` seam fires here as a raised
    :class:`~repro.resil.faults.FaultError` (a crash the breaker sees,
    without killing the host process).
    """

    def __init__(self, shard_index: int):
        self.shard_index = shard_index
        self._models: dict[int, object] = {}
        self._lock = threading.Lock()

    def load(self, version: int, model) -> None:
        with self._lock:
            self._models[int(version)] = model

    def unload(self, version: int) -> None:
        with self._lock:
            self._models.pop(int(version), None)

    def predict(self, version: int, X, seq: int):
        faults.inject("gateway.shard_crash", key=(self.shard_index, seq))
        with self._lock:
            model = self._models[int(version)]
        fn = getattr(model, "predict_proba", None) or model.predict
        return fn(np.asarray(X, dtype=float))

    def close(self) -> None:
        with self._lock:
            self._models.clear()


def _shard_worker_main(conn, shard_index: int, obs_enabled: bool) -> None:
    """The child process loop (module-level so ``spawn`` can import it)."""
    obs.set_enabled(obs_enabled)
    models: dict[int, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "load":
            _, version, payload = msg
            try:
                models[int(version)] = model_from_dict(payload)
                conn.send(("ok", int(version)))
            except Exception as exc:
                obs.inc("gateway.worker_errors_total")
                conn.send(("error", repr(exc)))
            continue
        if kind == "predict":
            _, version, seq, rows = msg
            # The crash seam: decided by the child's own env-derived
            # injector with the same (shard, seq) key the thread backend
            # uses, so chaos schedules are backend-invariant.
            if faults.active_injector().should_fire(
                "gateway.shard_crash", key=(shard_index, int(seq))
            ):
                os._exit(17)
            try:
                model = models[int(version)]
                fn = getattr(model, "predict_proba", None) or model.predict
                preds = fn(np.asarray(rows, dtype=float))
                conn.send(("preds", np.asarray(preds).tolist()))
            except Exception as exc:
                obs.inc("gateway.worker_errors_total")
                conn.send(("error", repr(exc)))
            continue
        conn.send(("error", f"unknown message kind {kind!r}"))


class ProcessShardExecutor:
    """One worker process per shard, restarted lazily after a crash."""

    def __init__(self, shard_index: int, context: str | None = None):
        self.shard_index = shard_index
        self._ctx = multiprocessing.get_context(context or default_context())
        #: version -> serialized payload, re-shipped after a respawn.
        self._payloads: dict[int, dict] = {}
        self._lock = threading.Lock()
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._conn = None
        self._shipped: set[int] = set()
        self._spawns = 0
        self.restarts = 0

    # -- process lifecycle (lock held by callers) ---------------------------- #

    def _alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child, self.shard_index, obs.enabled()),
            name=f"gateway-shard-{self.shard_index}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._proc, self._conn = proc, parent
        self._shipped = set()
        if self._spawns > 0:
            self.restarts += 1
            obs.inc("gateway.shard_restarts_total")
            _LOG.warning("shard worker respawned", trace_id="-",
                         shard=self.shard_index, restarts=self.restarts)
        self._spawns += 1

    def _reap(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        if self._proc is not None:
            self._proc.join(timeout=1.0)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=1.0)
        self._proc, self._conn = None, None

    def _ensure(self, version: int) -> None:
        """A live worker with ``version``'s model shipped (lock held)."""
        if not self._alive():
            self._reap()
            self._spawn()
        if version not in self._shipped:
            payload = self._payloads[version]
            self._conn.send(("load", version, payload))
            kind, detail = self._conn.recv()
            if kind != "ok":
                raise RuntimeError(
                    f"shard {self.shard_index} worker failed to load "
                    f"model v{version}: {detail}"
                )
            self._shipped.add(version)

    # -- executor API -------------------------------------------------------- #

    def load(self, version: int, model) -> None:
        """Register (and ship) a model version; called before it serves."""
        payload = model_to_dict(model)
        with self._lock:
            self._payloads[int(version)] = payload
            try:
                self._ensure(int(version))
            except (EOFError, OSError, BrokenPipeError):
                # The worker died during shipping; the next predict's
                # ensure() respawns and re-ships.
                self._reap()

    def unload(self, version: int) -> None:
        with self._lock:
            self._payloads.pop(int(version), None)
            self._shipped.discard(int(version))

    def predict(self, version: int, X, seq: int):
        rows = np.asarray(X, dtype=float).tolist()
        with self._lock:
            try:
                self._ensure(int(version))
                self._conn.send(("predict", int(version), int(seq), rows))
                msg = self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._reap()
                obs.inc("gateway.shard_crashes_total")
                raise ShardCrashed(
                    f"shard {self.shard_index} worker died mid-predict "
                    f"(seq={seq})"
                ) from exc
        kind, payload = msg
        if kind == "error":
            raise RuntimeError(
                f"shard {self.shard_index} worker predict failed: {payload}"
            )
        return np.asarray(payload, dtype=float)

    def close(self) -> None:
        with self._lock:
            if self._alive():
                try:
                    self._conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            self._reap()
            self._payloads.clear()
