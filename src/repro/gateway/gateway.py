"""The asyncio front door: many connections, N shards, one event loop.

:class:`AsyncGateway` multiplexes concurrent JSONL client connections
over a fleet of :class:`~repro.gateway.shard.PredictorShard`\\ s:

* each request line is parsed once (the shared
  :class:`~repro.serve.protocol.RequestCodec`), routed by its UE/area
  key through rendezvous hashing (:func:`repro.gateway.routing.route`)
  so a given key always lands on the same shard,
* admission happens synchronously at submit time -- a full shard window
  or an open shard breaker sheds the request with a 429-style response
  *now* instead of queueing it into a latency grave,
* responses return **per connection in request order**: a writer task
  per connection awaits each pending future in sequence
  (``asyncio.wrap_future`` bridges the batcher's
  ``concurrent.futures`` world into the loop) and stamps
  ``shard``/``model_version``/``trace`` metadata onto the wire,
* :meth:`AsyncGateway.swap` installs a new model version on every shard
  without dropping in-flight requests -- each response carries exactly
  the version it was admitted under (generation swap, never torn).

The event loop itself never blocks: parsing, routing and admission are
in-memory; prediction runs on shard batcher threads (or worker
processes); waiting is always an ``await``.  ``tools/check_gateway.py``
lint-enforces the no-blocking-calls rule.

Entry points: :meth:`handle_connection` (one async line stream in,
ordered responses out -- the unit the tests drive),
:meth:`serve_tcp` (a real ``asyncio.start_server`` front), and
:meth:`run_jsonl` (sync wrapper matching
:meth:`~repro.serve.service.InferenceService.run_jsonl` for the CLI).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs.telemetry import (
    AvailabilitySLO,
    LatencySLO,
    TelemetryPlane,
    baseline_of,
)
from repro.resil.retry import DeadlineExceeded
from repro.gateway.routing import route
from repro.gateway.shard import PredictorShard, ShedError
from repro.serve.protocol import RequestCodec, routing_key

__all__ = ["AsyncGateway", "GatewayConfig", "GatewayStats", "run_open_loop"]

_LOG = obs.get_logger("gateway")


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the sharded serving path (docs/serving.md)."""

    #: Shard fleet size and the per-shard in-flight admission window.
    shards: int = 4
    queue_depth: int = 64
    #: Micro-batching inside each shard (the straggler window is short:
    #: arrivals are already concurrent at the gateway).
    max_batch_size: int = 32
    max_wait_ms: float = 1.0
    #: Max milliseconds a request may spend queued in a shard before it
    #: fails with a deadline error (0 = unbounded).
    request_deadline_ms: float = 0.0
    predict_attempts: int = 2
    #: Per-shard breaker: consecutive backend failures that trip it, and
    #: how long it stays open before the half-open probe.
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    #: Rendezvous-hash seed (changing it reshuffles every key).
    routing_seed: int = 0
    #: ``"thread"`` (in-process models) or ``"process"`` (one worker
    #: process per shard; crash-isolated).
    backend: str = "thread"
    mp_context: str | None = None
    #: Windowed telemetry plane + the gateway SLOs it evaluates.
    telemetry: bool = True
    window_s: float = 60.0
    slow_window_s: float = 600.0
    latency_slo_p99_ms: float = 50.0
    latency_slo_p999_ms: float = 250.0
    availability_target: float = 0.999


@dataclass
class GatewayStats:
    """What the gateway did over one run / collection window."""

    requests: int = 0
    #: Malformed requests (bad JSON, wrong features) -- answered with
    #: error responses, never routed.
    errors: int = 0
    #: Requests refused at admission (full window or open breaker).
    shed: int = 0
    #: Requests that reached a shard backend and failed there.
    failures: int = 0
    #: Requests that expired queued inside a shard.
    deadline_exceeded: int = 0
    swaps: int = 0
    connections: int = 0
    wall_s: float = 0.0
    #: Per-shard counter dicts (``PredictorShard.stats()``).
    per_shard: list = field(default_factory=list)
    #: Final telemetry-plane snapshot; None when the plane is off.
    telemetry: dict | None = field(default=None, repr=False)

    @property
    def failed_total(self) -> int:
        return self.failures + self.shed + self.deadline_exceeded

    @property
    def rows_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def budget_burned(self) -> bool:
        """Whether the run's availability error budget was spent."""
        verdict = (self.telemetry or {}).get("last_evaluation") or {}
        return bool(verdict.get("budget_burned"))


class AsyncGateway:
    """Route, admit, shard, answer -- without blocking the event loop."""

    def __init__(self, model, version: int = 1,
                 config: GatewayConfig | None = None, *,
                 telemetry: TelemetryPlane | None = None,
                 breaker_clock=time.monotonic):
        self.config = config or GatewayConfig()
        if self.config.shards < 1:
            raise ValueError("shards must be >= 1")
        self.version = int(version)
        #: version -> codec; responses format through the codec of the
        #: version they were admitted under (a swap never tears them).
        self._codecs: dict[int, RequestCodec] = {
            self.version: RequestCodec(model)
        }
        self.telemetry = telemetry
        if self.telemetry is None and self.config.telemetry:
            self.telemetry = TelemetryPlane(
                window_s=self.config.window_s,
                slow_window_s=self.config.slow_window_s,
                slos=self.default_slos(self.config),
                baseline=baseline_of(model),
            )
        self.shards = [
            PredictorShard(
                i, model, self.version,
                backend=self.config.backend,
                queue_depth=self.config.queue_depth,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_ms / 1000.0,
                deadline_s=self.config.request_deadline_ms / 1000.0,
                predict_attempts=self.config.predict_attempts,
                breaker_threshold=self.config.breaker_threshold,
                breaker_reset_s=self.config.breaker_reset_s,
                breaker_clock=breaker_clock,
                telemetry=self.telemetry,
                mp_context=self.config.mp_context,
            )
            for i in range(self.config.shards)
        ]
        self._requests = 0
        self._errors = 0
        self._shed = 0
        self._failures = 0
        self._deadline_exceeded = 0
        self._swaps = 0
        self._connections = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------------- #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "AsyncGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def default_slos(config: "GatewayConfig") -> list:
        return [
            LatencySLO("gateway.latency_p99", "serve.request_latency_s",
                       0.99, config.latency_slo_p99_ms / 1000.0),
            LatencySLO("gateway.latency_p999", "serve.request_latency_s",
                       0.999, config.latency_slo_p999_ms / 1000.0),
            AvailabilitySLO("gateway.availability",
                            good="gateway.ok_total",
                            bad="gateway.failed_total",
                            target=config.availability_target),
        ]

    # -- hot swap ------------------------------------------------------------ #

    def swap(self, model, version: int) -> None:
        """Serve ``(model, version)`` for every *new* request.

        In-flight requests finish against the version they were admitted
        under; the codec table keeps every version's formatter alive, so
        a response is always rendered by the model that predicted it.
        """
        version = int(version)
        self._codecs[version] = RequestCodec(model)
        for shard in self.shards:
            shard.swap(model, version)
        old = self.version
        self.version = version
        self._swaps += 1
        obs.inc("gateway.model_swaps_total")
        if self.telemetry is not None:
            self.telemetry.inc("gateway.model_swaps_total")
        _LOG.info("gateway swapped model", trace_id="-", shard=-1,
                  old_version=old, new_version=version)

    def swap_latest(self, registry, name: str) -> int | None:
        """Hot-load the registry's newest version of ``name`` if newer.

        Returns the new version number, or None when already current.
        """
        latest = registry.latest_version(name)
        if latest is None or int(latest) == self.version:
            return None
        model = registry.load_resilient(name, int(latest))
        self.swap(model, int(latest))
        return int(latest)

    # -- admission (synchronous; called from the event loop) ------------------ #

    def _admit(self, line: str):
        """Parse, route and submit one request line.

        Returns ``(req, pending, trace_id, shard_index, version)`` where
        ``pending`` is either a pre-formed response dict (bad request /
        shed) or the shard future the writer will await.
        """
        codec = self._codecs[self.version]
        req, features = codec.parse_request(line)
        tid = codec.trace_of(req)
        self._requests += 1
        if self.telemetry is not None:
            self.telemetry.inc("gateway.requests_total")
        if features is None:
            self._errors += 1
            obs.inc("gateway.bad_requests_total")
            response = codec.error_response(req)
            return req, response, tid, -1, self.version
        key = routing_key(req, tid)
        shard_index = route(key, len(self.shards),
                            seed=self.config.routing_seed)
        shard = self.shards[shard_index]
        try:
            fut, version = shard.submit(features, trace_id=tid)
        except ShedError as exc:
            self._shed += 1
            if self.telemetry is not None:
                self.telemetry.inc("gateway.shed_total")
                self.telemetry.inc("gateway.failed_total")
            _LOG.warning("request shed at admission", trace_id=tid,
                         shard=shard_index, reason=exc.reason)
            response = codec.attach_id(
                {"error": f"service unavailable: {exc.reason}",
                 "status": 429},
                req,
            )
            return req, response, tid, shard_index, self.version
        return req, fut, tid, shard_index, version

    async def _settle(self, entry) -> dict:
        """One response dict for one admitted entry (awaits the future)."""
        req, pending, tid, shard_index, version = entry
        if isinstance(pending, dict):
            response = pending
        else:
            codec = self._codecs[version]
            try:
                result = await asyncio.wrap_future(pending)
            except DeadlineExceeded as exc:
                self._deadline_exceeded += 1
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.deadline_exceeded_total")
                    self.telemetry.inc("gateway.failed_total")
                _LOG.warning("request deadline exceeded", trace_id=tid,
                             shard=shard_index, error=str(exc))
                response = codec.attach_id(
                    {"error": f"deadline exceeded: {exc}"}, req)
            except Exception as exc:
                self._failures += 1
                obs.inc("gateway.request_failures_total")
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.failed_total")
                _LOG.warning("request failed", trace_id=tid,
                             shard=shard_index, error=str(exc))
                response = codec.attach_id(
                    {"error": f"prediction failed: {exc}"}, req)
            else:
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.ok_total")
                    self.telemetry.observe_drift(codec.drift_value(result))
                response = codec.format_response(req, result)
                response["model_version"] = version
        if shard_index >= 0:
            response["shard"] = shard_index
        response["trace"] = tid
        if self.telemetry is not None:
            self.telemetry.maybe_evaluate()
        return response

    # -- connections --------------------------------------------------------- #

    async def handle_connection(self, lines, write) -> None:
        """Serve one connection: async line stream in, ordered lines out.

        ``lines`` is an async iterator of raw request lines; ``write``
        is an async callable receiving each response line (newline
        included).  Responses come back in request order -- a per-
        connection writer task settles pending futures in sequence, so
        slow rows on one connection never reorder (or block) another
        connection's stream.
        """
        self._connections += 1
        if self.telemetry is not None:
            self.telemetry.inc("gateway.connections_total")
        pending: asyncio.Queue = asyncio.Queue()

        async def writer():
            while True:
                entry = await pending.get()
                if entry is None:
                    return
                response = await self._settle(entry)
                await write(json.dumps(response) + "\n")

        writer_task = asyncio.ensure_future(writer())
        touched: set[int] = set()
        try:
            async for line in lines:
                if not line.strip():
                    continue
                entry = self._admit(line)
                if entry[3] >= 0 and not isinstance(entry[1], dict):
                    touched.add(entry[3])
                await pending.put(entry)
        finally:
            # End of input: wake every touched shard's collector so tail
            # batches predict now, then let the writer drain in order.
            for shard_index in touched:
                self.shards[shard_index].flush()
            await pending.put(None)
            await writer_task

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One TCP client (the ``serve_tcp`` connection callback)."""

        async def lines():
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                yield raw.decode("utf-8", errors="replace")

        async def write(text: str):
            writer.write(text.encode())
            await writer.drain()

        try:
            await self.handle_connection(lines(), write)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """A listening ``asyncio`` server speaking the JSONL protocol."""
        server = await asyncio.start_server(self._handle_client, host, port)
        addr = server.sockets[0].getsockname()
        _LOG.info("gateway listening", trace_id="-", shard=-1,
                  host=addr[0], port=addr[1],
                  shards=len(self.shards))
        return server

    # -- sync entry point (CLI parity with InferenceService.run_jsonl) -------- #

    def run_jsonl(self, lines, out) -> GatewayStats:
        """Serve every line of ``lines`` as one connection; write to ``out``.

        The sync wrapper the CLI uses: same signature and summary shape
        as :meth:`InferenceService.run_jsonl`, but requests fan out over
        the shard fleet.
        """
        t0 = time.perf_counter()

        async def main():
            async def line_stream():
                for line in lines:
                    yield line

            async def write(text: str):
                out.write(text)

            await self.handle_connection(line_stream(), write)

        asyncio.run(main())
        return self.collect_stats(wall_s=time.perf_counter() - t0)

    def collect_stats(self, wall_s: float = 0.0) -> GatewayStats:
        stats = GatewayStats(
            requests=self._requests,
            errors=self._errors,
            shed=self._shed,
            failures=self._failures,
            deadline_exceeded=self._deadline_exceeded,
            swaps=self._swaps,
            connections=self._connections,
            wall_s=wall_s,
            per_shard=[shard.stats() for shard in self.shards],
        )
        if self.telemetry is not None:
            self.telemetry.evaluate()
            stats.telemetry = self.telemetry.snapshot()
        return stats


async def run_open_loop(gateway: AsyncGateway, streams) -> list[list[dict]]:
    """Drive concurrent open-loop connections; per-connection responses.

    ``streams`` is a list of :class:`~repro.gateway.loadgen.
    ScheduledRequests` (or any async iterable yielding ``(t_due,
    line)`` pairs -- each stream owns its replay ``time_scale``), one
    per simulated connection.  Every connection runs
    concurrently on the loop; responses come back parsed, in request
    order per connection.  The harness under ``tests/gateway/`` and
    ``benchmarks/bench_gateway.py`` both drive the gateway through here.
    """

    async def one(stream) -> list[dict]:
        responses: list[dict] = []

        async def lines():
            async for _, line in stream:
                yield line

        async def write(text: str):
            responses.append(json.loads(text))

        await gateway.handle_connection(lines(), write)
        return responses

    return list(await asyncio.gather(*(one(s) for s in streams)))
