"""The asyncio front door: many connections, N shards, one event loop.

:class:`AsyncGateway` multiplexes concurrent JSONL client connections
over a fleet of :class:`~repro.gateway.shard.PredictorShard`\\ s:

* each request line is parsed once (the shared
  :class:`~repro.serve.protocol.RequestCodec`), routed by its UE/area
  key through rendezvous hashing (:func:`repro.gateway.routing.route`)
  so a given key always lands on the same shard,
* admission happens synchronously at submit time -- a full shard window
  or an open shard breaker sheds the request with a 429-style response
  *now* instead of queueing it into a latency grave,
* responses return **per connection in request order**: a writer task
  per connection awaits each pending future in sequence
  (``asyncio.wrap_future`` bridges the batcher's
  ``concurrent.futures`` world into the loop) and stamps
  ``shard``/``model_version``/``trace`` metadata onto the wire,
* :meth:`AsyncGateway.swap` installs a new model version on every shard
  without dropping in-flight requests -- each response carries exactly
  the version it was admitted under (generation swap, never torn).

The event loop itself never blocks: parsing, routing and admission are
in-memory; prediction runs on shard batcher threads (or worker
processes); waiting is always an ``await``.  ``tools/check_gateway.py``
lint-enforces the no-blocking-calls rule.

Entry points: :meth:`handle_connection` (one async line stream in,
ordered responses out -- the unit the tests drive),
:meth:`serve_tcp` (a real ``asyncio.start_server`` front), and
:meth:`run_jsonl` (sync wrapper matching
:meth:`~repro.serve.service.InferenceService.run_jsonl` for the CLI).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs.telemetry import (
    AvailabilitySLO,
    LatencySLO,
    TelemetryPlane,
    baseline_of,
)
from repro.resil.retry import DeadlineExceeded
from repro.gateway.routing import in_canary, route
from repro.gateway.shard import PredictorShard, ShedError
from repro.serve.protocol import RequestCodec, routing_key

__all__ = ["AsyncGateway", "GatewayConfig", "GatewayStats", "run_open_loop"]

_LOG = obs.get_logger("gateway")


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the sharded serving path (docs/serving.md)."""

    #: Shard fleet size and the per-shard in-flight admission window.
    shards: int = 4
    queue_depth: int = 64
    #: Micro-batching inside each shard (the straggler window is short:
    #: arrivals are already concurrent at the gateway).
    max_batch_size: int = 32
    max_wait_ms: float = 1.0
    #: Max milliseconds a request may spend queued in a shard before it
    #: fails with a deadline error (0 = unbounded).
    request_deadline_ms: float = 0.0
    predict_attempts: int = 2
    #: Per-shard breaker: consecutive backend failures that trip it, and
    #: how long it stays open before the half-open probe.
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    #: Rendezvous-hash seed (changing it reshuffles every key).
    routing_seed: int = 0
    #: ``"thread"`` (in-process models) or ``"process"`` (one worker
    #: process per shard; crash-isolated).
    backend: str = "thread"
    mp_context: str | None = None
    #: Backend for the shadow mirror shard; None follows ``backend``.
    #: ``"process"`` keeps an untrusted candidate's predictions out of
    #: the serving process entirely.
    shadow_backend: str | None = None
    #: Straggler window for the shadow shard's micro-batcher.  Mirror
    #: traffic has no latency SLO (comparisons settle at connection
    #: drain), so a long window turns the mirror into large, infrequent
    #: batches -- the candidate steals far fewer scheduler slices from
    #: the serving path, which is what holds mirroring's p99 overhead
    #: under 10% in benchmarks/bench_rollout.py.
    shadow_max_wait_ms: float = 25.0
    #: Windowed telemetry plane + the gateway SLOs it evaluates.
    telemetry: bool = True
    window_s: float = 60.0
    slow_window_s: float = 600.0
    latency_slo_p99_ms: float = 50.0
    latency_slo_p999_ms: float = 250.0
    availability_target: float = 0.999


@dataclass
class GatewayStats:
    """What the gateway did over one run / collection window."""

    requests: int = 0
    #: Malformed requests (bad JSON, wrong features) -- answered with
    #: error responses, never routed.
    errors: int = 0
    #: Requests refused at admission (full window or open breaker).
    shed: int = 0
    #: Requests that reached a shard backend and failed there.
    failures: int = 0
    #: Requests that expired queued inside a shard.
    deadline_exceeded: int = 0
    swaps: int = 0
    connections: int = 0
    wall_s: float = 0.0
    #: Per-shard counter dicts (``PredictorShard.stats()``).
    per_shard: list = field(default_factory=list)
    #: Final telemetry-plane snapshot; None when the plane is off.
    telemetry: dict | None = field(default=None, repr=False)

    @property
    def failed_total(self) -> int:
        return self.failures + self.shed + self.deadline_exceeded

    @property
    def rows_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def budget_burned(self) -> bool:
        """Whether the run's availability error budget was spent."""
        verdict = (self.telemetry or {}).get("last_evaluation") or {}
        return bool(verdict.get("budget_burned"))


class _ShadowState:
    """A shadow candidate: its shard, codec, and mirrored comparisons."""

    __slots__ = ("codec", "shard", "version", "seq", "records", "pending",
                 "failures", "shed")

    def __init__(self, codec: RequestCodec, shard: PredictorShard,
                 version: int):
        self.codec = codec
        self.shard = shard
        self.version = version
        #: Monotonic admit index; assigned on the event loop, so records
        #: keyed by it replay in one deterministic order.
        self.seq = 0
        self.records: dict[int, dict] = {}
        #: Mirrored (seq, req, ..., futures) awaiting settlement -- the
        #: admit path only appends here; comparisons run at drain time.
        self.pending: list = []
        self.failures = 0
        self.shed = 0


class _CanaryState:
    """A canary candidate serving a deterministic slice of keys."""

    __slots__ = ("codec", "shard", "version", "fraction")

    def __init__(self, codec: RequestCodec, shard: PredictorShard,
                 version: int, fraction: float):
        self.codec = codec
        self.shard = shard
        self.version = version
        self.fraction = fraction


class AsyncGateway:
    """Route, admit, shard, answer -- without blocking the event loop."""

    def __init__(self, model, version: int = 1,
                 config: GatewayConfig | None = None, *,
                 telemetry: TelemetryPlane | None = None,
                 breaker_clock=time.monotonic):
        self.config = config or GatewayConfig()
        if self.config.shards < 1:
            raise ValueError("shards must be >= 1")
        self.version = int(version)
        #: version -> codec; responses format through the codec of the
        #: version they were admitted under (a swap never tears them).
        self._codecs: dict[int, RequestCodec] = {
            self.version: RequestCodec(model)
        }
        self.telemetry = telemetry
        if self.telemetry is None and self.config.telemetry:
            self.telemetry = TelemetryPlane(
                window_s=self.config.window_s,
                slow_window_s=self.config.slow_window_s,
                slos=self.default_slos(self.config),
                baseline=baseline_of(model),
            )
        self.shards = [
            PredictorShard(
                i, model, self.version,
                backend=self.config.backend,
                queue_depth=self.config.queue_depth,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_ms / 1000.0,
                deadline_s=self.config.request_deadline_ms / 1000.0,
                predict_attempts=self.config.predict_attempts,
                breaker_threshold=self.config.breaker_threshold,
                breaker_reset_s=self.config.breaker_reset_s,
                breaker_clock=breaker_clock,
                telemetry=self.telemetry,
                mp_context=self.config.mp_context,
            )
            for i in range(self.config.shards)
        ]
        self._requests = 0
        self._errors = 0
        self._shed = 0
        self._failures = 0
        self._deadline_exceeded = 0
        self._swaps = 0
        self._connections = 0
        self._closed = False
        self._shadow: _ShadowState | None = None
        self._canary: _CanaryState | None = None

    # -- lifecycle ----------------------------------------------------------- #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()
        if self._shadow is not None:
            self._shadow.shard.close()
            self._shadow = None
        if self._canary is not None:
            self._canary.shard.close()
            self._canary = None

    def __enter__(self) -> "AsyncGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def default_slos(config: "GatewayConfig") -> list:
        return [
            LatencySLO("gateway.latency_p99", "serve.request_latency_s",
                       0.99, config.latency_slo_p99_ms / 1000.0),
            LatencySLO("gateway.latency_p999", "serve.request_latency_s",
                       0.999, config.latency_slo_p999_ms / 1000.0),
            AvailabilitySLO("gateway.availability",
                            good="gateway.ok_total",
                            bad="gateway.failed_total",
                            target=config.availability_target),
        ]

    # -- hot swap ------------------------------------------------------------ #

    def swap(self, model, version: int) -> None:
        """Serve ``(model, version)`` for every *new* request.

        In-flight requests finish against the version they were admitted
        under; the codec table keeps every version's formatter alive, so
        a response is always rendered by the model that predicted it.
        """
        version = int(version)
        self._codecs[version] = RequestCodec(model)
        for shard in self.shards:
            shard.swap(model, version)
        old = self.version
        self.version = version
        self._swaps += 1
        obs.inc("gateway.model_swaps_total")
        if self.telemetry is not None:
            self.telemetry.inc("gateway.model_swaps_total")
        _LOG.info("gateway swapped model", trace_id="-", shard=-1,
                  old_version=old, new_version=version)

    def swap_latest(self, registry, name: str) -> int | None:
        """Hot-load the registry's serving version of ``name`` if changed.

        Honors the registry's serving pin when one is set (a rollback
        that re-pins an older version swaps the gateway *back*); without
        a pin the latest version wins as before.  Returns the new
        version number, or None when already current.
        """
        target = registry.resolve_serving(name)
        if target is None or int(target) == self.version:
            return None
        model = registry.load_resilient(name, int(target))
        self.swap(model, int(target))
        return int(target)

    # -- shadow / canary (the rollout controller drives these) ---------------- #

    def set_shadow(self, model, version: int) -> None:
        """Mirror admitted traffic to a candidate; never answer with it.

        The candidate gets its own single shard (thread backend, its
        queue sized for the whole fleet's traffic) and every valid
        request is submitted there *in addition to* its primary shard.
        The admit path only enqueues the mirror and parks the future
        pair; comparisons settle in one batch at connection drain,
        keyed by a monotonic admit index -- so mirroring adds no
        client-visible await, no per-request task churn on the event
        loop, and the comparison set is deterministic
        (benchmarks/bench_rollout.py holds the p99 overhead under 10%).
        """
        if self._shadow is not None:
            self.clear_shadow()
        version = int(version)
        shard = PredictorShard(
            len(self.shards) + 1, model, version,
            backend=self.config.shadow_backend or self.config.backend,
            mp_context=self.config.mp_context,
            queue_depth=self.config.queue_depth * len(self.shards),
            # The mirror batches big and slow: nobody waits on it.
            max_batch_size=self.config.max_batch_size * len(self.shards),
            max_wait_s=self.config.shadow_max_wait_ms / 1000.0,
            predict_attempts=self.config.predict_attempts,
            breaker_threshold=self.config.breaker_threshold,
            breaker_reset_s=self.config.breaker_reset_s,
        )
        self._shadow = _ShadowState(RequestCodec(model), shard, version)
        obs.inc("rollout.shadow_installs_total")
        if self.telemetry is not None:
            self.telemetry.inc("rollout.shadow_installs_total")
        _LOG.info("shadow candidate installed", trace_id="-",
                  shard=shard.index, version=version)

    def clear_shadow(self) -> dict | None:
        """Tear down the shadow shard; returns the final report."""
        state = self._shadow
        if state is None:
            return None
        report = self.shadow_report()
        self._shadow = None
        state.shard.close()
        _LOG.info("shadow candidate cleared", trace_id="-",
                  shard=state.shard.index, version=state.version)
        return report

    def shadow_report(self) -> dict:
        """Deterministic aggregate of the mirrored prediction pairs.

        Records iterate in admit order regardless of completion order,
        so reruns with the same request stream produce byte-identical
        reports (modulo none -- no wall-clock fields here).
        """
        state = self._shadow
        if state is None:
            raise RuntimeError("no shadow candidate installed")
        records = [state.records[k] for k in sorted(state.records)]
        pairs = [(r["primary"], r["shadow"]) for r in records
                 if r["primary"] is not None and r["shadow"] is not None]
        diffs = [abs(s - p) for p, s in pairs]
        return {
            "version": state.version,
            "mirrored": len(records),
            "compared": len(pairs),
            "failures": state.failures,
            "shed": state.shed,
            "mean_abs_diff": (sum(diffs) / len(diffs)) if diffs else None,
            "max_abs_diff": max(diffs) if diffs else None,
            "records": records,
        }

    def set_canary(self, model, version: int, fraction: float) -> None:
        """Serve a deterministic ``fraction`` of keys from the candidate.

        Membership is :func:`repro.gateway.routing.in_canary` on the
        request's routing key -- the same UEs are canaried on every
        replay.  Canary responses carry the candidate's
        ``model_version``, so clients (and the rollout guard) can tell
        which arm answered.
        """
        if self._canary is not None:
            self.clear_canary()
        version = int(version)
        fraction = float(fraction)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("canary fraction must be in (0, 1]")
        codec = RequestCodec(model)
        shard = PredictorShard(
            len(self.shards), model, version,
            backend="thread",
            queue_depth=self.config.queue_depth * len(self.shards),
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_ms / 1000.0,
            deadline_s=self.config.request_deadline_ms / 1000.0,
            predict_attempts=self.config.predict_attempts,
            breaker_threshold=self.config.breaker_threshold,
            breaker_reset_s=self.config.breaker_reset_s,
            telemetry=self.telemetry,
        )
        self._codecs[version] = codec
        self._canary = _CanaryState(codec, shard, version, fraction)
        obs.inc("rollout.canary_installs_total")
        if self.telemetry is not None:
            self.telemetry.inc("rollout.canary_installs_total")
        _LOG.info("canary candidate installed", trace_id="-",
                  shard=shard.index, version=version, fraction=fraction)

    def clear_canary(self) -> None:
        state = self._canary
        if state is None:
            return
        self._canary = None
        state.shard.close()
        _LOG.info("canary candidate cleared", trace_id="-",
                  shard=state.shard.index, version=state.version)

    # -- admission (synchronous; called from the event loop) ------------------ #

    def _admit(self, line: str):
        """Parse, route and submit one request line.

        Returns ``(req, pending, trace_id, shard_index, version)`` where
        ``pending`` is either a pre-formed response dict (bad request /
        shed) or the shard future the writer will await.
        """
        codec = self._codecs[self.version]
        req, features = codec.parse_request(line)
        tid = codec.trace_of(req)
        self._requests += 1
        if self.telemetry is not None:
            self.telemetry.inc("gateway.requests_total")
        if features is None:
            self._errors += 1
            obs.inc("gateway.bad_requests_total")
            response = codec.error_response(req)
            return req, response, tid, -1, self.version
        key = routing_key(req, tid)
        canary = self._canary
        if canary is not None and in_canary(key, canary.fraction,
                                            seed=self.config.routing_seed):
            shard, shard_index = canary.shard, canary.shard.index
            if self.telemetry is not None:
                self.telemetry.inc("rollout.canary_requests_total")
        else:
            shard_index = route(key, len(self.shards),
                                seed=self.config.routing_seed)
            shard = self.shards[shard_index]
        try:
            fut, version = shard.submit(features, trace_id=tid)
        except ShedError as exc:
            self._shed += 1
            if self.telemetry is not None:
                self.telemetry.inc("gateway.shed_total")
                self.telemetry.inc("gateway.failed_total")
            _LOG.warning("request shed at admission", trace_id=tid,
                         shard=shard_index, reason=exc.reason)
            response = codec.attach_id(
                {"error": f"service unavailable: {exc.reason}",
                 "status": 429},
                req,
            )
            return req, response, tid, shard_index, self.version
        self._mirror_shadow(req, key, tid, features, fut, version)
        return req, fut, tid, shard_index, version

    def _mirror_shadow(self, req, key, tid, features, primary_fut,
                       version) -> None:
        """Submit one admitted request to the shadow shard (if any).

        Called on the event loop; the hot path does nothing but enqueue
        the mirror and park the future pair -- no task creation, no
        await.  :meth:`_settle_shadow` folds the parked pairs into
        records once the connection drains.
        """
        shadow = self._shadow
        if shadow is None:
            return
        seq = shadow.seq
        shadow.seq += 1
        try:
            shadow_fut, _ = shadow.shard.submit(features, trace_id=tid)
        except ShedError:
            shadow.shed += 1
            if self.telemetry is not None:
                self.telemetry.inc("rollout.shadow_shed_total")
            return
        shadow.pending.append(
            (seq, req, key, tid, primary_fut, version, shadow_fut))

    async def _settle_shadow(self, shadow) -> None:
        """Record every parked (primary, shadow) pair, off the hot path."""
        pending, shadow.pending = shadow.pending, []
        for seq, req, key, tid, primary_fut, version, shadow_fut in pending:
            shadow_val = None
            failed = False
            try:
                result = await asyncio.wrap_future(shadow_fut)
            except Exception as exc:
                failed = True
                shadow.failures += 1
                obs.inc("rollout.shadow_failures_total")
                if self.telemetry is not None:
                    self.telemetry.inc("rollout.shadow_failures_total")
                _LOG.warning("shadow prediction failed", trace_id=tid,
                             shard=shadow.shard.index, error=str(exc))
            else:
                shadow_val = float(shadow.codec.drift_value(result))
            primary_val = None
            try:
                p_result = await asyncio.wrap_future(primary_fut)
            except Exception:
                # The serving-path settlement already failed this
                # request for the client; here it only means no pair.
                obs.inc("rollout.shadow_uncompared_total")
            else:
                primary_val = float(
                    self._codecs[version].drift_value(p_result))
            if primary_val is not None and shadow_val is not None:
                if self.telemetry is not None:
                    self.telemetry.inc("rollout.shadow_compared_total")
                    self.telemetry.observe("rollout.shadow_diff",
                                           abs(shadow_val - primary_val))
            shadow.records[seq] = {
                "id": req.get("id") if isinstance(req, dict) else None,
                "key": key,
                "primary": primary_val,
                "shadow": shadow_val,
                "failed": failed,
            }

    async def _settle(self, entry) -> dict:
        """One response dict for one admitted entry (awaits the future)."""
        req, pending, tid, shard_index, version = entry
        if isinstance(pending, dict):
            response = pending
        else:
            codec = self._codecs[version]
            try:
                result = await asyncio.wrap_future(pending)
            except DeadlineExceeded as exc:
                self._deadline_exceeded += 1
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.deadline_exceeded_total")
                    self.telemetry.inc("gateway.failed_total")
                _LOG.warning("request deadline exceeded", trace_id=tid,
                             shard=shard_index, error=str(exc))
                response = codec.attach_id(
                    {"error": f"deadline exceeded: {exc}"}, req)
            except Exception as exc:
                self._failures += 1
                obs.inc("gateway.request_failures_total")
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.failed_total")
                _LOG.warning("request failed", trace_id=tid,
                             shard=shard_index, error=str(exc))
                response = codec.attach_id(
                    {"error": f"prediction failed: {exc}"}, req)
            else:
                if self.telemetry is not None:
                    self.telemetry.inc("gateway.ok_total")
                    self.telemetry.observe_drift(codec.drift_value(result))
                response = codec.format_response(req, result)
                response["model_version"] = version
        if shard_index >= 0:
            response["shard"] = shard_index
        response["trace"] = tid
        if self.telemetry is not None:
            self.telemetry.maybe_evaluate()
        return response

    # -- connections --------------------------------------------------------- #

    async def handle_connection(self, lines, write) -> None:
        """Serve one connection: async line stream in, ordered lines out.

        ``lines`` is an async iterator of raw request lines; ``write``
        is an async callable receiving each response line (newline
        included).  Responses come back in request order -- a per-
        connection writer task settles pending futures in sequence, so
        slow rows on one connection never reorder (or block) another
        connection's stream.
        """
        self._connections += 1
        if self.telemetry is not None:
            self.telemetry.inc("gateway.connections_total")
        pending: asyncio.Queue = asyncio.Queue()

        async def writer():
            while True:
                entry = await pending.get()
                if entry is None:
                    return
                response = await self._settle(entry)
                await write(json.dumps(response) + "\n")

        writer_task = asyncio.ensure_future(writer())
        touched: set[int] = set()
        canary_touched = False
        try:
            async for line in lines:
                if not line.strip():
                    continue
                entry = self._admit(line)
                if entry[3] >= 0 and not isinstance(entry[1], dict):
                    if entry[3] < len(self.shards):
                        touched.add(entry[3])
                    else:
                        canary_touched = True
                await pending.put(entry)
        finally:
            # End of input: wake every touched shard's collector so tail
            # batches predict now, then let the writer drain in order.
            for shard_index in touched:
                self.shards[shard_index].flush()
            canary = self._canary
            if canary_touched and canary is not None:
                canary.shard.flush()
            shadow = self._shadow
            if shadow is not None:
                shadow.shard.flush()
            await pending.put(None)
            await writer_task
            # Shadow comparisons are off the response path; settle them
            # before the connection reports done so shadow_report() is
            # complete and deterministic.
            if shadow is not None and shadow.pending:
                await self._settle_shadow(shadow)

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One TCP client (the ``serve_tcp`` connection callback)."""

        async def lines():
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                yield raw.decode("utf-8", errors="replace")

        async def write(text: str):
            writer.write(text.encode())
            await writer.drain()

        try:
            await self.handle_connection(lines(), write)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """A listening ``asyncio`` server speaking the JSONL protocol."""
        server = await asyncio.start_server(self._handle_client, host, port)
        addr = server.sockets[0].getsockname()
        _LOG.info("gateway listening", trace_id="-", shard=-1,
                  host=addr[0], port=addr[1],
                  shards=len(self.shards))
        return server

    # -- sync entry point (CLI parity with InferenceService.run_jsonl) -------- #

    def run_jsonl(self, lines, out) -> GatewayStats:
        """Serve every line of ``lines`` as one connection; write to ``out``.

        The sync wrapper the CLI uses: same signature and summary shape
        as :meth:`InferenceService.run_jsonl`, but requests fan out over
        the shard fleet.
        """
        t0 = time.perf_counter()

        async def main():
            async def line_stream():
                for line in lines:
                    yield line

            async def write(text: str):
                out.write(text)

            await self.handle_connection(line_stream(), write)

        asyncio.run(main())
        return self.collect_stats(wall_s=time.perf_counter() - t0)

    def collect_stats(self, wall_s: float = 0.0) -> GatewayStats:
        stats = GatewayStats(
            requests=self._requests,
            errors=self._errors,
            shed=self._shed,
            failures=self._failures,
            deadline_exceeded=self._deadline_exceeded,
            swaps=self._swaps,
            connections=self._connections,
            wall_s=wall_s,
            per_shard=[shard.stats() for shard in self.shards],
        )
        if self.telemetry is not None:
            self.telemetry.evaluate()
            stats.telemetry = self.telemetry.snapshot()
        return stats


async def run_open_loop(gateway: AsyncGateway, streams) -> list[list[dict]]:
    """Drive concurrent open-loop connections; per-connection responses.

    ``streams`` is a list of :class:`~repro.gateway.loadgen.
    ScheduledRequests` (or any async iterable yielding ``(t_due,
    line)`` pairs -- each stream owns its replay ``time_scale``), one
    per simulated connection.  Every connection runs
    concurrently on the loop; responses come back parsed, in request
    order per connection.  The harness under ``tests/gateway/`` and
    ``benchmarks/bench_gateway.py`` both drive the gateway through here.
    """

    async def one(stream) -> list[dict]:
        responses: list[dict] = []

        async def lines():
            async for _, line in stream:
                yield line

        async def write(text: str):
            responses.append(json.loads(text))

        await gateway.handle_connection(lines(), write)
        return responses

    return list(await asyncio.gather(*(one(s) for s in streams)))
