"""Candidate construction: warm-start refit with cold-retrain escalation.

:func:`build_candidate` is the model-production half of the
continuous-learning loop (docs/continuous_learning.md).  Given the
*serving* model and a fresh drifted campaign store, it:

1. deep-copies the serving model through the ``ml.serialize`` dict
   round trip -- the gateway is concurrently predicting with the
   original object, so the refit must never touch it;
2. warm-starts the copy on the new store via
   :func:`repro.colstore.pipeline.refit_from_store` --
   ``fit_more_binned_stream`` appends boosting rounds chunk by chunk,
   so the refit data never materializes in memory;
3. **escalates to a full cold retrain** (``train_from_store`` from
   round zero) when the warm-started model's streamed training error
   stays above ``RefitConfig.escalate_mae_mbps`` -- warm start reuses
   the old trees' structure, and a drift severe enough to invalidate
   that structure needs fresh trees, not more of them;
4. passes the finished candidate through the ``rollout.refit_poison``
   fault seam: under ``REPRO_FAULTS`` the candidate's base score is
   corrupted by a huge offset, modelling a refit gone wrong (bad
   labels, truncated store).  The seam sits *after* training so the
   poison is exactly the class of failure the shadow/canary guard
   exists to catch -- the chaos suite asserts a poisoned candidate
   never reaches full traffic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.colstore.pipeline import refit_from_store, train_from_store
from repro.ml.serialize import model_from_dict, model_to_dict
from repro.obs.telemetry import current_trace_id
from repro.resil import faults

__all__ = ["POISON_POINT", "RefitConfig", "build_candidate"]

_LOG = obs.get_logger("rollout")

POISON_POINT = faults.register_point(
    "rollout.refit_poison",
    "corrupt a just-refit rollout candidate's base prediction "
    "(repro.rollout.refit.build_candidate)",
)

#: The poison offset: far outside any plausible throughput, so a
#: poisoned candidate diverges from serving on *every* prediction and
#: the shadow guard's divergence test cannot miss it.
_POISON_OFFSET = 1e4


@dataclass(frozen=True)
class RefitConfig:
    """Knobs of the candidate-production path."""

    #: Boosting rounds appended by the warm-start refit.
    n_rounds: int = 20
    #: Streamed post-refit MAE above which the warm start is judged to
    #: have failed and a cold retrain is run instead (regression; for
    #: classification the analogous ``escalate_error_rate`` applies).
    escalate_mae_mbps: float = 120.0
    escalate_error_rate: float = 0.35
    spec: str = "L+M+T+C"
    task: str = "regression"


def _poison(model) -> None:
    """Damage the candidate the way a corrupt refit would."""
    if hasattr(model, "base_logits_"):
        model.base_logits_ = np.asarray(model.base_logits_) + _POISON_OFFSET
    else:
        model.base_score_ = float(model.base_score_) + _POISON_OFFSET


def build_candidate(serving_model, store_dir, work_dir, *,
                    refit: RefitConfig | None = None,
                    model_config=None, cleaning=None, seed: int = 2020,
                    candidate: str = "-"):
    """(candidate_model, info) for a fresh drifted store.

    ``info["escalated"]`` records whether the warm start was abandoned
    for a cold retrain; ``info["poisoned"]`` whether the chaos seam
    fired (test-only; never True without ``REPRO_FAULTS``).
    """
    cfg = refit or RefitConfig()
    with obs.span("rollout.build_candidate", task=cfg.task,
                  n_rounds=cfg.n_rounds):
        # The serialize round trip is the sanctioned deep copy: the
        # serving object keeps answering traffic untouched, and the
        # copy is exactly what a registry reload would produce.
        model = model_from_dict(model_to_dict(serving_model))
        model, info = refit_from_store(
            model, store_dir, work_dir, n_rounds=cfg.n_rounds,
            spec=cfg.spec, task=cfg.task, config=model_config,
            cleaning=cleaning,
        )
        info["escalated"] = False
        err = info["train_error"]
        above = (
            err.get("error_rate", 0.0) > cfg.escalate_error_rate
            if cfg.task == "classification"
            else err.get("mae", 0.0) > cfg.escalate_mae_mbps
        )
        if above:
            obs.inc("rollout.refit_escalations_total")
            _LOG.warning("warm-start error above threshold; cold retrain",
                         trace_id=current_trace_id() or "-",
                         candidate=candidate,
                         mae=err.get("mae", err.get("error_rate")))
            model, cold_info = train_from_store(
                store_dir, os.path.join(str(work_dir), "cold"),
                spec=cfg.spec, task=cfg.task, config=model_config,
                seed=seed, cleaning=cleaning,
            )
            cold_info["escalated"] = True
            cold_info["train_error"] = err
            info = cold_info
        obs.inc("rollout.candidates_built_total")
        info["poisoned"] = False
        if faults.corrupt(POISON_POINT, key=candidate):
            _LOG.warning("refit poison fault fired",
                         trace_id=current_trace_id() or "-",
                         candidate=candidate)
            obs.inc("rollout.poisoned_candidates_total")
            _poison(model)
            info["poisoned"] = True
    return model, info
