"""``repro.rollout`` -- the continuous-learning control loop.

The paper's models are trained on a measurement campaign frozen in
time; a deployed predictor watches seasons change.  This package closes
the loop (docs/continuous_learning.md): drift detection
(``repro.obs.telemetry``) triggers a warm-start refit streamed through
the column store (:mod:`.refit`), the candidate earns traffic in
stages -- shadow mirroring, then a deterministic canary slice -- under
a :class:`RolloutGuard` (:mod:`.guard`), and a
:class:`RolloutController` (:mod:`.controller`) promotes it to the
registry's pinned serving version or quarantines it, with every
transition crash-recoverable.  :mod:`.campaign` drives the whole loop
over seeded seasonal drift; CLI: ``repro rollout``.
"""

from repro.rollout.campaign import DriftCampaignConfig, run_drifting_campaign
from repro.rollout.controller import (
    CRASH_POINT,
    RolloutController,
    RolloutError,
    resume,
)
from repro.rollout.guard import GuardConfig, GuardVerdict, RolloutGuard
from repro.rollout.refit import POISON_POINT, RefitConfig, build_candidate

__all__ = [
    "CRASH_POINT",
    "DriftCampaignConfig",
    "GuardConfig",
    "GuardVerdict",
    "POISON_POINT",
    "RefitConfig",
    "RolloutController",
    "RolloutError",
    "RolloutGuard",
    "build_candidate",
    "resume",
    "run_drifting_campaign",
]
