"""The rollout state machine: shadow -> canary -> promote | rollback.

:class:`RolloutController` owns a candidate's journey from "just refit"
to "serving traffic" (docs/continuous_learning.md).  Every stage
transition:

* mutates the **registry first** -- the registry's rollout state file
  is the durable source of truth, and each transition is one atomic
  write (:meth:`ModelRegistry._write_rollout_state`), so a crash
  between any two steps leaves a state :func:`resume` can reconcile;
* then the **gateway** -- shadow/canary shards installed or torn down;
* then emits the edge-triggered lifecycle event
  (:data:`repro.obs.telemetry.ROLLOUT_EVENTS`) and checkpoints the
  stage through :class:`repro.resil.CheckpointStore`.

The ``rollout.stage_crash`` fault seam sits at the head of every
transition, so the chaos suite can kill the controller at each boundary
and assert :func:`resume` restores a consistent registry: an in-flight
candidate is quarantined, the serving pin never moves, and the terminal
event fires at most once per rollout attempt.
"""

from __future__ import annotations

from repro import obs
from repro.obs.telemetry import EventLog, baseline_of, current_trace_id
from repro.resil import faults
from repro.rollout.guard import GuardConfig, GuardVerdict, RolloutGuard

__all__ = ["CRASH_POINT", "RolloutController", "RolloutError", "resume"]

_LOG = obs.get_logger("rollout")

CRASH_POINT = faults.register_point(
    "rollout.stage_crash",
    "raise at a rollout stage boundary before the transition runs "
    "(repro.rollout.controller)",
)

#: The one checkpoint slot a controller uses for its stage record.
_STATE_INDEX = 0

#: Stages after which the state machine accepts no further transitions.
_TERMINAL = ("promoted", "rolled_back")


class RolloutError(RuntimeError):
    """An illegal stage transition was requested."""


class RolloutController:
    """Drive one candidate through shadow and canary to a verdict."""

    def __init__(self, registry, gateway, name: str, *,
                 guard_config: GuardConfig | None = None,
                 canary_fraction: float = 0.25,
                 events: EventLog | None = None,
                 checkpoints=None):
        self.registry = registry
        self.gateway = gateway
        self.name = name
        self.guard_config = guard_config or GuardConfig()
        self.canary_fraction = float(canary_fraction)
        if events is None:
            telemetry = getattr(gateway, "telemetry", None)
            events = telemetry.events if telemetry is not None else EventLog()
        self.events = events
        self.checkpoints = checkpoints
        self.stage = "idle"
        self.candidate_version: int | None = None
        self.serving_version: int | None = None
        self.guard: RolloutGuard | None = None
        self._candidate_model = None
        self.verdicts: list[GuardVerdict] = []

    # -- bookkeeping --------------------------------------------------------- #

    def _require(self, *stages: str) -> None:
        if self.stage not in stages:
            raise RolloutError(
                f"cannot transition from {self.stage!r} "
                f"(expected one of {stages})"
            )

    def _checkpoint(self) -> None:
        if self.checkpoints is None:
            return
        self.checkpoints.save_json(_STATE_INDEX, {
            "name": self.name,
            "stage": self.stage,
            "candidate_version": self.candidate_version,
            "serving_version": self.serving_version,
        })

    def _enter(self, stage: str) -> None:
        """Crash seam -> stage flip -> durable checkpoint."""
        faults.inject(CRASH_POINT, key=f"{self.name}:{stage}")
        self.stage = stage
        self._checkpoint()
        _LOG.info("rollout stage entered",
                  trace_id=current_trace_id() or "-",
                  candidate=str(self.candidate_version), stage=stage)

    # -- stages -------------------------------------------------------------- #

    def begin(self, candidate_model, info: dict | None = None) -> int:
        """Register the candidate (new version; serving pin untouched)."""
        self._require("idle")
        self.serving_version = self.registry.resolve_serving(self.name)
        version = self.registry.save(self.name, candidate_model)
        self.candidate_version = version
        self._candidate_model = candidate_model
        self.guard = RolloutGuard(self.guard_config, candidate=str(version))
        obs.inc("rollout.started_total")
        self.events.emit("rollout_started", name=self.name,
                         candidate=version, serving=self.serving_version,
                         escalated=bool((info or {}).get("escalated")))
        self._enter("started")
        return version

    def enter_shadow(self) -> None:
        """Mirror traffic to the candidate; clients never see its output."""
        self._require("started")
        self.registry.set_shadow(self.name, self.candidate_version)
        self.gateway.set_shadow(self._candidate_model,
                                self.candidate_version)
        self.events.emit("rollout_shadow", name=self.name,
                         candidate=self.candidate_version)
        self._enter("shadow")

    def evaluate_shadow(self) -> GuardVerdict:
        """Fold the gateway's mirror comparisons into a stage verdict."""
        self._require("shadow")
        self.guard.record_shadow_report(self.gateway.shadow_report())
        verdict = self.guard.evaluate("shadow")
        self.verdicts.append(verdict)
        return verdict

    def enter_canary(self) -> None:
        """Serve the candidate to a deterministic slice of UE keys."""
        self._require("shadow")
        self.registry.set_canary(self.name, self.candidate_version,
                                 self.canary_fraction)
        self.gateway.set_canary(self._candidate_model,
                                self.candidate_version,
                                self.canary_fraction)
        self.events.emit("rollout_canary", name=self.name,
                         candidate=self.candidate_version,
                         fraction=self.canary_fraction)
        self._enter("canary")

    def record_canary(self, *, prediction: float, label: float,
                      is_canary: bool, failed: bool = False) -> None:
        """One labeled response: canary slice vs serving control."""
        if is_canary:
            self.guard.record(candidate=prediction, label=label,
                              failed=failed)
        else:
            self.guard.record(serving=prediction, label=label)

    def evaluate_canary(self) -> GuardVerdict:
        self._require("canary")
        verdict = self.guard.evaluate("canary")
        self.verdicts.append(verdict)
        return verdict

    def promote(self) -> None:
        """Candidate becomes the pinned serving version, atomically."""
        self._require("canary")
        faults.inject(CRASH_POINT, key=f"{self.name}:promote")
        # One atomic state write: serving=candidate, shadow and canary
        # markers cleared.  Everything after is reconstructible.
        self.registry.promote_serving(self.name, self.candidate_version)
        self.gateway.clear_canary()
        self.gateway.clear_shadow()
        self.gateway.swap_latest(self.registry, self.name)
        telemetry = getattr(self.gateway, "telemetry", None)
        if telemetry is not None:
            telemetry.rebind_baseline(baseline_of(self._candidate_model))
        obs.inc("rollout.promotions_total")
        self.events.emit("rollout_promoted", name=self.name,
                         candidate=self.candidate_version,
                         previous=self.serving_version)
        self._enter("promoted")

    def rollback(self, reason: str) -> None:
        """Re-pin the incumbent, quarantine the candidate, exactly once."""
        self._require("started", "shadow", "canary")
        faults.inject(CRASH_POINT, key=f"{self.name}:rollback")
        # Teardown order mirrors promote: registry first (atomic marker
        # clear + quarantine rename), then the gateway shards.  The
        # serving pin is never touched -- rollback means the pin stays
        # where it was.
        self.registry.reject_candidate(self.name, self.candidate_version)
        self.gateway.clear_canary()
        self.gateway.clear_shadow()
        obs.inc("rollout.rollbacks_total")
        self.events.emit("rollout_rolled_back", name=self.name,
                         candidate=self.candidate_version,
                         serving=self.serving_version, reason=reason)
        self._enter("rolled_back")

    # -- orchestration ------------------------------------------------------- #

    def run(self, candidate_model, info: dict | None = None, *,
            shadow_traffic, canary_traffic=None) -> dict:
        """The whole machine: begin -> shadow -> canary -> verdict.

        ``shadow_traffic(controller)`` and ``canary_traffic(controller)``
        replay load through the gateway while the respective stage is
        live; the canary callback feeds :meth:`record_canary` with
        labeled responses.  Returns a JSON-safe summary.
        """
        version = self.begin(candidate_model, info)
        self.enter_shadow()
        shadow_traffic(self)
        verdict = self.evaluate_shadow()
        if not verdict.passed:
            self.rollback("shadow:" + ";".join(verdict.reasons))
        else:
            self.enter_canary()
            if canary_traffic is not None:
                canary_traffic(self)
            verdict = self.evaluate_canary()
            if not verdict.passed:
                self.rollback("canary:" + ";".join(verdict.reasons))
            else:
                self.promote()
        return self.summary(candidate=version)

    def summary(self, candidate: int | None = None) -> dict:
        return {
            "name": self.name,
            "candidate": (self.candidate_version
                          if candidate is None else candidate),
            "outcome": self.stage,
            "serving": self.registry.resolve_serving(self.name),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def resume(registry, name: str, checkpoints, *,
           gateway=None, events: EventLog | None = None) -> dict | None:
    """Reconcile registry state after a crash mid-rollout.

    Reads the controller's staged checkpoint and drives the registry to
    the nearest consistent state:

    * no checkpoint -> nothing to do (returns None);
    * terminal stage -> verify the registry already reflects it (a
      promote/rollback is one atomic registry write, so it either fully
      happened or never did) and clear any stale markers;
    * in-flight stage -> abort the attempt: quarantine the candidate,
      clear shadow/canary markers, leave the serving pin untouched, and
      emit ``rollout_rolled_back`` (reason ``crash_resume``) -- the
      terminal event the crashed attempt never got to fire.

    Returns the reconciled state dict.
    """
    state = checkpoints.load_json(_STATE_INDEX)
    if state is None or state.get("name") != name:
        return None
    stage = state.get("stage")
    candidate = state.get("candidate_version")
    # Not `events or EventLog()`: an empty EventLog is falsy (len 0)
    # and the caller's log must still receive the terminal event.
    if events is None:
        events = EventLog()
    if stage == "promoted":
        # The atomic promote write already cleared the markers; just
        # refresh any gateway still holding rollout shards.
        if gateway is not None:
            gateway.clear_canary()
            gateway.clear_shadow()
            gateway.swap_latest(registry, name)
        obs.inc("rollout.resumes_total")
        return {**state, "action": "none"}
    action = "none"
    if stage != "rolled_back":
        # In-flight: the candidate never earned full traffic.  Abort.
        if candidate is not None and candidate in registry.versions(name):
            registry.reject_candidate(name, candidate)
        else:
            # The crash may have hit before the candidate was saved;
            # still clear any markers pointing at it.
            registry.clear_shadow(name)
            registry.clear_canary(name)
        events.emit("rollout_rolled_back", name=name, candidate=candidate,
                    serving=registry.resolve_serving(name),
                    reason="crash_resume")
        obs.inc("rollout.rollbacks_total")
        action = "aborted"
        checkpoints.save_json(_STATE_INDEX, {**state, "stage": "rolled_back"})
    if gateway is not None:
        gateway.clear_canary()
        gateway.clear_shadow()
        gateway.swap_latest(registry, name)
    obs.inc("rollout.resumes_total")
    _LOG.info("rollout resumed", trace_id=current_trace_id() or "-",
              candidate=str(candidate), stage=str(stage), action=action)
    return {**state, "action": action}
