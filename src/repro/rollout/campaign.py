"""The drifting-campaign harness: the continuous-learning loop, end to end.

:func:`run_drifting_campaign` stitches every rollout piece together
over seeded synthetic drift (docs/continuous_learning.md):

1. a baseline campaign is simulated, streamed into a column store, and
   a model trained out of core (:func:`~repro.colstore.pipeline.
   train_from_store`) -- it ships with its streamed drift baseline,
   gets registered and **pinned** as the serving version;
2. each subsequent *phase* re-runs the campaign with
   ``SimulationConfig.seasonal_foliage_db`` stepped up -- the seasonal
   LoS/foliage shift of the paper's measurement narrative -- and
   replays the phase's traffic through a sharded
   :class:`~repro.gateway.AsyncGateway`;
3. the gateway's :class:`~repro.obs.telemetry.DriftMonitor` compares
   live predictions against the serving model's frozen baseline; a
   ``drift_detected`` event triggers candidate construction
   (:func:`~repro.rollout.refit.build_candidate` -- warm-start refit
   streamed through the store, cold-retrain escalation);
4. a :class:`~repro.rollout.controller.RolloutController` walks the
   candidate through shadow mirroring and a deterministic canary slice,
   promoting or rolling back on the guard's verdict.

Everything is seeded: same config -> bit-identical phase stores,
responses, verdicts and registry end state, at any worker count.  The
per-phase response digest in the summary is what the determinism suite
compares.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.colstore import ChunkReader
from repro.colstore.pipeline import train_from_store
from repro.core.pipeline import ModelConfig
from repro.datasets.cleaning import clean
from repro.env.areas import build_area
from repro.fstore.views import combination_view
from repro.gateway import AsyncGateway, GatewayConfig
from repro.resil import CheckpointStore
from repro.rollout.controller import RolloutController
from repro.rollout.guard import GuardConfig
from repro.rollout.refit import RefitConfig, build_candidate
from repro.serve import ModelRegistry
from repro.sim.collection import CampaignConfig, run_area_campaign
from repro.sim.simulator import SimulationConfig

__all__ = ["DriftCampaignConfig", "run_drifting_campaign"]


@dataclass(frozen=True)
class DriftCampaignConfig:
    """One knob set for the whole loop (CLI: ``repro rollout``)."""

    area: str = "Airport"
    #: Drift phases after the baseline campaign.
    phases: int = 1
    #: Extra foliage/LoS penetration loss added per phase (dB).
    foliage_step_db: float = 10.0
    passes_per_trajectory: int = 2
    driving_passes: int = 1
    stationary_runs: int = 1
    stationary_duration_s: int = 20
    seed: int = 2020
    workers: int | None = None
    chunk_rows: int = 512
    shards: int = 2
    canary_fraction: float = 0.5
    name: str = "lumos5g"
    spec: str = "L+M+T+C"
    model: ModelConfig = field(default_factory=ModelConfig.fast)
    refit: RefitConfig = field(default_factory=RefitConfig)
    guard: GuardConfig = field(default_factory=GuardConfig)


def _campaign_config(cfg: DriftCampaignConfig, phase: int) -> CampaignConfig:
    """Per-phase campaign: fresh seed, foliage stepped with the phase."""
    return CampaignConfig(
        passes_per_trajectory=cfg.passes_per_trajectory,
        driving_passes=cfg.driving_passes,
        stationary_runs=cfg.stationary_runs,
        stationary_duration_s=cfg.stationary_duration_s,
        seed=cfg.seed + phase,
        simulation=SimulationConfig(
            seasonal_foliage_db=cfg.foliage_step_db * phase,
        ),
    )


def _replay_set(store_dir, cfg: DriftCampaignConfig, phase: int):
    """(request lines, labels by id, canary keys by id) for one store."""
    table, _ = clean(ChunkReader(store_dir).read_table())
    view = combination_view(
        cfg.spec, past_throughput_lags=cfg.model.past_throughput_lags
    )
    X = view.transform_table(table).X
    y = np.asarray(table["throughput_mbps"], dtype=float)
    runs = np.asarray(table["run_id"]).astype(int)
    lines, labels, keys = [], {}, {}
    for n in range(len(y)):
        rid = f"p{phase}-{n}"
        key = f"run-{runs[n]}"
        lines.append(json.dumps(
            {"id": rid, "key": key, "features": X[n].tolist()},
            sort_keys=True,
        ))
        labels[rid] = float(y[n])
        keys[rid] = key
    return lines, labels, keys


def _replay(gateway: AsyncGateway, lines) -> dict[str, dict]:
    """Responses by request id (connection write order is not stable).

    Lines go through in connection-sized chunks no larger than one
    shard's admission window, so a replay can never shed at admission:
    sheds are timing-dependent, and the loop's acceptance bar is
    bit-identical responses across reruns and worker counts.
    """
    chunk = max(1, gateway.config.queue_depth)
    responses = {}
    for start in range(0, len(lines), chunk):
        out = io.StringIO()
        gateway.run_jsonl(iter(lines[start:start + chunk]), out)
        for text in out.getvalue().splitlines():
            resp = json.loads(text)
            if "id" in resp:
                responses[resp["id"]] = resp
    return responses


def _digest(responses: dict[str, dict]) -> str:
    """Order-independent digest over (id, prediction, model_version)."""
    h = hashlib.sha256()
    for rid in sorted(responses):
        resp = responses[rid]
        h.update(json.dumps(
            [rid, resp.get("prediction"), resp.get("model_version"),
             resp.get("error")],
            sort_keys=True,
        ).encode())
    return h.hexdigest()


def run_drifting_campaign(work_dir, *,
                          config: DriftCampaignConfig | None = None,
                          registry_dir=None, events_out=None) -> dict:
    """Drive the loop over seeded seasonal drift; JSON-safe summary."""
    cfg = config or DriftCampaignConfig()
    work = str(work_dir)
    env = build_area(cfg.area)
    registry = ModelRegistry(registry_dir or os.path.join(work, "registry"))

    with obs.span("rollout.drifting_campaign", area=cfg.area,
                  phases=cfg.phases):
        # -- phase 0: baseline campaign, out-of-core fit, pin ------------ #
        base_store = os.path.join(work, "store0")
        run_area_campaign(env, _campaign_config(cfg, 0),
                          workers=cfg.workers, store_dir=base_store,
                          chunk_rows=cfg.chunk_rows)
        serving_model, base_info = train_from_store(
            base_store, os.path.join(work, "train0"), spec=cfg.spec,
            config=cfg.model, seed=cfg.seed,
        )
        serving_version = registry.save(cfg.name, serving_model)
        registry.pin_serving(cfg.name, serving_version)

        gateway = AsyncGateway(
            serving_model, version=serving_version,
            config=GatewayConfig(shards=cfg.shards,
                                 routing_seed=cfg.seed),
        )
        events = gateway.telemetry.events
        phases: list[dict] = []
        try:
            for phase in range(1, cfg.phases + 1):
                phases.append(_run_phase(cfg, work, env, registry,
                                         gateway, phase))
                # The gateway object tracks whatever the registry now
                # pins; a promotion inside the phase already swapped it.
        finally:
            stats = gateway.collect_stats()
            gateway.close()

    summary = {
        "area": cfg.area,
        "name": cfg.name,
        "baseline_version": serving_version,
        "serving": registry.resolve_serving(cfg.name),
        "versions": registry.versions(cfg.name),
        "phases": phases,
        "events": [
            {k: v for k, v in e.items() if k != "t_s"}
            for e in events
            if e["event"].startswith(("rollout_", "drift_"))
        ],
        "requests": stats.requests,
        "digest": hashlib.sha256(json.dumps(
            [p["digest"] for p in phases], sort_keys=True,
        ).encode()).hexdigest(),
    }
    if events_out is not None:
        with open(events_out, "w") as fh:
            for event in events:
                fh.write(json.dumps(
                    {k: v for k, v in event.items() if k != "t_s"},
                    sort_keys=True) + "\n")
    return summary


def _run_phase(cfg: DriftCampaignConfig, work, env, registry,
               gateway: AsyncGateway, phase: int) -> dict:
    """One drift phase: campaign -> replay -> detect -> rollout."""
    store_dir = os.path.join(work, f"store{phase}")
    run_area_campaign(env, _campaign_config(cfg, phase),
                      workers=cfg.workers, store_dir=store_dir,
                      chunk_rows=cfg.chunk_rows)
    lines, labels, _ = _replay_set(store_dir, cfg, phase)

    # Live traffic against the serving model: the drift monitor sees
    # every prediction and compares against the frozen baseline.
    responses = _replay(gateway, lines)
    verdict = gateway.telemetry.evaluate()
    drift = verdict.get("drift") or {}
    record = {
        "phase": phase,
        "foliage_db": cfg.foliage_step_db * phase,
        "requests": len(lines),
        "drift": drift,
        "rollout": None,
        "digest": _digest(responses),
    }
    if not drift.get("drifted"):
        return record

    # -- drift detected: refit, then shadow -> canary -> verdict -------- #
    serving_version = registry.resolve_serving(cfg.name)
    serving_model = registry.load(cfg.name, serving_version)
    candidate_tag = f"{cfg.name}:phase{phase}"
    candidate, info = build_candidate(
        serving_model, store_dir, os.path.join(work, f"refit{phase}"),
        refit=replace(cfg.refit, spec=cfg.spec),
        model_config=cfg.model, seed=cfg.seed + phase,
        candidate=candidate_tag,
    )
    checkpoints = CheckpointStore(
        os.path.join(work, "ckpt"), f"rollout-{cfg.name}-phase{phase}"
    )
    controller = RolloutController(
        registry, gateway, cfg.name, guard_config=cfg.guard,
        canary_fraction=cfg.canary_fraction, checkpoints=checkpoints,
    )

    def shadow_traffic(ctl) -> None:
        # Mirrored replay: clients still get serving predictions; the
        # shadow shard sees the same features and the comparisons land
        # in the gateway's shadow report.
        _replay(gateway, lines)

    def canary_traffic(ctl) -> None:
        canary_responses = _replay(gateway, lines)
        for rid, resp in sorted(canary_responses.items()):
            if rid not in labels or "prediction" not in resp:
                continue
            ctl.record_canary(
                prediction=float(resp["prediction"]),
                label=labels[rid],
                is_canary=resp.get("model_version")
                == ctl.candidate_version,
                failed=False,
            )

    summary = controller.run(candidate, info,
                             shadow_traffic=shadow_traffic,
                             canary_traffic=canary_traffic)
    summary["escalated"] = bool(info.get("escalated"))
    record["rollout"] = summary
    return record
