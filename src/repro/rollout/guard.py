"""The rollout guard: shadow/canary health verdicts for a candidate.

A :class:`RolloutGuard` accumulates per-request evidence about a
candidate model -- its prediction next to the serving model's, the
realized label when the harness knows it, and whether the candidate's
backend call failed -- and renders a stage verdict on demand.  The
verdict is what gates every promotion step in
:class:`repro.rollout.controller.RolloutController`
(docs/continuous_learning.md):

* **divergence** -- mean |candidate - serving| over mirrored pairs.
  The cheap poison catcher: a corrupted refit shifts every prediction
  by a huge constant, which shadow mirroring exposes before a single
  client sees it.
* **error ratio** -- candidate MAE vs serving MAE on labeled samples,
  bounded by a ratio *and* an absolute margin (so a near-zero serving
  MAE cannot make the ratio test impossible to pass).
* **failure ratio** -- candidate backend failures over total records,
  plus a :class:`repro.resil.CircuitBreaker` on *consecutive*
  failures: a crashing candidate trips the guard even before the
  ratio accumulates.

Evaluations are pure functions of the recorded evidence (no clock
reads), so a replayed campaign renders bit-identical verdicts at any
worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.obs.telemetry import current_trace_id
from repro.resil import CircuitBreaker

__all__ = ["GuardConfig", "GuardVerdict", "RolloutGuard"]

_LOG = obs.get_logger("rollout")


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds a candidate must clear at each stage."""

    #: Below this many records the verdict is an automatic fail --
    #: "no evidence" must never read as "healthy".
    min_samples: int = 20
    #: Candidate MAE may exceed serving MAE by this factor...
    max_mae_ratio: float = 1.25
    #: ...or by this absolute margin, whichever is larger.
    max_mae_margin_mbps: float = 25.0
    #: Mean |candidate - serving| over mirrored pairs (the poison
    #: catcher; mmWave throughput lives in the low hundreds of Mbps).
    max_mean_divergence_mbps: float = 150.0
    #: Candidate backend failures over total records.
    max_failure_ratio: float = 0.05
    #: Consecutive candidate failures that trip the breaker outright.
    breaker_threshold: int = 5


@dataclass
class GuardVerdict:
    """One stage's pass/fail plus the evidence behind it."""

    stage: str
    passed: bool
    reasons: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "passed": self.passed,
            "reasons": list(self.reasons),
            "metrics": dict(self.metrics),
        }


class RolloutGuard:
    """Accumulate candidate evidence; render per-stage verdicts."""

    def __init__(self, config: GuardConfig | None = None,
                 candidate: str = "-"):
        self.config = config or GuardConfig()
        self.candidate = str(candidate)
        self.breaker = CircuitBreaker(
            name=f"rollout:{self.candidate}",
            failure_threshold=self.config.breaker_threshold,
            # The guard never waits out a half-open probe: an open
            # breaker at evaluation time is a trip, full stop.
            reset_timeout_s=math.inf,
        )
        self._pairs: list[tuple[float, float]] = []  # (serving, candidate)
        self._serving_err: list[float] = []
        self._candidate_err: list[float] = []
        self._records = 0
        self._failures = 0

    # -- evidence ------------------------------------------------------------ #

    def record(self, *, serving: float | None = None,
               candidate: float | None = None,
               label: float | None = None,
               failed: bool = False) -> None:
        """One request's worth of evidence.

        Shadow stage records carry ``serving`` and ``candidate`` (the
        mirrored pair); canary stage records carry ``candidate`` and
        ``label`` for canary-slice requests and ``serving`` and
        ``label`` for the rest.  ``failed`` marks a candidate backend
        failure (no prediction).
        """
        self._records += 1
        if failed:
            self._failures += 1
            self.breaker.record_failure()
            return
        self.breaker.record_success()
        if serving is not None and candidate is not None:
            self._pairs.append((float(serving), float(candidate)))
        if label is not None:
            if candidate is not None:
                self._candidate_err.append(abs(float(candidate) - float(label)))
            if serving is not None:
                self._serving_err.append(abs(float(serving) - float(label)))

    def record_shadow_report(self, report: dict) -> None:
        """Ingest an :meth:`AsyncGateway.shadow_report` wholesale."""
        for rec in report.get("records", []):
            if rec.get("failed"):
                self.record(failed=True)
            else:
                self.record(serving=rec.get("primary"),
                            candidate=rec.get("shadow"))
        for _ in range(int(report.get("shed", 0))):
            self.record(failed=True)

    # -- verdicts ------------------------------------------------------------ #

    @property
    def n_records(self) -> int:
        return self._records

    def evaluate(self, stage: str) -> GuardVerdict:
        """The stage verdict; emits ``rollout.*`` counters and a log line."""
        cfg = self.config
        reasons: list[str] = []
        metrics: dict = {"n": self._records, "failures": self._failures}

        if self._records < cfg.min_samples:
            reasons.append(
                f"insufficient_samples:{self._records}<{cfg.min_samples}"
            )

        if self.breaker.state != "closed":
            reasons.append("breaker_open")

        if self._records > 0:
            failure_ratio = self._failures / self._records
            metrics["failure_ratio"] = failure_ratio
            if failure_ratio > cfg.max_failure_ratio:
                reasons.append(
                    f"failure_ratio:{failure_ratio:.4f}"
                    f">{cfg.max_failure_ratio}"
                )

        if self._pairs:
            divergence = sum(
                abs(c - s) for s, c in self._pairs
            ) / len(self._pairs)
            metrics["mean_divergence_mbps"] = divergence
            if divergence > cfg.max_mean_divergence_mbps:
                reasons.append(
                    f"divergence:{divergence:.2f}"
                    f">{cfg.max_mean_divergence_mbps}"
                )

        if self._candidate_err:
            cand_mae = sum(self._candidate_err) / len(self._candidate_err)
            metrics["candidate_mae_mbps"] = cand_mae
            if self._serving_err:
                serv_mae = sum(self._serving_err) / len(self._serving_err)
                metrics["serving_mae_mbps"] = serv_mae
                allowed = max(serv_mae * cfg.max_mae_ratio,
                              serv_mae + cfg.max_mae_margin_mbps)
                if cand_mae > allowed:
                    reasons.append(
                        f"mae:{cand_mae:.2f}>allowed:{allowed:.2f}"
                    )

        verdict = GuardVerdict(stage=stage, passed=not reasons,
                               reasons=reasons, metrics=metrics)
        obs.inc("rollout.guard_evaluations_total")
        if not verdict.passed:
            obs.inc("rollout.guard_trips_total")
            _LOG.warning("rollout guard tripped",
                         trace_id=current_trace_id() or "-",
                         candidate=self.candidate, stage=stage,
                         reasons=";".join(reasons))
        else:
            _LOG.info("rollout guard passed",
                      trace_id=current_trace_id() or "-",
                      candidate=self.candidate, stage=stage,
                      n=self._records)
        return verdict
