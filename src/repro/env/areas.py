"""Builders for the paper's three measurement areas (Table 2).

* **Airport** -- indoor mall corridor inside MSP airport, two head-on
  single-panel towers ~200 m apart, information booths / open-space
  restaurants creating a NLoS band 50-100 m from the south panel
  (Sec. 4.3), NB/SB walking trajectories of ~340 m.
* **Intersection** -- outdoor 4-way traffic intersection in downtown
  Minneapolis with 3 dual-panel towers, concrete high-rises on all four
  corners, and 12 walking trajectories of 232-274 m.
* **Loop** -- a 1300 m loop near U.S. Bank Stadium covering roads, rail
  crossings and a park; walked and driven.  The authors could not survey
  its panel locations, so T-group features are unavailable there.

Geometry is in local meters (east = +x, north = +y).  Panel bearings use
compass degrees (0 = north).
"""

from __future__ import annotations

from repro.env.environment import MINNEAPOLIS_LATLON, Environment
from repro.env.obstacles import Obstacle, ObstacleMap, Rect
from repro.mobility.trajectory import Trajectory
from repro.radio.panel import Panel, PanelDirectory, Tower

AIRPORT_LATLON = (44.8820, -93.2218)  # MSP airport
CONCRETE_LOSS_DB = 200.0
BOOTH_LOSS_DB = 8.0
GLASS_LOSS_DB = 16.0


def build_airport() -> Environment:
    """Indoor mall-area with two head-on single panels ~200 m apart."""
    panels = PanelDirectory()
    # South panel faces north (up the corridor), north panel faces south.
    panels.add_tower(Tower(tower_id=10, panels=(
        Panel(panel_id=101, position=(0.0, 0.0), bearing_deg=0.0,
              max_range_m=250.0),
    )))
    panels.add_tower(Tower(tower_id=11, panels=(
        Panel(panel_id=102, position=(0.0, 200.0), bearing_deg=180.0,
              max_range_m=250.0),
    )))

    obstacles = ObstacleMap()
    # Information booths just off the corridor axis near the south panel.
    # While the walking path detours onto the +x service lane (the 50-100 m
    # band from the south panel), the oblique ray back to the south panel
    # crosses these booths -> NLoS with a usable reflection; once the path
    # returns to the corridor axis, LoS is regained (Fig. 11b).
    obstacles.add(Obstacle(Rect(1.0, 20.0, 3.5, 32.0),
                           penetration_loss_db=BOOTH_LOSS_DB,
                           reflectivity=0.9, name="booth-south-1"))
    obstacles.add(Obstacle(Rect(1.5, 34.0, 4.0, 44.0),
                           penetration_loss_db=BOOTH_LOSS_DB,
                           reflectivity=0.9, name="booth-south-2"))
    # Open-space restaurant seating mid-corridor; clutters oblique rays from
    # the north panel and contributes the handoff patch near mid-corridor.
    obstacles.add(Obstacle(Rect(-5.0, 128.0, -1.0, 142.0),
                           penetration_loss_db=GLASS_LOSS_DB,
                           reflectivity=0.6, name="restaurant-mid"))

    env = Environment(
        name="Airport",
        panels=panels,
        obstacles=obstacles,
        origin_latlon=AIRPORT_LATLON,
        indoor=True,
    )
    # NB runs south -> north with a detour onto the +x lane between 40 and
    # 105 m (around the booths); SB is the same path reversed.
    nb = Trajectory(name="NB", waypoints=(
        (0.0, -70.0), (0.0, 35.0), (6.0, 45.0), (6.0, 100.0),
        (0.0, 110.0), (0.0, 270.0),
    ))
    env.add_trajectory(nb)
    env.add_trajectory(nb.reversed("SB"))
    return env


def _intersection_towers() -> PanelDirectory:
    panels = PanelDirectory()
    # Three dual-panel towers, one per street arm, panels back-to-back
    # covering both directions of their street.
    panels.add_tower(Tower(tower_id=20, panels=(
        Panel(panel_id=201, position=(5.0, 60.0), bearing_deg=0.0),
        Panel(panel_id=202, position=(5.0, 60.0), bearing_deg=180.0),
    )))
    panels.add_tower(Tower(tower_id=21, panels=(
        Panel(panel_id=203, position=(60.0, -5.0), bearing_deg=90.0),
        Panel(panel_id=204, position=(60.0, -5.0), bearing_deg=270.0),
    )))
    panels.add_tower(Tower(tower_id=22, panels=(
        Panel(panel_id=205, position=(-5.0, -60.0), bearing_deg=0.0),
        Panel(panel_id=206, position=(-5.0, -60.0), bearing_deg=180.0),
    )))
    return panels


def build_intersection() -> Environment:
    """Outdoor 4-way intersection with 12 walking trajectories."""
    obstacles = ObstacleMap()
    corners = [
        Rect(15.0, 15.0, 120.0, 120.0),
        Rect(-120.0, 15.0, -15.0, 120.0),
        Rect(-120.0, -120.0, -15.0, -15.0),
        Rect(15.0, -120.0, 120.0, -15.0),
    ]
    for i, rect in enumerate(corners):
        obstacles.add(Obstacle(rect, penetration_loss_db=CONCRETE_LOSS_DB,
                               reflectivity=0.5, name=f"highrise-{i}"))

    env = Environment(
        name="Intersection",
        panels=_intersection_towers(),
        obstacles=obstacles,
        origin_latlon=MINNEAPOLIS_LATLON,
        indoor=False,
    )
    # 12 trajectories: both sidewalks of both streets, each walked in both
    # directions (8), plus four L-shaped corner-to-corner routes.  Lengths
    # fall in the paper's 232-274 m range.
    reach = 130.0
    west, east, south, north = -7.0, 7.0, -7.0, 7.0
    straight = {
        "NS-west-NB": ((west, -reach), (west, reach)),
        "NS-east-NB": ((east, -reach), (east, reach)),
        "EW-south-EB": ((-reach, south), (reach, south)),
        "EW-north-EB": ((-reach, north), (reach, north)),
    }
    for name, pts in straight.items():
        traj = Trajectory(name=name, waypoints=pts)
        env.add_trajectory(traj)
        reverse_tag = {"NB": "SB", "EB": "WB"}[name.rsplit("-", 1)[1]]
        env.add_trajectory(
            traj.reversed(name.rsplit("-", 1)[0] + "-" + reverse_tag)
        )
    l_shaped = {
        "L-SW": ((west, -reach + 5.0), (west, south), (-reach + 5.0, south)),
        "L-SE": ((east, -reach + 5.0), (east, south), (reach - 5.0, south)),
        "L-NE": ((east, reach - 5.0), (east, north), (reach - 5.0, north)),
        "L-NW": ((west, reach - 5.0), (west, north), (-reach + 5.0, north)),
    }
    for name, pts in l_shaped.items():
        env.add_trajectory(Trajectory(name=name, waypoints=pts))
    return env


def build_loop() -> Environment:
    """The 1300 m Loop: walked and driven; no reliable panel survey."""
    panels = PanelDirectory()
    panels.add_tower(Tower(tower_id=30, panels=(
        Panel(panel_id=301, position=(-8.0, -8.0), bearing_deg=90.0),
        Panel(panel_id=302, position=(-8.0, -8.0), bearing_deg=0.0),
    )))
    panels.add_tower(Tower(tower_id=31, panels=(
        Panel(panel_id=303, position=(408.0, 258.0), bearing_deg=270.0),
        Panel(panel_id=304, position=(408.0, 258.0), bearing_deg=180.0),
    )))
    panels.add_tower(Tower(tower_id=32, panels=(
        Panel(panel_id=305, position=(200.0, 254.0), bearing_deg=90.0),
        Panel(panel_id=306, position=(200.0, 254.0), bearing_deg=270.0),
    )))
    panels.add_tower(Tower(tower_id=33, panels=(
        Panel(panel_id=307, position=(200.0, -4.0), bearing_deg=90.0),
        Panel(panel_id=308, position=(200.0, -4.0), bearing_deg=270.0),
    )))
    panels.add_tower(Tower(tower_id=34, panels=(
        Panel(panel_id=309, position=(408.0, -8.0), bearing_deg=0.0),
    )))
    panels.add_tower(Tower(tower_id=35, panels=(
        Panel(panel_id=310, position=(-8.0, 258.0), bearing_deg=180.0),
    )))

    obstacles = ObstacleMap()
    # The city block enclosed by the loop: blocks all across-the-block rays.
    obstacles.add(Obstacle(Rect(25.0, 25.0, 375.0, 225.0),
                           penetration_loss_db=CONCRETE_LOSS_DB,
                           reflectivity=0.5, name="city-block"))
    # A building just east of the east leg, between the NE tower and the
    # lower part of the leg: shadows the mid-east stretch (a driving dead
    # zone as in Fig. 2) without touching the street itself.
    obstacles.add(Obstacle(Rect(401.5, 120.0, 410.0, 160.0),
                           penetration_loss_db=CONCRETE_LOSS_DB,
                           reflectivity=0.35, name="stadium-annex"))

    env = Environment(
        name="Loop",
        panels=panels,
        obstacles=obstacles,
        origin_latlon=MINNEAPOLIS_LATLON,
        indoor=False,
        panel_survey_available=False,
    )
    loop = Trajectory(name="LOOP-CW", waypoints=(
        (0.0, 0.0), (400.0, 0.0), (400.0, 250.0), (0.0, 250.0),
    ), closed=True)
    env.add_trajectory(loop)
    env.add_trajectory(loop.reversed("LOOP-CCW"))
    return env


AREA_BUILDERS = {
    "Airport": build_airport,
    "Intersection": build_intersection,
    "Loop": build_loop,
}


def build_area(name: str) -> Environment:
    """Build one of the paper's areas by name."""
    try:
        return AREA_BUILDERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown area {name!r}; expected one of {sorted(AREA_BUILDERS)}"
        ) from None
