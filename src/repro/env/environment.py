"""Environment: the static world a measurement campaign runs in.

An :class:`Environment` bundles everything the radio layer needs about a
place: the 5G panels (with positions/orientations, i.e. the exogenous
information the authors gathered by surveying each area), the obstacle map
(concrete structures, booths, glass), named trajectories that the campaign
walks/drives repeatedly, and the GPS origin used to emit realistic
latitude/longitude telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.env.obstacles import ObstacleMap
from repro.geo.mercator import LocalProjection
from repro.mobility.trajectory import Trajectory
from repro.radio.panel import PanelDirectory

#: Downtown Minneapolis, where the paper's outdoor areas are located.
MINNEAPOLIS_LATLON = (44.9778, -93.2650)


@dataclass
class Environment:
    """A measurement area: panels + obstacles + trajectories + GPS frame."""

    name: str
    panels: PanelDirectory
    obstacles: ObstacleMap
    trajectories: dict[str, Trajectory] = field(default_factory=dict)
    origin_latlon: tuple[float, float] = MINNEAPOLIS_LATLON
    indoor: bool = False
    #: Whether the panel survey is available; the paper could not reliably
    #: obtain panel locations for the Loop area, so its T features are absent.
    panel_survey_available: bool = True

    def __post_init__(self) -> None:
        self.projection = LocalProjection(*self.origin_latlon)

    def add_trajectory(self, trajectory: Trajectory) -> None:
        if trajectory.name in self.trajectories:
            raise ValueError(f"duplicate trajectory {trajectory.name!r}")
        self.trajectories[trajectory.name] = trajectory

    def has_los(self, panel_xy: tuple[float, float],
                ue_xy: tuple[float, float]) -> bool:
        return self.obstacles.has_los(panel_xy, ue_xy)

    def describe(self) -> str:
        """Human-readable summary (mirrors Table 2 rows)."""
        lengths = [t.length_m for t in self.trajectories.values()]
        span = (f"{min(lengths):.0f} to {max(lengths):.0f} m"
                if lengths else "n/a")
        return (
            f"{self.name}: {'indoor' if self.indoor else 'outdoor'}, "
            f"{len(self.panels)} panels on {len(self.panels.towers)} towers, "
            f"{len(self.trajectories)} trajectories ({span}), "
            f"{len(self.obstacles.obstacles)} obstacles"
        )
