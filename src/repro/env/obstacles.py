"""Obstacle primitives and line-of-sight tests.

mmWave links are blocked by concrete structures, tinted glass, booths and
foliage.  We model obstacles as axis-aligned rectangles in the local-meter
plane, each with a penetration loss in dB (effectively infinite for
concrete, moderate for glass/booths) and a reflectivity coefficient used by
the propagation model to decide whether a useful NLoS reflective path exists
(the paper observes such "properly deflected" paths, e.g. the Airport south
panel outlier in Sec. 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle [x_min, x_max] x [y_min, y_max] in meters."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError("degenerate rectangle: min > max")

    def contains(self, x: float, y: float) -> bool:
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def intersects_segment(
        self, a: tuple[float, float], b: tuple[float, float]
    ) -> bool:
        """True if segment a-b passes through the rectangle.

        Standard slab (Liang-Barsky) clipping test.
        """
        (x0, y0), (x1, y1) = a, b
        dx, dy = x1 - x0, y1 - y0
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, x0 - self.x_min),
            (dx, self.x_max - x0),
            (-dy, y0 - self.y_min),
            (dy, self.y_max - y0),
        ):
            if p == 0.0:
                if q < 0.0:
                    return False  # parallel and outside the slab
                continue
            t = q / p
            if p < 0.0:
                if t > t1:
                    return False
                t0 = max(t0, t)
            else:
                if t < t0:
                    return False
                t1 = min(t1, t)
        return t0 <= t1


@dataclass(frozen=True)
class Obstacle:
    """A blocking structure in the environment.

    Parameters
    ----------
    shape:
        Footprint rectangle.
    penetration_loss_db:
        Extra path loss applied when the direct ray crosses the obstacle.
        Concrete high-rises use a very large value (full blockage); booths
        and glass use moderate values, letting attenuated signal through.
    reflectivity:
        In [0, 1]; probability-like weight that the obstacle offers a usable
        reflected (NLoS) path to UEs near it.
    name:
        Label for debugging and map legends.
    """

    shape: Rect
    penetration_loss_db: float = 200.0
    reflectivity: float = 0.0
    name: str = ""


@dataclass
class ObstacleMap:
    """Collection of obstacles with aggregate blockage queries."""

    obstacles: list[Obstacle] = field(default_factory=list)

    def add(self, obstacle: Obstacle) -> None:
        self.obstacles.append(obstacle)

    def blockers_between(
        self, a: tuple[float, float], b: tuple[float, float]
    ) -> list[Obstacle]:
        """All obstacles whose footprint crosses the segment a-b."""
        return [o for o in self.obstacles if o.shape.intersects_segment(a, b)]

    def penetration_loss_db(
        self, a: tuple[float, float], b: tuple[float, float]
    ) -> float:
        """Total structural penetration loss along the direct ray a-b."""
        return sum(o.penetration_loss_db for o in self.blockers_between(a, b))

    def has_los(
        self,
        a: tuple[float, float],
        b: tuple[float, float],
        loss_threshold_db: float = 15.0,
    ) -> bool:
        """Line of sight exists if cumulative blockage loss is small."""
        return self.penetration_loss_db(a, b) <= loss_threshold_db

    def best_reflectivity(
        self, a: tuple[float, float], b: tuple[float, float]
    ) -> float:
        """Strongest reflective-path weight offered by blocking obstacles.

        When the direct ray is blocked, a reflective surface on the blocker
        (or nearby) may still deliver a usable NLoS path; we approximate
        this by the maximum reflectivity among the blockers.
        """
        blockers = self.blockers_between(a, b)
        if not blockers:
            return 0.0
        return max(o.reflectivity for o in blockers)
