"""Environment substrate: obstacles, areas, line-of-sight."""

from repro.env.areas import (
    AREA_BUILDERS,
    build_airport,
    build_area,
    build_intersection,
    build_loop,
)
from repro.env.environment import MINNEAPOLIS_LATLON, Environment
from repro.env.obstacles import Obstacle, ObstacleMap, Rect

__all__ = [
    "AREA_BUILDERS",
    "Environment",
    "MINNEAPOLIS_LATLON",
    "Obstacle",
    "ObstacleMap",
    "Rect",
    "build_airport",
    "build_area",
    "build_intersection",
    "build_loop",
]
