"""Network substrate: panel scheduling, parallel-TCP bulk transfer, iPerf."""

from repro.net.flows import FlowLevelTcp, TcpFlow
from repro.net.iperf import (
    MIN_SERVER_CAPACITY_BPS,
    IperfInterval,
    IperfSession,
    Server,
    filter_servers,
)
from repro.net.scheduler import CellLoadModel, PanelScheduler
from repro.net.tcp import BulkTransferModel

__all__ = [
    "MIN_SERVER_CAPACITY_BPS",
    "BulkTransferModel",
    "FlowLevelTcp",
    "TcpFlow",
    "CellLoadModel",
    "IperfInterval",
    "IperfSession",
    "PanelScheduler",
    "Server",
    "filter_servers",
]
