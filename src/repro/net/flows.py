"""Flow-level TCP: per-flow AIMD congestion windows over a shared link.

:class:`~repro.net.tcp.BulkTransferModel` approximates the aggregate
behaviour of N parallel TCP flows with a closed-form efficiency.  This
module simulates the flows individually -- slow start, congestion
avoidance, multiplicative decrease on loss, a shared bottleneck queue --
so the "one connection cannot saturate mmWave 5G" observation (Sec. 3.1)
*emerges* instead of being assumed.  It runs at a configurable tick
(default 10 ms ~ one RTT) and reports per-second goodput like iPerf.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MSS_BITS = 1500 * 8


@dataclass
class TcpFlow:
    """One NewReno-style flow (window in MSS units).

    ``max_window`` models the receiver/socket-buffer window -- the limit
    that actually keeps a single TCP connection from filling a multi-Gbps
    mmWave pipe (max throughput per flow = max_window / RTT).
    """

    cwnd: float = 10.0
    ssthresh: float = float("inf")
    max_window: float = float("inf")

    def on_ack(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd *= 2.0  # slow start: double per RTT
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += 1.0  # congestion avoidance: +1 MSS per RTT
        self.cwnd = min(self.cwnd, self.max_window)

    def on_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh


@dataclass
class FlowLevelTcp:
    """N AIMD flows sharing a variable-rate bottleneck.

    Parameters
    ----------
    n_flows:
        Parallel connections (paper: 8).
    rtt_s:
        Base round-trip time; one AIMD update per RTT per flow.
    queue_capacity_bdp:
        Bottleneck buffer in bandwidth-delay products; when aggregate
        demand exceeds link capacity plus buffer, the most aggressive
        flows take losses.
    max_window_segments:
        Per-flow receive-window cap; bounds a single flow's throughput to
        ``max_window / RTT`` regardless of link capacity.
    """

    n_flows: int = 8
    rtt_s: float = 0.02
    queue_capacity_bdp: float = 1.0
    #: Per-flow receive-window cap in MSS (~2 MB with 1500-byte segments).
    max_window_segments: float = 1400.0
    rng_seed: int = 0
    flows: list[TcpFlow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        self.reset()
        self._rng = np.random.default_rng(self.rng_seed)

    def reset(self) -> None:
        self.flows = [TcpFlow(max_window=self.max_window_segments)
                      for _ in range(self.n_flows)]

    def step_second(self, link_rate_bps: float) -> float:
        """Advance one second at a fixed link rate; return goodput (bps).

        Each RTT: every flow offers ``cwnd`` segments; if the aggregate
        exceeds what the link (plus queue slack) can carry in one RTT,
        random proportional losses halve the offending flows.
        """
        if link_rate_bps <= 0.0:
            # Total outage: flows time out and restart from slow start.
            for flow in self.flows:
                flow.ssthresh = max(flow.cwnd / 2.0, 2.0)
                flow.cwnd = 1.0
            return 0.0
        bdp_segments = link_rate_bps * self.rtt_s / MSS_BITS
        capacity = bdp_segments * (1.0 + self.queue_capacity_bdp)
        rtts = max(1, int(round(1.0 / self.rtt_s)))
        delivered_segments = 0.0
        for _ in range(rtts):
            offered = sum(f.cwnd for f in self.flows)
            delivered_segments += min(offered, bdp_segments)
            if offered > capacity:
                # Drop-tail: flows lose with probability proportional to
                # their share of the overload.
                overload = (offered - capacity) / offered
                for flow in self.flows:
                    if self._rng.random() < min(1.0, 3.0 * overload):
                        flow.on_loss()
                    else:
                        flow.on_ack()
            else:
                for flow in self.flows:
                    flow.on_ack()
        return delivered_segments * MSS_BITS

    def utilization(self, link_rate_bps: float, seconds: int = 5,
                    warmup_s: int = 2) -> float:
        """Steady-state fraction of the link the flow set achieves."""
        self.reset()
        for _ in range(warmup_s):
            self.step_second(link_rate_bps)
        got = sum(self.step_second(link_rate_bps) for _ in range(seconds))
        return got / (link_rate_bps * seconds)
