"""Per-panel radio resource sharing among attached UEs.

Appendix A.1.4 of the paper shows that when a second UE starts an iPerf
session on the same panel, the first UE's throughput roughly halves, and so
on for the third and fourth.  That is the signature of a proportional-fair
(PF) scheduler dividing airtime evenly among backlogged full-buffer users
with similar channel quality.  ``PanelScheduler`` implements exactly that:
each UE receives a share of airtime proportional to its PF weight
(uniform by default), and its achieved rate is its own PHY rate times its
airtime share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass
class PanelScheduler:
    """Airtime allocation for one panel serving several full-buffer UEs."""

    panel_id: int
    _demands: dict[str, float] = field(default_factory=dict)
    _weights: dict[str, float] = field(default_factory=dict)

    def register(self, ue_id: str, phy_rate_bps: float, weight: float = 1.0) -> None:
        """Declare that a UE is backlogged on this panel this scheduling epoch."""
        if phy_rate_bps < 0:
            raise ValueError("phy_rate_bps must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._demands[ue_id] = float(phy_rate_bps)
        self._weights[ue_id] = float(weight)

    def clear(self) -> None:
        self._demands.clear()
        self._weights.clear()

    @property
    def active_ues(self) -> int:
        return len(self._demands)

    def allocate(self) -> dict[str, float]:
        """Per-UE allocated rate (bps) for this epoch.

        Airtime shares are weights normalized over active UEs; a UE's rate
        is its own PHY rate scaled by its airtime share.  With equal
        weights and N active UEs, everyone gets 1/N of their solo rate --
        the halving behaviour in Fig. 21.
        """
        if not self._demands:
            return {}
        if obs.enabled():
            obs.inc("net.scheduler.allocations_total")
            if len(self._demands) > 1:
                obs.inc("net.scheduler.contended_epochs_total")
        total_weight = sum(self._weights.values())
        return {
            ue: rate * (self._weights[ue] / total_weight)
            for ue, rate in self._demands.items()
        }


@dataclass
class CellLoadModel:
    """Background load from other subscribers sharing the panel.

    The authors could not observe how many other customers each tower was
    serving; this model injects that unobservable "time-of-day" factor: a
    random number of background full-buffer users occupying airtime.  The
    paper's own experiments ran late at night (near-zero background), so
    the default intensity is low; benchmarks can raise it to study the
    congestion factor.
    """

    mean_background_ues: float = 0.0

    def background_ues(self, rng) -> int:
        if self.mean_background_ues <= 0:
            return 0
        return int(rng.poisson(self.mean_background_ues))

    def airtime_share(self, foreground_ues: int, rng) -> float:
        """Fraction of airtime left per foreground UE."""
        total = max(foreground_ues, 1) + self.background_ues(rng)
        return 1.0 / total
