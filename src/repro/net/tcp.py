"""Application-layer bulk-transfer throughput over a varying radio link.

The paper's ground truth is the downlink throughput reported once per second
by iPerf 3.7 running 8 parallel TCP connections against a well-provisioned
server (chosen so that the Internet path sustains >= 3 Gbps and is never the
bottleneck).  Application throughput is *not* equal to the instantaneous
link rate: TCP needs time to ramp up after rate drops and handoff outages,
multiple flows fill the pipe better than one, and the wired segment imposes
a ceiling.  ``BulkTransferModel`` captures exactly these effects with a
small, well-understood dynamic model rather than a packet-level simulator;
per-second averages are all the measurement pipeline observes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BulkTransferModel:
    """Parallel-TCP goodput tracker over a time-varying link.

    Parameters
    ----------
    parallel_connections:
        Number of simultaneous TCP flows (paper: 8; a single flow cannot
        saturate mmWave 5G).
    single_flow_efficiency:
        Fraction of link rate one flow achieves in steady state; aggregate
        efficiency approaches 1.0 as flows are added.
    ramp_rate_per_s:
        Multiplicative congestion-window growth per second while below the
        available rate (slow-start-like recovery after outages).
    server_ceiling_bps:
        Wired-path capacity; >= 3 Gbps per the paper's server selection.
    """

    parallel_connections: int = 8
    single_flow_efficiency: float = 0.62
    ramp_rate_per_s: float = 8.0
    server_ceiling_bps: float = 3e9
    _current_rate_bps: float = 0.0

    def __post_init__(self) -> None:
        if self.parallel_connections < 1:
            raise ValueError("need at least one TCP connection")

    @property
    def aggregate_efficiency(self) -> float:
        """Fraction of the radio rate the flow aggregate can occupy.

        Each extra flow recovers part of the residual unused capacity:
        ``1 - (1 - e)**n`` for per-flow efficiency ``e`` and ``n`` flows.
        With the defaults, 1 flow -> 0.62 (the paper's observation that one
        connection cannot saturate 5G) and 8 flows -> ~0.9996.
        """
        return 1.0 - (1.0 - self.single_flow_efficiency) ** self.parallel_connections

    def reset(self) -> None:
        self._current_rate_bps = 0.0

    def step(self, link_rate_bps: float, usable_fraction: float = 1.0,
             dt_s: float = 1.0) -> float:
        """Advance one interval; return achieved goodput in bps.

        ``usable_fraction`` < 1 models handoff interruptions inside the
        interval.  The achievable rate is the radio rate capped by the
        server ceiling and flow efficiency; the tracked rate snaps down
        immediately on capacity loss (TCP reacts within an RTT, far below
        the 1 s sampling period) but climbs back multiplicatively.
        """
        achievable = min(link_rate_bps, self.server_ceiling_bps)
        achievable *= self.aggregate_efficiency
        if achievable <= 0.0:
            self._current_rate_bps = 0.0
            return 0.0
        if self._current_rate_bps >= achievable:
            self._current_rate_bps = achievable
        else:
            floor = 0.02 * achievable  # flows never start from literally zero
            grown = max(self._current_rate_bps, floor) * (
                self.ramp_rate_per_s ** dt_s
            )
            self._current_rate_bps = min(grown, achievable)
        return self._current_rate_bps * max(0.0, min(usable_fraction, 1.0))
