"""iPerf-style measurement sessions.

Thin orchestration layer mirroring how the paper's app drives iPerf 3.7:
sessions have a start/end time, report per-second intervals, and are run
against one of several candidate backend servers.  Server filtering follows
Sec. 3.1: keep only servers whose wired-path capacity comfortably exceeds
peak 5G throughput so the Internet is never the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Server:
    """A candidate iPerf backend server."""

    name: str
    provider: str
    wired_capacity_bps: float


#: Minimum wired capacity for an acceptable server (paper: >= 3 Gbps).
MIN_SERVER_CAPACITY_BPS = 3e9


def filter_servers(candidates: list[Server]) -> list[Server]:
    """Apply the paper's server-selection criterion."""
    return [s for s in candidates
            if s.wired_capacity_bps >= MIN_SERVER_CAPACITY_BPS]


@dataclass(frozen=True)
class IperfInterval:
    """One per-second iPerf interval report."""

    t_s: int
    throughput_bps: float

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6


@dataclass
class IperfSession:
    """Accumulates interval reports for a single measurement session."""

    server: Server
    intervals: list[IperfInterval] = field(default_factory=list)

    def record(self, t_s: int, throughput_bps: float) -> None:
        self.intervals.append(IperfInterval(t_s=t_s, throughput_bps=throughput_bps))

    @property
    def duration_s(self) -> int:
        return len(self.intervals)

    @property
    def bytes_transferred(self) -> float:
        return sum(iv.throughput_bps for iv in self.intervals) / 8.0

    @property
    def mean_throughput_mbps(self) -> float:
        if not self.intervals:
            return 0.0
        return sum(iv.throughput_mbps for iv in self.intervals) / len(self.intervals)
