"""Nested wall-clock span tracing with JSON and flame-style text export.

Usage::

    from repro import obs

    with obs.span("gbdt.fit", n_rounds=120):
        ...                       # nested obs.span() calls become children

Spans form a tree per thread (thread-local stacks; root spans from every
thread land in the shared ``roots`` list).  A span that raises still
closes: its duration is recorded, its status becomes ``"error"`` and the
exception propagates.  Every closed span also feeds the histogram
``span.<name>_s`` in the default metrics registry, so span timings show
up in metric snapshots without extra code.

The module-level :func:`span` is the instrumented-code entry point: it
returns a shared no-op context when observability is disabled (see
:mod:`repro.obs.state`), keeping hot paths nearly free.
"""

from __future__ import annotations

import threading
import time

from repro.obs import metrics as _metrics
from repro.obs import state as _state

__all__ = ["Span", "Tracer", "get_tracer", "span"]


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("name", "attrs", "children", "duration_s", "status",
                 "error", "_t0")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.children: list[Span] = []
        self.duration_s: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self._t0 = 0.0

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        out["children"] = [c.to_dict() for c in self.children]
        return out


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        sp = Span(self._name, self._attrs)
        stack = self._tracer._stack()
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._tracer._lock:
                self._tracer.roots.append(sp)
        stack.append(sp)
        sp._t0 = time.perf_counter()
        self._span = sp
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        sp.duration_s = time.perf_counter() - sp._t0
        if exc_type is not None:
            sp.status = "error"
            sp.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        if sp in stack:
            # Normally the top of the stack; tolerate skipped exits from
            # nested spans abandoned by an exception.
            del stack[stack.index(sp):]
        registry = self._tracer.registry or _metrics.get_registry()
        registry.histogram(f"span.{sp.name}_s").observe(sp.duration_s)
        return False


class _NullSpan:
    """Shared no-op context used when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; thread-safe via per-thread open-span stacks."""

    def __init__(self, registry: _metrics.MetricsRegistry | None = None):
        self.registry = registry
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs) -> _SpanHandle:
        return _SpanHandle(self, name, attrs)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()

    # -- export ------------------------------------------------------------ #

    def to_dict(self) -> list[dict]:
        """JSON-safe list of completed root span trees."""
        with self._lock:
            roots = list(self.roots)
        return [r.to_dict() for r in roots]

    def render(self) -> str:
        """Flame-style text summary (duration + % of the root span)."""
        with self._lock:
            roots = list(self.roots)
        if not roots:
            return "span tree: (no spans recorded)"
        rows: list[tuple[str, float, float]] = []

        def walk(sp: Span, depth: int, total: float) -> None:
            label = "  " * depth + sp.name
            if sp.attrs:
                label += " [" + " ".join(
                    f"{k}={_fmt_attr(v)}" for k, v in sp.attrs.items()
                ) + "]"
            if sp.status == "error":
                label += " !error"
            dur = sp.duration_s if sp.duration_s is not None else 0.0
            rows.append((label, dur, 100.0 * dur / total if total else 0.0))
            for child in sp.children:
                walk(child, depth + 1, total)

        for root in roots:
            walk(root, 0, root.duration_s or 0.0)
        width = max(len(label) for label, _, _ in rows)
        lines = ["span tree:"]
        for label, dur, pct in rows:
            lines.append(f"  {label.ljust(width)}  {dur * 1e3:10.1f} ms "
                         f"{pct:5.1f}%")
        return "\n".join(lines)


def _fmt_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def span(name: str, **attrs):
    """Open a span on the default tracer (no-op when obs is disabled)."""
    if not _state.enabled():
        return _NULL_SPAN
    return _TRACER.span(name, **attrs)
