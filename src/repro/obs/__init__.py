"""``repro.obs`` -- structured telemetry for the sim -> ML pipeline.

Three zero-dependency facilities (docs/observability.md has the full
guide and the metric-key naming conventions):

* a **metrics registry** of thread-safe counters, gauges and
  fixed-bucket histograms (:mod:`repro.obs.metrics`);
* a **span tracer** recording nested wall-clock timings into a tree
  with JSON and flame-style text export (:mod:`repro.obs.trace`);
* a **structured logger** emitting ``key=value`` lines through stdlib
  ``logging`` (:mod:`repro.obs.log`).

Everything is gated on one process-wide switch (:func:`enabled` /
:func:`set_enabled`, seeded from ``REPRO_OBS``): instrumented hot paths
pay a flag check when observability is off.  The module-level helpers
:func:`inc`, :func:`set_gauge`, :func:`observe` and :func:`span` apply
that gate; the underlying classes always record and can be used
directly (e.g. with a private registry) regardless of the switch.

Quickstart::

    from repro import obs

    obs.set_enabled(True)
    with obs.span("gbdt.fit", n_rounds=120):
        obs.inc("gbdt.rounds_total")
        obs.observe("gbdt.round_s", 0.012)
    print(obs.get_tracer().render())
    print(obs.format_snapshot(obs.get_registry().snapshot()))
"""

from repro.obs.state import enabled, set_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    get_registry,
)
from repro.obs.trace import Span, Tracer, get_tracer, span
from repro.obs.log import (
    KeyValueFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs import telemetry
from repro.obs.telemetry import (
    AvailabilitySLO,
    DriftBaseline,
    EventLog,
    LatencySLO,
    ManualClock,
    TelemetryPlane,
    WindowedCounter,
    WindowedHistogram,
    WindowedRegistry,
    current_trace_id,
    new_trace_id,
    to_prometheus,
    trace_scope,
)

__all__ = [
    "AvailabilitySLO",
    "Counter",
    "DriftBaseline",
    "EventLog",
    "Gauge",
    "Histogram",
    "KeyValueFormatter",
    "LatencySLO",
    "ManualClock",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "TelemetryPlane",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedRegistry",
    "configure_logging",
    "current_trace_id",
    "enabled",
    "format_snapshot",
    "get_logger",
    "get_registry",
    "get_tracer",
    "inc",
    "new_trace_id",
    "observe",
    "observe_many",
    "peak_rss_mb",
    "set_enabled",
    "set_gauge",
    "set_peak_rss_reader",
    "snapshot",
    "span",
    "telemetry",
    "to_prometheus",
    "trace_scope",
]


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter in the default registry (no-op when disabled)."""
    if enabled():
        get_registry().counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the default registry (no-op when disabled)."""
    if enabled():
        get_registry().gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe into a histogram in the default registry (no-op when disabled)."""
    if enabled():
        get_registry().histogram(name).observe(value)


def observe_many(name: str, values) -> None:
    """Observe a whole array into a histogram (no-op when disabled).

    One lock acquisition for the batch -- what vectorized paths (batched
    serving, benchmark replay) should call instead of a Python loop of
    :func:`observe`.
    """
    if enabled():
        get_registry().histogram(name).observe_many(values)


def snapshot() -> dict:
    """Shorthand for ``get_registry().snapshot()``."""
    return get_registry().snapshot()


#: Test seam: when set, :func:`peak_rss_mb` reads this instead of the
#: OS so memory-gauge plumbing is assertable without real allocations.
_peak_rss_reader = None


def set_peak_rss_reader(reader) -> None:
    """Install (or with ``None`` remove) a fake peak-RSS source."""
    global _peak_rss_reader
    _peak_rss_reader = reader


def peak_rss_mb() -> float:
    """This process's peak resident set size in MiB.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` -- kilobytes on
    Linux, bytes on macOS -- so memory regressions can be recorded as a
    gauge next to latency numbers (every benchmark does, via
    ``benchmarks/_bench_utils.py``).  Note this is a *high-water mark*:
    it only ever grows within a process, so bounded-memory assertions
    must measure in a fresh subprocess.
    """
    if _peak_rss_reader is not None:
        return float(_peak_rss_reader())
    import resource
    import sys

    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return raw / (1024.0 * 1024.0)
    return raw / 1024.0
