"""Zero-dependency, thread-safe metrics: counters, gauges, histograms.

The process-wide :class:`MetricsRegistry` (via :func:`get_registry`)
holds every metric by name.  Naming conventions (docs/observability.md):
keys are dot-separated ``<layer>.<subject>`` paths; counters end in
``_total``, histograms end in a unit suffix (``_s``, ``_mbps``), gauges
are plain nouns -- e.g. ``sim.handoff.vertical_total``,
``span.model.fit_s``, ``gbdt.train_loss``.

Histograms use fixed buckets: exact count/sum/min/max plus per-bucket
counts, from which quantiles are estimated by linear interpolation
inside the containing bucket.  The default edges are log-spaced (16 per
decade from 1e-6 to 1e6, ~7% relative resolution) so one layout serves
durations in seconds, throughputs in Mbps and small integer counts.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_snapshot",
    "get_registry",
]

#: (-inf, 0), [0, 1e-6), then 16 log-spaced buckets per decade up to 1e6.
DEFAULT_EDGES = np.concatenate(([0.0], np.geomspace(1e-6, 1e6, 12 * 16 + 1)))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def merge_state(self, value: float) -> None:
        """Fold another process's count into this counter."""
        self.inc(float(value))


class Gauge:
    """Last-written value (may move in both directions)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = float("nan")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            base = 0.0 if math.isnan(self._value) else self._value
            self._value = base + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    ``edges`` is an ascending 1-D boundary array defining the buckets
    ``(-inf, e0), [e0, e1), ..., [e_last, +inf)``.  NaN observations are
    dropped.  Quantiles interpolate linearly within the containing
    bucket and are clamped to the observed min/max, so accuracy is
    bounded by the bucket width around the requested quantile.
    """

    __slots__ = ("name", "_lock", "_edges", "_counts",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, edges=None):
        self.name = name
        e = np.array(DEFAULT_EDGES if edges is None else edges, dtype=float)
        if e.ndim != 1 or len(e) < 2 or np.any(np.diff(e) <= 0):
            raise ValueError("edges must be a strictly ascending 1-D array "
                             "with at least two entries")
        self._edges = e
        self._counts = np.zeros(len(e) + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        if math.isnan(v):
            return
        idx = int(np.searchsorted(self._edges, v, side="right"))
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    def observe_many(self, values) -> None:
        v = np.asarray(values, dtype=float).ravel()
        v = v[~np.isnan(v)]
        if len(v) == 0:
            return
        idx = np.searchsorted(self._edges, v, side="right")
        bins = np.bincount(idx, minlength=len(self._counts))
        with self._lock:
            self._counts += bins
            self._count += len(v)
            self._sum += float(v.sum())
            self._min = min(self._min, float(v.min()))
            self._max = max(self._max, float(v.max()))

    # -- read side --------------------------------------------------------- #

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimated q-quantile of everything observed so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return float("nan")
            counts = self._counts.copy()
            total, vmin, vmax = self._count, self._min, self._max
        if q == 0.0:
            return vmin
        if q == 1.0:
            return vmax
        cum = np.cumsum(counts)
        target = q * total
        i = int(np.searchsorted(cum, target, side="left"))
        in_bucket = counts[i]
        before = cum[i - 1] if i > 0 else 0
        lo = self._edges[i - 1] if i > 0 else vmin
        hi = self._edges[i] if i < len(self._edges) else vmax
        lo, hi = max(lo, vmin), min(hi, vmax)
        if hi < lo:
            hi = lo
        frac = (target - before) / in_bucket if in_bucket else 0.0
        return float(lo + min(max(frac, 0.0), 1.0) * (hi - lo))

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def state(self) -> dict:
        """Lossless raw state (unlike :meth:`snapshot`), for merging."""
        with self._lock:
            return {
                "edges": self._edges.tolist(),
                "counts": self._counts.tolist(),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Both histograms must share bucket edges (always true for the
        default layout); merged quantiles are exactly what a single
        histogram observing both streams would report.
        """
        edges = np.asarray(state["edges"], dtype=float)
        if len(edges) != len(self._edges) or \
                not np.array_equal(edges, self._edges):
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket edges differ"
            )
        counts = np.asarray(state["counts"], dtype=np.int64)
        with self._lock:
            self._counts += counts
            self._count += int(state["count"])
            self._sum += float(state["sum"])
            self._min = min(self._min, float(state["min"]))
            self._max = max(self._max, float(state["max"]))


class MetricsRegistry:
    """Process-wide get-or-create store of named metrics."""

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{type(metric).__name__}, not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges=None) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, edges))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (mainly for tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """JSON-safe ``{"counters": .., "gauges": .., "histograms": ..}``."""
        with self._lock:
            items = sorted(self._metrics.items())
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, Counter):
                v = metric.value
                counters[name] = int(v) if float(v).is_integer() else v
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def dump(self) -> dict:
        """Lossless, picklable state for cross-process merging.

        Same three-section shape as :meth:`snapshot`, but histograms
        carry raw bucket counts so :meth:`merge` loses nothing.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.state()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` (e.g. from a worker process) into this
        registry: counters add, histograms combine bucket-wise, gauges
        take the incoming value (last merge wins, NaN skipped)."""
        for name, value in dump.get("counters", {}).items():
            self.counter(name).merge_state(value)
        for name, value in dump.get("gauges", {}).items():
            if not math.isnan(float(value)):
                self.gauge(name).set(value)
        for name, state in dump.get("histograms", {}).items():
            self.histogram(name, edges=state["edges"]).merge_state(state)


def format_snapshot(snapshot: dict) -> str:
    """Human-readable rendering of :meth:`MetricsRegistry.snapshot`."""
    lines: list[str] = ["metrics:"]
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"  counter    {name} = {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"  gauge      {name} = {value:.6g}")
    for name, h in snapshot.get("histograms", {}).items():
        p999 = h.get("p999", float("nan"))  # tolerate pre-p999 payloads
        lines.append(
            f"  histogram  {name}: count={h['count']} mean={h['mean']:.6g} "
            f"p50={h['p50']:.6g} p90={h['p90']:.6g} p99={h['p99']:.6g} "
            f"p999={p999:.6g} max={h['max']:.6g}"
        )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
