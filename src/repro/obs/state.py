"""Process-wide observability switch.

Instrumented call sites across the codebase are gated on :func:`enabled`
so that a run with observability off pays only a flag check (the <2%
overhead budget of the seed GBDT benchmark).  The switch starts from the
``REPRO_OBS`` environment variable and is flipped programmatically by the
CLI's ``--verbose`` / ``--metrics-out`` flags or by tests.
"""

from __future__ import annotations

import os

_FALSY = ("", "0", "false", "off", "no")

_enabled = os.environ.get("REPRO_OBS", "").strip().lower() not in _FALSY


def enabled() -> bool:
    """Whether instrumentation should record metrics and spans."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Turn instrumentation on or off process-wide."""
    global _enabled
    _enabled = bool(value)
