"""Structured key=value logging on top of stdlib ``logging``.

``get_logger("sim")`` returns a :class:`StructuredLogger` whose methods
take an event name plus keyword fields and emit one ``key=value`` line::

    log = obs.get_logger("datasets")
    log.info("generated", area="Airport", rows=1812)
    # ts=2026-08-05T09:12:33 level=info logger=repro.datasets \
    #   event=generated area=Airport rows=1812

The ``repro`` logger hierarchy is configured lazily on first use with a
stderr handler; the level comes from the ``REPRO_LOG`` environment
variable (``debug``/``info``/``warning``/``error``, default ``warning``)
and can be changed at runtime with :func:`configure_logging` (the CLI's
``--verbose`` does exactly that).
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading

__all__ = ["KeyValueFormatter", "StructuredLogger", "configure_logging",
           "get_logger"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_ROOT_NAME = "repro"
_lock = threading.Lock()
_configured = False


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "true" if value else "false"
    text = str(value)
    if text == "" or any(c in text for c in ' "=\n'):
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... event=... key=value ...`` lines."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"event={_format_value(record.getMessage())}",
        ]
        fields = getattr(record, "kv", None)
        if fields:
            parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
        if record.exc_info:
            parts.append(f"exc={_format_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


def configure_logging(level: str | int | None = None, stream=None) -> None:
    """(Re)configure the ``repro`` logger hierarchy.

    Idempotent: installs a single stderr handler with the key=value
    formatter; later calls just adjust the level/stream.
    """
    global _configured
    if isinstance(level, str):
        try:
            level = _LEVELS[level.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
            ) from None
    if level is None:
        level = _LEVELS.get(
            os.environ.get("REPRO_LOG", "").strip().lower(), logging.WARNING
        )
    with _lock:
        root = logging.getLogger(_ROOT_NAME)
        for handler in list(root.handlers):
            if getattr(handler, "_repro_obs", False):
                root.removeHandler(handler)
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        handler._repro_obs = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _configured = True


class StructuredLogger:
    """Thin wrapper translating keyword fields into ``key=value`` output."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def is_enabled_for(self, level: str) -> bool:
        return self._logger.isEnabledFor(_LEVELS[level])

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"kv": fields})

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro.`` hierarchy."""
    if not _configured:
        configure_logging()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))
