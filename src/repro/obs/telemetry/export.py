"""Exporters: Prometheus text format and a JSONL event stream.

Two ways telemetry leaves the process:

* :func:`to_prometheus` renders a ``MetricsRegistry.snapshot()``-shaped
  dict in the Prometheus text exposition format (dots become
  underscores, histograms become summaries with ``quantile`` labels,
  counters keep their ``_total`` suffix).  :func:`parse_prometheus`
  inverts it for round-trip tests and the ``obs report`` CLI.
* :class:`EventLog` collects **structured events** (SLO alerts, drift
  detections, anything else) as dicts, optionally teeing each one as a
  JSON line onto a stream/file -- the serving loop's machine-readable
  alert channel.
"""

from __future__ import annotations

import json
import math
import re

from repro.obs.telemetry.clock import Clock, system_clock

__all__ = [
    "EventLog",
    "ROLLOUT_EVENTS",
    "parse_prometheus",
    "sanitize_metric_name",
    "to_prometheus",
]

#: Edge-triggered rollout lifecycle events (repro.rollout emits these;
#: docs/continuous_learning.md).  ``rollout_promoted`` and
#: ``rollout_rolled_back`` are terminal -- each appears at most once
#: per rollout attempt.
ROLLOUT_EVENTS = (
    "rollout_started",
    "rollout_shadow",
    "rollout_canary",
    "rollout_promoted",
    "rollout_rolled_back",
)

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram snapshot keys exported as summary quantiles.
_QUANTILE_KEYS = (("p50", "0.5"), ("p90", "0.9"),
                  ("p99", "0.99"), ("p999", "0.999"))


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """``serve.request_latency_s`` -> ``repro_serve_request_latency_s``."""
    return prefix + _NAME_BAD.sub("_", name.replace(".", "_"))


def _fmt(value: float) -> str:
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v)


def to_prometheus(snapshot: dict, prefix: str = "repro_") -> str:
    """Prometheus text format for a registry snapshot dict.

    ``snapshot`` is the ``{"counters", "gauges", "histograms"}`` shape
    of :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Histograms
    are exported as summaries (quantile labels + ``_sum``/``_count``);
    NaN gauges (never written) are skipped.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if isinstance(value, float) and math.isnan(value):
            continue
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, h in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for key, label in _QUANTILE_KEYS:
            if key in h:
                lines.append(
                    f'{metric}{{quantile="{label}"}} {_fmt(h[key])}'
                )
        lines.append(f"{metric}_sum {_fmt(h['sum'])}")
        lines.append(f"{metric}_count {_fmt(h['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{quantile="(?P<q>[0-9.]+)"\})?'
    r'\s+(?P<value>\S+)$'
)

_LABEL_TO_KEY = {label: key for key, label in _QUANTILE_KEYS}


def parse_prometheus(text: str) -> dict:
    """Invert :func:`to_prometheus` back into a snapshot-shaped dict.

    Names stay in their sanitized (underscored, prefixed) form; the
    round-trip contract is on the *numbers*, which tests compare against
    the in-process registry snapshot.
    """
    kinds: dict[str, str] = {}
    out = {"counters": {}, "gauges": {}, "histograms": {}}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"unparseable prometheus sample: {line!r}")
        name, q, value = m.group("name"), m.group("q"), float(
            m.group("value"))
        base = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in kinds \
                    and kinds[name[:-len(suffix)]] == "summary":
                base = name[:-len(suffix)]
                break
        kind = kinds.get(base, kinds.get(name, "gauge"))
        if kind == "counter":
            out["counters"][name] = value
        elif kind == "gauge":
            out["gauges"][name] = value
        else:  # summary
            h = out["histograms"].setdefault(base, {})
            if q is not None:
                h[_LABEL_TO_KEY.get(q, f"q{q}")] = value
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value
    return out


class EventLog:
    """Append-only structured events, teed to a JSONL stream when given.

    ``emit("slo_alert", name=..., burn_fast=...)`` appends a dict
    carrying the event kind and a clock timestamp, and -- if a stream
    was provided -- writes it as one JSON line immediately (crash-safe:
    the line is flushed before :meth:`emit` returns).
    """

    def __init__(self, stream=None, clock: Clock = system_clock):
        self.stream = stream
        self.clock = clock
        self.events: list[dict] = []

    def emit(self, event: str, **fields) -> dict:
        record = {"event": event, "t_s": round(self.clock(), 6), **fields}
        self.events.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")
            flush = getattr(self.stream, "flush", None)
            if flush is not None:
                flush()
        return record

    def of_kind(self, event: str) -> list[dict]:
        return [e for e in self.events if e["event"] == event]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
