"""Render a telemetry snapshot as a human-readable report.

Backs the ``repro obs report`` CLI subcommand: given the JSON payload a
``--metrics-out`` run wrote (cumulative metrics + trace, and -- for
serve runs -- the ``telemetry`` section with windows, SLO statuses and
drift verdicts) and optionally a JSONL event stream, print the
operator-facing summary.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter

from repro.obs.metrics import format_snapshot

__all__ = ["render_report"]


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "n/a"
    return f"{float(seconds) * 1e3:.2f}ms"


def _render_slo(status: dict) -> str:
    flag = "ALERT" if status.get("alerting") else (
        "ok" if status.get("ok") else "breach")
    if status.get("kind") == "latency":
        value = _fmt_ms(status.get("value"))
        objective = _fmt_ms(status.get("objective"))
        detail = f"value={value} objective<{objective}"
    else:
        value = status.get("value")
        value = "n/a" if value is None else f"{float(value):.5f}"
        detail = f"availability={value} target>={status.get('objective')}"
    return (f"  [{flag:6s}] {status.get('name')}: {detail} "
            f"burn fast={status.get('burn_fast')} "
            f"slow={status.get('burn_slow')} n={status.get('n', 0)}")


def _render_drift(status: dict) -> str:
    flag = "DRIFT" if status.get("drifted") else "ok"
    return (f"  [{flag:6s}] {status.get('stat')}: "
            f"z_mean={status.get('z_mean')} "
            f"median_shift={status.get('median_shift')} "
            f"n={status.get('n', 0)}")


def _render_window(window: dict) -> list[str]:
    lines = [f"window ({window.get('window_s', '?')}s):"]
    for name, c in sorted(window.get("counters", {}).items()):
        lines.append(f"  counter    {name}: total={c['total']:g} "
                     f"rate={c['rate_per_s']:g}/s")
    for name, h in sorted(window.get("histograms", {}).items()):
        if not h.get("count"):
            lines.append(f"  histogram  {name}: (empty)")
            continue
        lines.append(
            f"  histogram  {name}: count={h['count']} "
            f"rate={h['rate_per_s']:g}/s p50={h['p50']:.6g} "
            f"p99={h['p99']:.6g} p999={h['p999']:.6g}"
        )
    if len(lines) == 1:
        lines.append("  (empty)")
    return lines


def render_report(payload: dict, events: list[dict] | None = None) -> str:
    """The ``obs report`` text for a ``--metrics-out`` payload."""
    lines: list[str] = []
    command = payload.get("command")
    lines.append(f"telemetry report{f' ({command})' if command else ''}")
    telemetry = payload.get("telemetry") or {}
    if telemetry.get("window"):
        lines.extend(_render_window(telemetry["window"]))
    verdict = telemetry.get("last_evaluation") or {}
    slos = verdict.get("slos") or []
    if slos:
        lines.append("SLOs:")
        lines.extend(_render_slo(s) for s in slos)
        lines.append(
            "  error budget: "
            + ("BURNED" if verdict.get("budget_burned") else "within budget")
        )
    drift = verdict.get("drift")
    if drift:
        lines.append("drift:")
        lines.append(_render_drift(drift))
    if events:
        tally = _TallyCounter(e.get("event", "?") for e in events)
        summary = " ".join(f"{k}={v}" for k, v in sorted(tally.items()))
        lines.append(f"events: {len(events)} ({summary})")
    metrics = payload.get("metrics")
    if metrics:
        lines.append(format_snapshot(metrics))
    return "\n".join(lines)
