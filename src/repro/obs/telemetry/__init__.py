"""``repro.obs.telemetry`` -- the serving telemetry plane.

PR 1's ``repro.obs`` answers "what has this process done since it
started"; this subpackage answers the questions a *continuously
operating* prediction service must ask of itself
(docs/observability.md):

* **windowed metrics** (:mod:`.window`) -- bucketed sliding windows
  over the log-bucket histograms/counters: rate-per-second and windowed
  p50/p99/p999, mergeable across ``pmap`` workers, driven by an
  injectable clock (:mod:`.clock`, the only module allowed to read
  ``time``);
* **trace propagation** (:mod:`.context`) -- per-request trace IDs
  minted by the serve loop, carried through batching, registry loads
  and resil retries via a contextvar, stitched into structured logs and
  span attributes;
* **SLO monitors** (:mod:`.slo`) -- declarative latency/availability
  objectives evaluated over fast+slow windows with multi-window
  error-budget burn-rate alerting;
* **drift monitors** (:mod:`.drift`) -- windowed mean/quantile shift
  against a frozen training-time :class:`DriftBaseline` serialized
  alongside the model;
* **exporters** (:mod:`.export`) -- Prometheus text format and a JSONL
  structured-event stream; :mod:`.report` renders the ``obs report``
  CLI summary;
* :class:`TelemetryPlane` (:mod:`.plane`) -- the bundle a serving loop
  holds: both window horizons, the monitors, and the event log.
"""

from repro.obs.telemetry.clock import Clock, ManualClock, system_clock
from repro.obs.telemetry.context import (
    current_trace_id,
    new_trace_id,
    set_trace_id,
    trace_scope,
)
from repro.obs.telemetry.drift import (
    DriftBaseline,
    DriftMonitor,
    DriftStatus,
    attach_baseline,
    baseline_of,
)
from repro.obs.telemetry.export import (
    ROLLOUT_EVENTS,
    EventLog,
    parse_prometheus,
    sanitize_metric_name,
    to_prometheus,
)
from repro.obs.telemetry.plane import TelemetryPlane
from repro.obs.telemetry.report import render_report
from repro.obs.telemetry.slo import (
    AvailabilitySLO,
    LatencySLO,
    SLOMonitor,
    SLOStatus,
)
from repro.obs.telemetry.window import (
    WindowedCounter,
    WindowedHistogram,
    WindowedRegistry,
)

__all__ = [
    "AvailabilitySLO",
    "Clock",
    "DriftBaseline",
    "DriftMonitor",
    "DriftStatus",
    "EventLog",
    "LatencySLO",
    "ManualClock",
    "ROLLOUT_EVENTS",
    "SLOMonitor",
    "SLOStatus",
    "TelemetryPlane",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedRegistry",
    "attach_baseline",
    "baseline_of",
    "current_trace_id",
    "new_trace_id",
    "parse_prometheus",
    "render_report",
    "sanitize_metric_name",
    "set_trace_id",
    "system_clock",
    "to_prometheus",
    "trace_scope",
]
