"""Online drift detection: serving statistics vs. a frozen baseline.

The continuous-learning loop needs a trigger: "the distribution the
model now sees (or emits) no longer looks like training".  This module
provides it with two pieces:

* :class:`DriftBaseline` -- compact summary statistics (count, mean,
  std, p10/p50/p90) of a training-time array, computed by
  :func:`DriftBaseline.from_values` and **serialized alongside the
  model** (``repro.ml.serialize`` stores it as the ``drift_baseline``
  payload; ``Lumos5G.publish`` attaches it from training predictions).
* :class:`DriftMonitor` -- feeds serving-time values into a
  :class:`~repro.obs.telemetry.window.WindowedHistogram` and compares
  the windowed mean/median against the baseline:

  - **mean shift** as a z-score of the windowed mean under the
    baseline's sampling distribution (``|m_w - m_b| / (s_b /
    sqrt(n))``), and
  - **quantile shift** of the windowed median, normalized by the
    baseline's p10--p90 spread.

  Drift is declared when either statistic passes its threshold with at
  least ``min_count`` samples in the window, and (de)assertions are
  edge-triggered structured events (``drift_detected`` /
  ``drift_cleared``) -- the signal the refit/rollout roadmap item
  consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.telemetry.window import WindowedHistogram

__all__ = [
    "DriftBaseline",
    "DriftMonitor",
    "DriftStatus",
    "attach_baseline",
    "baseline_of",
]


@dataclass(frozen=True)
class DriftBaseline:
    """Frozen training-time summary of one statistic stream."""

    stat: str       #: what was summarized, e.g. "prediction" or "error"
    count: int
    mean: float
    std: float
    p10: float
    p50: float
    p90: float

    @classmethod
    def from_values(cls, stat: str, values) -> "DriftBaseline":
        v = np.asarray(values, dtype=float).ravel()
        v = v[np.isfinite(v)]
        if len(v) == 0:
            raise ValueError("cannot build a drift baseline from no values")
        q10, q50, q90 = (float(np.quantile(v, q)) for q in (0.1, 0.5, 0.9))
        return cls(
            stat=stat, count=int(len(v)), mean=float(v.mean()),
            std=float(v.std()), p10=q10, p50=q50, p90=q90,
        )

    @property
    def scale(self) -> float:
        """A robust spread for normalizing quantile shifts (never 0)."""
        spread = self.p90 - self.p10
        if spread <= 0.0:
            spread = self.std
        return max(spread, 1e-12)

    def to_dict(self) -> dict:
        return {
            "stat": self.stat, "count": self.count,
            "mean": self.mean, "std": self.std,
            "p10": self.p10, "p50": self.p50, "p90": self.p90,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DriftBaseline":
        return cls(
            stat=str(data["stat"]), count=int(data["count"]),
            mean=float(data["mean"]), std=float(data["std"]),
            p10=float(data["p10"]), p50=float(data["p50"]),
            p90=float(data["p90"]),
        )


@dataclass
class DriftStatus:
    """One drift evaluation (JSON-safe via :meth:`to_dict`)."""

    stat: str
    drifted: bool
    z_mean: float         #: z-score of the windowed mean vs baseline
    median_shift: float   #: |p50_w - p50_b| / baseline scale
    n: int                #: samples in the window
    window_mean: float
    window_p50: float

    def to_dict(self) -> dict:
        def safe(v):
            return None if isinstance(v, float) and not math.isfinite(v) \
                else v
        return {
            "stat": self.stat, "drifted": self.drifted,
            "z_mean": safe(round(self.z_mean, 4)),
            "median_shift": safe(round(self.median_shift, 4)),
            "n": self.n,
            "window_mean": safe(self.window_mean),
            "window_p50": safe(self.window_p50),
        }


class DriftMonitor:
    """Stream values in, compare the window against the baseline."""

    def __init__(
        self,
        baseline: DriftBaseline,
        window: WindowedHistogram,
        *,
        z_threshold: float = 6.0,
        shift_threshold: float = 0.5,
        min_count: int = 30,
        event_log=None,
    ):
        if z_threshold <= 0 or shift_threshold <= 0:
            raise ValueError("drift thresholds must be > 0")
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.baseline = baseline
        self.window = window
        self.z_threshold = z_threshold
        self.shift_threshold = shift_threshold
        self.min_count = min_count
        self.event_log = event_log
        self._drifted = False

    def observe(self, value: float) -> None:
        self.window.observe(value)

    def observe_many(self, values) -> None:
        self.window.observe_many(values)

    def evaluate(self) -> DriftStatus:
        """The window-vs-baseline verdict; emits edge-triggered events."""
        merged = self.window.merged()
        n = merged.count
        b = self.baseline
        if n == 0:
            status = DriftStatus(
                stat=b.stat, drifted=False, z_mean=0.0, median_shift=0.0,
                n=0, window_mean=float("nan"), window_p50=float("nan"),
            )
        else:
            w_mean = merged.mean
            w_p50 = merged.quantile(0.5)
            se = max(b.std, 1e-12) / math.sqrt(n)
            z = abs(w_mean - b.mean) / se
            shift = abs(w_p50 - b.p50) / b.scale
            drifted = n >= self.min_count and (
                z >= self.z_threshold or shift >= self.shift_threshold
            )
            status = DriftStatus(
                stat=b.stat, drifted=drifted, z_mean=z, median_shift=shift,
                n=n, window_mean=w_mean, window_p50=w_p50,
            )
        if self.event_log is not None:
            if status.drifted and not self._drifted:
                self.event_log.emit("drift_detected", **status.to_dict(),
                                    baseline=b.to_dict())
            elif self._drifted and not status.drifted:
                self.event_log.emit("drift_cleared", stat=b.stat, n=status.n)
        self._drifted = status.drifted
        return status


def attach_baseline(model, values, stat: str = "prediction"
                    ) -> DriftBaseline:
    """Compute a baseline from ``values`` and pin it on ``model``.

    The model carries it as ``drift_baseline_`` (a plain dict), which
    ``repro.ml.serialize`` round-trips alongside the weights -- so a
    registry-loaded model arrives with its training-time reference.
    """
    baseline = DriftBaseline.from_values(stat, values)
    model.drift_baseline_ = baseline.to_dict()
    return baseline


def baseline_of(model) -> DriftBaseline | None:
    """The model's serialized baseline, if any (pipelines delegate)."""
    data = getattr(model, "drift_baseline_", None)
    if data is None:
        # PredictionPipeline wraps the estimator that owns the baseline.
        inner = getattr(model, "model", None)
        data = getattr(inner, "drift_baseline_", None)
    if data is None:
        return None
    return DriftBaseline.from_dict(data)
