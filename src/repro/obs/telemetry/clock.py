"""The one clock abstraction behind all windowed telemetry.

Windowed metrics, SLO monitors and drift monitors never read the wall
clock directly: they take a ``clock`` callable returning seconds as a
float, defaulting to :func:`system_clock`.  That keeps every window
boundary, burn-rate evaluation and drift decision unit-testable without
sleeping -- tests pass a :class:`ManualClock` and advance it explicitly.

This module is the *only* place in ``repro.obs.telemetry`` allowed to
touch ``time`` (``tools/check_obs.py`` enforces it): everything else
must thread a ``clock`` parameter through.
"""

from __future__ import annotations

import time
from collections.abc import Callable

__all__ = ["Clock", "ManualClock", "system_clock"]

#: Anything callable returning "now" in seconds (monotonic preferred).
Clock = Callable[[], float]


def system_clock() -> float:
    """Monotonic seconds -- immune to wall-clock (NTP/DST) skew."""
    return time.monotonic()


class ManualClock:
    """An injectable clock tests drive by hand.

    ``ManualClock(t0)()`` returns ``t0`` until :meth:`advance` or
    :meth:`set` move it.  Because windowed telemetry only ever *reads*
    the clock, a manual clock makes window rollover, SLO evaluation
    cadence and breaker timeouts fully deterministic.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> "ManualClock":
        if seconds < 0:
            raise ValueError("manual clocks only advance; use set()")
        self._now += float(seconds)
        return self

    def set(self, now: float) -> "ManualClock":
        self._now = float(now)
        return self
