"""Request-scoped trace IDs, propagated without global mutable state.

A trace ID is minted once per request (``InferenceService.run_jsonl``),
travels explicitly with the request through the micro-batcher's queue,
and implicitly -- via a :mod:`contextvars` variable -- through
everything that runs inline on the request path (registry loads, resil
retries, breaker transitions), so one request's journey can be stitched
back together from structured logs and span attributes.

Usage::

    tid = new_trace_id("req")          # "req-000001"
    with trace_scope(tid):
        ...                            # current_trace_id() == tid inside
    log.info("loaded", trace_id=current_trace_id() or "-")

IDs are sequential per process (``<prefix>-<n>``), not random: the repo
prizes reproducible runs, and a deterministic counter keeps chaos-test
transcripts stable while still making every request distinguishable.
"""

from __future__ import annotations

import contextvars
import itertools
import threading

__all__ = [
    "current_trace_id",
    "new_trace_id",
    "set_trace_id",
    "trace_scope",
]

_counter = itertools.count(1)
_counter_lock = threading.Lock()

_current: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id(prefix: str = "req") -> str:
    """A fresh, process-unique trace ID: ``<prefix>-<n>`` (n counts up)."""
    with _counter_lock:
        n = next(_counter)
    return f"{prefix}-{n:06d}"


def current_trace_id() -> str | None:
    """The trace ID bound to the current context (None outside one)."""
    return _current.get()


def set_trace_id(trace_id: str | None) -> contextvars.Token:
    """Bind ``trace_id`` to the current context; returns the reset token."""
    return _current.set(trace_id)


class trace_scope:
    """Context manager binding a trace ID for the duration of a block."""

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id: str | None):
        self.trace_id = trace_id
        self._token: contextvars.Token | None = None

    def __enter__(self) -> str | None:
        self._token = _current.set(self.trace_id)
        return self.trace_id

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        return False
