"""Declarative SLOs evaluated over windows, with burn-rate alerting.

An SLO is data, not code: "windowed p99 of ``serve.request_latency_s``
stays under 50 ms" or "availability >= 99.9%".  The
:class:`SLOMonitor` evaluates a set of them against two
:class:`~repro.obs.telemetry.window.WindowedRegistry` horizons -- a
*fast* window (detects acute breakage) and a *slow* window (confirms it
is sustained) -- the classic multi-window burn-rate scheme: an alert
fires only when **both** windows burn error budget faster than their
thresholds, so a single bad batch cannot page anyone but a sustained
brownout cannot hide either.

Burn rate for an availability SLO with target ``t`` is
``error_ratio / (1 - t)``: 1.0 means "spending budget exactly as fast
as the SLO allows", 14.4 (the default fast threshold) means "the whole
monthly budget would be gone in ~2 days".  Latency SLOs breach when the
windowed quantile exceeds the threshold; the slow window acts as the
confirmation horizon.

Alert transitions are edge-triggered **structured events** (through an
:class:`~repro.obs.telemetry.export.EventLog`): ``slo_alert`` when a
monitor starts alerting, ``slo_recovered`` when it stops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.telemetry.window import WindowedRegistry

__all__ = [
    "AvailabilitySLO",
    "LatencySLO",
    "SLOMonitor",
    "SLOStatus",
]


@dataclass(frozen=True)
class LatencySLO:
    """"windowed ``quantile`` of ``metric`` stays below ``threshold_s``"."""

    name: str                 #: e.g. "serve.latency_p99"
    metric: str               #: windowed histogram name
    quantile: float           #: e.g. 0.99 or 0.999
    threshold_s: float        #: objective, seconds

    def __post_init__(self):
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be > 0")


@dataclass(frozen=True)
class AvailabilitySLO:
    """"good / (good + bad) stays at or above ``target``"."""

    name: str                 #: e.g. "serve.availability"
    good: str                 #: windowed counter of successes
    bad: str                  #: windowed counter of failures
    target: float = 0.999     #: e.g. 0.999 for "three nines"

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated failure ratio (1 - target)."""
        return 1.0 - self.target


@dataclass
class SLOStatus:
    """One SLO's evaluation at a point in time (JSON-safe via to_dict)."""

    name: str
    kind: str                 #: "latency" | "availability"
    ok: bool                  #: fast-window objective currently met
    value: float              #: fast-window quantile / availability
    objective: float          #: threshold_s / target
    burn_fast: float          #: burn rate over the fast window
    burn_slow: float          #: burn rate over the slow window
    alerting: bool            #: both windows past their burn thresholds
    n: int = 0                #: fast-window sample count

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "value": _json_safe(self.value),
            "objective": self.objective,
            "burn_fast": _json_safe(round(self.burn_fast, 4)),
            "burn_slow": _json_safe(round(self.burn_slow, 4)),
            "alerting": self.alerting,
            "n": self.n,
        }


def _json_safe(v: float):
    return None if isinstance(v, float) and not math.isfinite(v) else v


class SLOMonitor:
    """Evaluate declarative SLOs over a fast and a slow window."""

    def __init__(
        self,
        slos,
        fast: WindowedRegistry,
        slow: WindowedRegistry,
        *,
        burn_threshold_fast: float = 14.4,
        burn_threshold_slow: float = 6.0,
        event_log=None,
    ):
        self.slos = list(slos)
        self.fast = fast
        self.slow = slow
        self.burn_threshold_fast = burn_threshold_fast
        self.burn_threshold_slow = burn_threshold_slow
        self.event_log = event_log
        self._alerting: dict[str, bool] = {}

    # -- evaluation ---------------------------------------------------------- #

    def _latency_status(self, slo: LatencySLO) -> SLOStatus:
        fast_h = self.fast.histogram(slo.metric).merged()
        slow_h = self.slow.histogram(slo.metric).merged()
        value = fast_h.quantile(slo.quantile)
        slow_value = slow_h.quantile(slo.quantile)
        # Burn analog for latency: how far past the objective each
        # window's quantile sits (1.0 == exactly at the objective).
        burn_fast = value / slo.threshold_s if fast_h.count else 0.0
        burn_slow = slow_value / slo.threshold_s if slow_h.count else 0.0
        ok = not (fast_h.count and value > slo.threshold_s)
        alerting = burn_fast > 1.0 and burn_slow > 1.0
        return SLOStatus(
            name=slo.name, kind="latency", ok=ok,
            value=value if fast_h.count else float("nan"),
            objective=slo.threshold_s,
            burn_fast=burn_fast, burn_slow=burn_slow,
            alerting=alerting, n=fast_h.count,
        )

    def _availability_status(self, slo: AvailabilitySLO) -> SLOStatus:
        def window_burn(reg: WindowedRegistry) -> tuple[float, float, int]:
            good = reg.counter(slo.good).total()
            bad = reg.counter(slo.bad).total()
            n = good + bad
            if n <= 0:
                return 1.0, 0.0, 0
            availability = good / n
            burn = (bad / n) / slo.budget
            return availability, burn, int(n)

        value, burn_fast, n = window_burn(self.fast)
        _, burn_slow, _ = window_burn(self.slow)
        ok = value >= slo.target or n == 0
        alerting = (burn_fast >= self.burn_threshold_fast
                    and burn_slow >= self.burn_threshold_slow)
        return SLOStatus(
            name=slo.name, kind="availability", ok=ok, value=value,
            objective=slo.target, burn_fast=burn_fast,
            burn_slow=burn_slow, alerting=alerting, n=n,
        )

    def evaluate(self) -> list[SLOStatus]:
        """Every SLO's current status; emits edge-triggered alert events."""
        statuses: list[SLOStatus] = []
        for slo in self.slos:
            if isinstance(slo, LatencySLO):
                status = self._latency_status(slo)
            elif isinstance(slo, AvailabilitySLO):
                status = self._availability_status(slo)
            else:
                raise TypeError(
                    f"unknown SLO type {type(slo).__name__}; expected "
                    "LatencySLO or AvailabilitySLO"
                )
            was = self._alerting.get(status.name, False)
            if status.alerting and not was and self.event_log is not None:
                self.event_log.emit("slo_alert", **status.to_dict())
            elif was and not status.alerting and self.event_log is not None:
                self.event_log.emit("slo_recovered", name=status.name,
                                    kind=status.kind)
            self._alerting[status.name] = status.alerting
            statuses.append(status)
        return statuses
