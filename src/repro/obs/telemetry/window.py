"""Windowed metrics: what happened in the last N seconds, not ever.

The cumulative :class:`repro.obs.metrics.Histogram`/``Counter`` answer
"what has this process done since it started"; SLOs and drift detection
need "what happened in the last 60 seconds".  This module layers
**bucketed sliding windows** on the same primitives:

* time is cut into tumbling buckets of ``window_s / n_buckets`` seconds,
  aligned to absolute clock values (``floor(now / bucket_s)``), so
  rollover is *clock-skew free*: a bucket boundary depends only on the
  clock reading, never on how often or from which thread the metric was
  touched;
* each bucket holds a full log-bucket histogram (or a plain count), and
  a read merges the live buckets -- giving windowed count/sum/quantiles
  with the same ~7% relative resolution as the cumulative registry;
* everything takes an injectable ``clock`` (:mod:`.clock`), so tests
  drive window rollover deterministically with a :class:`ManualClock`;
* like the cumulative registry, windowed metrics are **mergeable**:
  ``state()`` / ``merge_state()`` align buckets by absolute index, so
  ``pmap`` workers sharing a clock epoch fold their windows together
  exactly (:meth:`WindowedRegistry.merge`, mirroring
  ``MetricsRegistry.merge``).

Quantile accuracy note: a merged window is exactly the histogram a
single process observing all live buckets would hold, so windowed
``p99``/``p999`` inherit the cumulative histogram's error bounds.
"""

from __future__ import annotations

import math
import threading

from repro.obs.metrics import Histogram
from repro.obs.telemetry.clock import Clock, system_clock

__all__ = [
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedRegistry",
]


class _Ring:
    """Fixed ring of per-bucket slots keyed by absolute bucket index.

    Slot position is ``index % n_buckets``; a stale slot (its stored
    index fell out of the live range) is lazily replaced on the next
    write to that position.  Reads never mutate, so a clock that jumps
    backwards (manual clocks in tests) simply sees fewer live buckets
    instead of corrupting state.
    """

    __slots__ = ("n_buckets", "bucket_s", "_factory", "_slots", "_indices")

    def __init__(self, n_buckets: int, bucket_s: float, factory):
        self.n_buckets = n_buckets
        self.bucket_s = bucket_s
        self._factory = factory
        self._slots: list = [None] * n_buckets
        self._indices: list[int] = [-1] * n_buckets

    def index(self, now: float) -> int:
        return int(math.floor(now / self.bucket_s))

    def slot(self, now: float):
        """The live slot for ``now``, recycling a stale one in place."""
        idx = self.index(now)
        pos = idx % self.n_buckets
        if self._indices[pos] != idx:
            self._slots[pos] = self._factory()
            self._indices[pos] = idx
        return self._slots[pos]

    def slot_at(self, idx: int):
        """The slot for an absolute bucket index (creating if recycled)."""
        pos = idx % self.n_buckets
        if self._indices[pos] != idx:
            self._slots[pos] = self._factory()
            self._indices[pos] = idx
        return self._slots[pos]

    def live(self, now: float) -> list[tuple[int, object]]:
        """``(index, slot)`` pairs inside the window ending at ``now``."""
        idx = self.index(now)
        lo = idx - self.n_buckets + 1
        return sorted(
            (i, s)
            for i, s in zip(self._indices, self._slots)
            if s is not None and lo <= i <= idx
        )

    def in_range(self, candidate: int, now: float) -> bool:
        idx = self.index(now)
        return idx - self.n_buckets + 1 <= candidate <= idx


class WindowedCounter:
    """Count of events inside a sliding window; exposes rate/second."""

    __slots__ = ("name", "window_s", "_ring", "_clock", "_lock")

    def __init__(self, name: str, window_s: float = 60.0,
                 n_buckets: int = 6, clock: Clock = system_clock):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.name = name
        self.window_s = float(window_s)
        self._clock = clock
        self._ring = _Ring(n_buckets, self.window_s / n_buckets,
                           lambda: [0.0])
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("windowed counters only go up")
        with self._lock:
            self._ring.slot(self._clock())[0] += amount

    def total(self) -> float:
        """Events inside the window ending now."""
        with self._lock:
            return sum(s[0] for _, s in self._ring.live(self._clock()))

    def rate_per_s(self) -> float:
        return self.total() / self.window_s

    # -- merging ------------------------------------------------------------ #

    def state(self) -> dict:
        """Live buckets keyed by absolute index, for cross-worker merge."""
        with self._lock:
            live = self._ring.live(self._clock())
            return {
                "window_s": self.window_s,
                "n_buckets": self._ring.n_buckets,
                "buckets": {str(i): s[0] for i, s in live},
            }

    def merge_state(self, state: dict) -> None:
        """Fold another window's :meth:`state`; buckets align by index."""
        _check_layout(self.name, self, state)
        with self._lock:
            now = self._clock()
            for key, value in state["buckets"].items():
                idx = int(key)
                if self._ring.in_range(idx, now):
                    self._ring.slot_at(idx)[0] += float(value)


class WindowedHistogram:
    """Per-bucket histograms merged on read: windowed quantiles/rates."""

    __slots__ = ("name", "window_s", "edges", "_ring", "_clock", "_lock")

    def __init__(self, name: str, window_s: float = 60.0,
                 n_buckets: int = 6, clock: Clock = system_clock,
                 edges=None):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.name = name
        self.window_s = float(window_s)
        self.edges = edges
        self._clock = clock
        self._ring = _Ring(n_buckets, self.window_s / n_buckets,
                           lambda: Histogram(name, edges))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            bucket = self._ring.slot(self._clock())
        bucket.observe(value)

    def observe_many(self, values) -> None:
        with self._lock:
            bucket = self._ring.slot(self._clock())
        bucket.observe_many(values)

    # -- read side ----------------------------------------------------------- #

    def merged(self) -> Histogram:
        """One histogram combining every live bucket (a point-in-time copy)."""
        out = Histogram(self.name, self.edges)
        with self._lock:
            live = self._ring.live(self._clock())
            states = [bucket.state() for _, bucket in live]
        for state in states:
            out.merge_state(state)
        return out

    @property
    def count(self) -> int:
        return self.merged().count

    def quantile(self, q: float) -> float:
        return self.merged().quantile(q)

    def rate_per_s(self) -> float:
        return self.merged().count / self.window_s

    def snapshot(self) -> dict:
        """The cumulative histogram snapshot plus window context."""
        merged = self.merged()
        out = merged.snapshot()
        out["window_s"] = self.window_s
        out["rate_per_s"] = round(out["count"] / self.window_s, 6)
        return out

    # -- merging ------------------------------------------------------------- #

    def state(self) -> dict:
        with self._lock:
            live = self._ring.live(self._clock())
            return {
                "window_s": self.window_s,
                "n_buckets": self._ring.n_buckets,
                "buckets": {str(i): b.state() for i, b in live},
            }

    def merge_state(self, state: dict) -> None:
        _check_layout(self.name, self, state)
        with self._lock:
            now = self._clock()
            targets = [
                (self._ring.slot_at(int(key)), bucket_state)
                for key, bucket_state in state["buckets"].items()
                if self._ring.in_range(int(key), now)
            ]
        for bucket, bucket_state in targets:
            bucket.merge_state(bucket_state)


def _check_layout(name: str, metric, state: dict) -> None:
    if (float(state["window_s"]) != metric.window_s
            or int(state["n_buckets"]) != metric._ring.n_buckets):
        raise ValueError(
            f"cannot merge windowed metric {name!r}: window layout differs "
            f"({state['window_s']}s/{state['n_buckets']} vs "
            f"{metric.window_s}s/{metric._ring.n_buckets})"
        )


class WindowedRegistry:
    """Get-or-create store of windowed metrics sharing one clock/layout.

    The windowed sibling of :class:`repro.obs.metrics.MetricsRegistry`:
    same get-or-create discipline, same kind-conflict ``TypeError``,
    same ``dump()``/``merge()`` shape for folding worker registries.
    """

    def __init__(self, window_s: float = 60.0, n_buckets: int = 6,
                 clock: Clock = system_clock):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self.clock = clock
        self._lock = threading.RLock()
        self._metrics: dict[str, WindowedCounter | WindowedHistogram] = {}

    def _get(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"windowed metric {name!r} is already registered as a "
                    f"{type(metric).__name__}, not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> WindowedCounter:
        return self._get(
            name, WindowedCounter,
            lambda: WindowedCounter(name, self.window_s, self.n_buckets,
                                    self.clock),
        )

    def histogram(self, name: str, edges=None) -> WindowedHistogram:
        return self._get(
            name, WindowedHistogram,
            lambda: WindowedHistogram(name, self.window_s, self.n_buckets,
                                      self.clock, edges=edges),
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """JSON-safe ``{"window_s", "counters", "histograms"}``."""
        with self._lock:
            items = sorted(self._metrics.items())
        counters: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, WindowedCounter):
                counters[name] = {
                    "total": metric.total(),
                    "rate_per_s": round(metric.rate_per_s(), 6),
                }
            else:
                histograms[name] = metric.snapshot()
        return {"window_s": self.window_s, "counters": counters,
                "histograms": histograms}

    def dump(self) -> dict:
        """Lossless state for cross-process merging (cf. registry.dump)."""
        with self._lock:
            items = sorted(self._metrics.items())
        counters: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for name, metric in items:
            if isinstance(metric, WindowedCounter):
                counters[name] = metric.state()
            else:
                histograms[name] = metric.state()
        return {"counters": counters, "histograms": histograms}

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` from another windowed registry into this
        one; buckets align by absolute index, so only entries still
        inside this registry's live window contribute."""
        for name, state in dump.get("counters", {}).items():
            self.counter(name).merge_state(state)
        for name, state in dump.get("histograms", {}).items():
            edges = None
            buckets = state.get("buckets", {})
            if buckets:
                first = next(iter(buckets.values()))
                edges = first.get("edges")
            self.histogram(name, edges=edges).merge_state(state)
