"""The telemetry plane: windows + SLOs + drift + events, one object.

:class:`TelemetryPlane` is what a serving loop actually holds: a fast
and a slow :class:`~repro.obs.telemetry.window.WindowedRegistry` fed by
the same ``observe``/``inc`` calls, an
:class:`~repro.obs.telemetry.slo.SLOMonitor` over declarative SLOs, an
optional :class:`~repro.obs.telemetry.drift.DriftMonitor` seeded from a
model's frozen baseline, and an
:class:`~repro.obs.telemetry.export.EventLog` that both monitors emit
structured events into.

``maybe_evaluate()`` rate-limits monitor evaluation to once per fast
bucket (by the injected clock); ``evaluate()`` forces one -- the serve
loop calls the former per flush and the latter once at the end, so the
final SLO/drift verdict always reflects the whole run.
"""

from __future__ import annotations

from repro.obs.telemetry.clock import Clock, system_clock
from repro.obs.telemetry.drift import DriftBaseline, DriftMonitor
from repro.obs.telemetry.export import EventLog, to_prometheus
from repro.obs.telemetry.slo import AvailabilitySLO, SLOMonitor
from repro.obs.telemetry.window import WindowedRegistry

__all__ = ["TelemetryPlane"]


class TelemetryPlane:
    """Windowed metrics, SLO monitors and drift detection behind one API."""

    def __init__(
        self,
        *,
        window_s: float = 60.0,
        slow_window_s: float = 600.0,
        n_buckets: int = 6,
        clock: Clock = system_clock,
        slos=(),
        baseline: DriftBaseline | None = None,
        drift_z_threshold: float = 6.0,
        drift_shift_threshold: float = 0.5,
        drift_min_count: int = 30,
        event_stream=None,
        eval_interval_s: float | None = None,
    ):
        if slow_window_s < window_s:
            raise ValueError("slow_window_s must be >= window_s")
        self.clock = clock
        self.fast = WindowedRegistry(window_s, n_buckets, clock)
        self.slow = WindowedRegistry(slow_window_s, n_buckets, clock)
        self.events = EventLog(event_stream, clock=clock)
        self.slos = list(slos)
        self.monitor = SLOMonitor(self.slos, self.fast, self.slow,
                                  event_log=self.events)
        self._drift_thresholds = (drift_z_threshold, drift_shift_threshold,
                                  drift_min_count)
        self.drift: DriftMonitor | None = None
        if baseline is not None:
            self.rebind_baseline(baseline)
        #: Cumulative per-counter totals since construction -- the whole
        #: run's error budget is judged on these, not on a window.
        self.totals: dict[str, float] = {}
        self.eval_interval_s = (
            eval_interval_s if eval_interval_s is not None
            else self.fast.window_s / self.fast.n_buckets
        )
        self._last_eval = float("-inf")
        self._last_result: dict | None = None

    # -- recording ----------------------------------------------------------- #

    def observe(self, name: str, value: float) -> None:
        """One histogram observation into both window horizons."""
        self.fast.histogram(name).observe(value)
        self.slow.histogram(name).observe(value)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """One counter increment into both horizons plus the run total."""
        self.fast.counter(name).inc(amount)
        self.slow.counter(name).inc(amount)
        self.totals[name] = self.totals.get(name, 0.0) + amount

    def observe_drift(self, value: float) -> None:
        """Feed the drift monitor (no-op without a baseline)."""
        if self.drift is not None:
            self.drift.observe(value)

    def rebind_baseline(self, baseline: DriftBaseline | None) -> None:
        """Swap the drift monitor's frozen baseline (model rollout).

        A promoted candidate carries its *own* training-time baseline;
        monitoring the new model against the old model's statistics
        would re-detect the drift the refit just absorbed.  The live
        window keeps its recent observations -- they age out on the
        window horizon.  ``None`` disables drift monitoring.
        """
        if baseline is None:
            self.drift = None
            return
        z, shift, min_count = self._drift_thresholds
        self.drift = DriftMonitor(
            baseline,
            self.fast.histogram(f"drift.{baseline.stat}"),
            z_threshold=z,
            shift_threshold=shift,
            min_count=min_count,
            event_log=self.events,
        )

    # -- evaluation ---------------------------------------------------------- #

    def budget_burned(self) -> bool:
        """Whether any availability SLO's *whole-run* budget is spent.

        Judged on cumulative totals: a run whose overall failure ratio
        exceeds ``1 - target`` has no error budget left, regardless of
        what the current window looks like.
        """
        for slo in self.slos:
            if not isinstance(slo, AvailabilitySLO):
                continue
            good = self.totals.get(slo.good, 0.0)
            bad = self.totals.get(slo.bad, 0.0)
            n = good + bad
            if n > 0 and (bad / n) > slo.budget:
                return True
        return False

    def evaluate(self) -> dict:
        """Run every monitor now; returns the JSON-safe combined verdict."""
        self._last_eval = self.clock()
        result = {
            "slos": [s.to_dict() for s in self.monitor.evaluate()],
            "drift": (self.drift.evaluate().to_dict()
                      if self.drift is not None else None),
            "budget_burned": self.budget_burned(),
        }
        self._last_result = result
        return result

    def maybe_evaluate(self) -> dict | None:
        """Evaluate at most once per fast bucket; None when rate-limited."""
        if self.clock() - self._last_eval < self.eval_interval_s:
            return None
        return self.evaluate()

    # -- export -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """JSON-safe view: windows, last verdict, totals, event count."""
        return {
            "window": self.fast.snapshot(),
            "slow_window": self.slow.snapshot(),
            "last_evaluation": self._last_result,
            "totals": dict(self.totals),
            "events_total": len(self.events),
        }

    def to_prometheus(self, prefix: str = "repro_window_") -> str:
        """The fast window in Prometheus text format.

        Windowed counters export as gauges (a windowed total is not
        monotonic); histograms as summaries.
        """
        snap = self.fast.snapshot()
        flat = {
            "counters": {},
            "gauges": {
                f"{name}.window_total": c["total"]
                for name, c in snap["counters"].items()
            },
            "histograms": snap["histograms"],
        }
        return to_prometheus(flat, prefix)
