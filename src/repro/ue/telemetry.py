"""Per-second telemetry records: the fields of Table 1.

One :class:`TelemetryRecord` is what the paper's monitoring app logs every
second: raw Android-API values (GPS fix with accuracy, detected activity,
speed, compass direction) plus post-processed values (throughput from
iPerf, radio type and cell ID parsed from ServiceState, signal strengths,
handoff flags, and the tower-geometry fields computed against the panel
survey).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TelemetryRecord:
    """One row of the raw measurement log (Table 1 schema)."""

    # --- identity / time ---------------------------------------------------
    run_id: int
    timestamp_s: int
    area: str
    trajectory: str
    mobility_mode: str  # "walking" | "driving" | "stationary"

    # --- raw Android-API values --------------------------------------------
    latitude: float
    longitude: float
    gps_accuracy_m: float
    detected_activity: str
    moving_speed_mps: float
    compass_direction_deg: float
    compass_accuracy_deg: float

    # --- post-processed / other sources -------------------------------------
    throughput_mbps: float
    radio_type: str  # "5G" | "4G"
    cell_id: int  # serving panel id (or LTE macro id when on 4G)
    nr_ss_rsrp: float
    nr_ss_rsrq: float
    nr_ss_rssi: float
    lte_rsrp: float
    lte_rsrq: float
    lte_rssi: float
    horizontal_handoff: int  # 1 if a panel switch happened this second
    vertical_handoff: int  # 1 if a 4G<->5G switch happened this second

    # --- tower geometry (requires the panel survey; NaN for Loop) -----------
    ue_panel_distance_m: float
    positional_angle_deg: float
    mobility_angle_deg: float

    # --- carrier-side oracle (Appendix A.1.4): number of UEs sharing the
    # serving panel's airtime this second.  Not observable from the UE; the
    # paper suggests carriers could expose it as an extra feature group. ----
    carrier_load_ues: float = 1.0

    # --- ground-truth fields kept for simulator validation only; the ML
    # pipeline never reads them (the paper has no access to them either) ----
    true_x_m: float = float("nan")
    true_y_m: float = float("nan")
    true_heading_deg: float = float("nan")
    true_speed_mps: float = float("nan")

    @classmethod
    def field_names(cls) -> list[str]:
        return [f.name for f in fields(cls)]

    def as_tuple(self) -> tuple:
        return tuple(getattr(self, f.name) for f in fields(self))


#: Mobility-mode labels used throughout the dataset.
MODE_WALKING = "walking"
MODE_DRIVING = "driving"
MODE_STATIONARY = "stationary"
