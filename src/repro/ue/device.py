"""UE device and its imperfect sensors.

The paper stresses that GPS coordinates, compass direction and moving speed
"reported by Android APIs are often inaccurate enough especially when fine
granularity matters" -- their cleaning pipeline exists precisely to cope
with that.  We therefore model the sensors with realistic error processes
so the cleaning stage has real work to do:

* GPS position error is a slowly-varying correlated offset (multipath bias)
  plus white jitter; the device also reports an *estimated accuracy* that
  correlates with, but does not equal, the true error.
* Compass bearing has Gaussian error, occasionally large until the
  magnetometer calibrates (the paper adds a "buffer period" for this).
* Speed is GPS-Doppler derived: small noise, floored at zero.
* Detected activity mirrors Google's Activity Recognition, with occasional
  misclassification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo.geometry import normalize_bearing


@dataclass
class GpsSensor:
    """Correlated-bias GPS model with self-reported accuracy."""

    jitter_m: float = 1.2
    bias_sigma_m: float = 2.2
    bias_correlation: float = 0.96
    degraded_probability: float = 0.04  # urban-canyon / indoor glitches
    degraded_extra_m: float = 9.0
    _bias: tuple[float, float] = field(default=(0.0, 0.0), repr=False)

    def reset(self, rng: np.random.Generator) -> None:
        self._bias = (float(rng.normal(0.0, self.bias_sigma_m)),
                      float(rng.normal(0.0, self.bias_sigma_m)))

    def read(
        self, true_xy: tuple[float, float], rng: np.random.Generator
    ) -> tuple[tuple[float, float], float]:
        """Return (measured_xy, reported_accuracy_m)."""
        innovation_sigma = self.bias_sigma_m * math.sqrt(
            1.0 - self.bias_correlation**2
        )
        self._bias = (
            self.bias_correlation * self._bias[0]
            + float(rng.normal(0.0, innovation_sigma)),
            self.bias_correlation * self._bias[1]
            + float(rng.normal(0.0, innovation_sigma)),
        )
        extra = 0.0
        if rng.random() < self.degraded_probability:
            extra = float(rng.exponential(self.degraded_extra_m))
        ex = self._bias[0] + float(rng.normal(0.0, self.jitter_m)) + extra * (
            1.0 if rng.random() < 0.5 else -1.0
        )
        ey = self._bias[1] + float(rng.normal(0.0, self.jitter_m))
        measured = (true_xy[0] + ex, true_xy[1] + ey)
        true_err = math.hypot(ex, ey)
        # Reported accuracy tracks the truth within ~30% multiplicative noise.
        accuracy = max(1.0, true_err * float(rng.lognormal(0.0, 0.3)))
        return measured, accuracy


@dataclass
class CompassSensor:
    """Azimuth bearing with calibration transient and Gaussian error."""

    sigma_deg: float = 6.0
    calibration_steps: int = 10
    uncalibrated_sigma_deg: float = 40.0
    _steps: int = field(default=0, repr=False)

    def reset(self) -> None:
        self._steps = 0

    def read(
        self, true_heading_deg: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Return (measured_heading_deg, reported_accuracy_deg)."""
        self._steps += 1
        sigma = (self.uncalibrated_sigma_deg
                 if self._steps <= self.calibration_steps else self.sigma_deg)
        measured = normalize_bearing(
            true_heading_deg + float(rng.normal(0.0, sigma))
        )
        return measured, sigma


@dataclass
class SpeedSensor:
    """GPS-Doppler speed: unbiased, small noise, floored at zero."""

    sigma_mps: float = 0.15

    def read(self, true_speed_mps: float, rng: np.random.Generator) -> float:
        return max(0.0, true_speed_mps + float(rng.normal(0.0, self.sigma_mps)))


@dataclass
class ActivityRecognizer:
    """Google Activity Recognition lookalike with rare misclassification."""

    error_probability: float = 0.03
    labels = ("STILL", "WALKING", "IN_VEHICLE")

    def read(self, true_activity: str, rng: np.random.Generator) -> str:
        if rng.random() >= self.error_probability:
            return true_activity
        others = [label for label in self.labels if label != true_activity]
        return others[int(rng.integers(len(others)))]


@dataclass
class UserEquipment:
    """A 5G smartphone: sensor bundle + identity.

    The study used 4x Samsung Galaxy S10 5G; ``model`` is recorded so a
    future "static features" group could consume it (Sec. 8.1).
    """

    ue_id: str = "UE1"
    model: str = "SM-G977U"
    gps: GpsSensor = field(default_factory=GpsSensor)
    compass: CompassSensor = field(default_factory=CompassSensor)
    speedometer: SpeedSensor = field(default_factory=SpeedSensor)
    activity: ActivityRecognizer = field(default_factory=ActivityRecognizer)

    def reset(self, rng: np.random.Generator) -> None:
        self.gps.reset(rng)
        self.compass.reset()
