"""UE substrate: device sensors and per-second telemetry records."""

from repro.ue.device import (
    ActivityRecognizer,
    CompassSensor,
    GpsSensor,
    SpeedSensor,
    UserEquipment,
)
from repro.ue.telemetry import (
    MODE_DRIVING,
    MODE_STATIONARY,
    MODE_WALKING,
    TelemetryRecord,
)

__all__ = [
    "ActivityRecognizer",
    "CompassSensor",
    "GpsSensor",
    "MODE_DRIVING",
    "MODE_STATIONARY",
    "MODE_WALKING",
    "SpeedSensor",
    "TelemetryRecord",
    "UserEquipment",
]
