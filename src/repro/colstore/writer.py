"""``ShardWriter`` -- append column batches, get an atomic chunked store.

The writer owns three invariants:

* **Deterministic chunking** -- chunk boundaries fall every
  ``chunk_rows`` rows of the logical stream, regardless of how callers
  batch their :meth:`ShardWriter.append` calls.  Appending the same
  rows in different batch sizes yields byte-identical shards and the
  same manifest digest.
* **Atomic shards** -- every ``.npy`` goes through temp + flush +
  fsync + ``os.replace`` (the :class:`repro.par.NpzCache` discipline),
  and the manifest -- the commit record -- is written only by
  :meth:`finalize`.  A writer killed mid-stream leaves either the
  previous store or orphan chunk files a future writer overwrites;
  never a readable-but-torn dataset.
* **Schema stability** -- the first append fixes column names, order
  and dtype kinds; later batches must match (string widths may vary,
  value kinds may not).

Object-dtype columns (Python strings) are converted to fixed-width
``<U`` arrays on write so every shard is a plain, memory-mappable
buffer.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import shutil
import time
from collections.abc import Mapping

import numpy as np

from repro import obs
from repro.colstore.manifest import (
    COLSTORE_VERSION,
    MANIFEST_NAME,
    ChunkMeta,
    Manifest,
    chunk_dirname,
)

__all__ = ["DEFAULT_CHUNK_ROWS", "ShardWriter"]

#: Rows per chunk.  262144 raw telemetry rows are ~50 MiB across the
#: full 29-column schema -- big enough to amortize per-chunk overhead,
#: small enough that a handful of chunk working sets fit in laptop RAM.
DEFAULT_CHUNK_ROWS = 262_144


def _normalize_column(name: str, arr) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValueError(f"column {name!r} must be 1-D, got shape {arr.shape}")
    if arr.dtype == object:
        # Fixed-width unicode is mmappable; object buffers are pointers.
        arr = arr.astype(str)
    return arr


def _dtype_kind(arr: np.ndarray) -> str:
    return arr.dtype.kind


class ShardWriter:
    """Stream column batches into a fresh chunked store directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        meta: dict | None = None,
    ):
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.root = pathlib.Path(root)
        self.chunk_rows = int(chunk_rows)
        self.meta = dict(meta or {})
        self._schema: list[tuple[str, str]] | None = None
        #: Per-column list of pending (not yet flushed) batch arrays.
        self._buffers: dict[str, list[np.ndarray]] = {}
        self._buffered_rows = 0
        self._chunks: list[ChunkMeta] = []
        self._finalized = False
        self._t0 = time.perf_counter()
        self._reset_dir()

    # -- lifecycle ----------------------------------------------------------- #

    def _reset_dir(self) -> None:
        """Make the directory ours: drop any previous manifest + chunks.

        Removing the manifest *first* un-commits the old store before
        any shard is disturbed, so a crash mid-reset cannot leave a
        manifest pointing at deleted shards.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / MANIFEST_NAME).unlink(missing_ok=True)
        for p in self.root.glob("chunk-*"):
            if p.is_dir():
                shutil.rmtree(p)

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()

    # -- appending ----------------------------------------------------------- #

    def _fix_schema(self, columns: dict[str, np.ndarray]) -> None:
        self._schema = [(n, _dtype_kind(a)) for n, a in columns.items()]
        self._buffers = {n: [] for n in columns}

    def _check_schema(self, columns: dict[str, np.ndarray]) -> None:
        expected = self._schema
        got = [(n, _dtype_kind(a)) for n, a in columns.items()]
        if got != expected:
            raise ValueError(
                f"append schema mismatch: store has {expected}, "
                f"batch has {got}"
            )

    def append(self, columns: Mapping[str, np.ndarray] | "object") -> None:
        """Append one batch of rows (a ``{name: array}`` mapping or Table)."""
        if self._finalized:
            raise RuntimeError("writer is finalized")
        if not isinstance(columns, Mapping):
            # Duck-typed Table: iterate its columns in declared order.
            columns = {n: columns[n] for n in columns.column_names}
        batch = {n: _normalize_column(n, a) for n, a in columns.items()}
        lengths = {len(a) for a in batch.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged batch: column lengths {sorted(lengths)}")
        if self._schema is None:
            self._fix_schema(batch)
        else:
            self._check_schema(batch)
        rows = lengths.pop() if lengths else 0
        if rows == 0:
            return
        for n, a in batch.items():
            self._buffers[n].append(a)
        self._buffered_rows += rows
        while self._buffered_rows >= self.chunk_rows:
            self._flush_chunk(self.chunk_rows)

    # -- flushing ------------------------------------------------------------ #

    def _take_rows(self, name: str, rows: int) -> np.ndarray:
        """Pop exactly ``rows`` leading rows from one column's buffer."""
        parts: list[np.ndarray] = []
        need = rows
        buf = self._buffers[name]
        while need > 0:
            head = buf[0]
            if len(head) <= need:
                parts.append(buf.pop(0))
                need -= len(head)
            else:
                parts.append(head[:need])
                buf[0] = head[need:]
                need = 0
        if len(parts) == 1:
            return np.ascontiguousarray(parts[0])
        # Bounded concat: at most one chunk's rows, never the dataset.
        return np.concatenate(parts)

    def _write_shard(self, path: pathlib.Path, arr: np.ndarray
                     ) -> tuple[str, int]:
        """Atomically persist one column shard; returns (sha256, nbytes)."""
        arr = np.ascontiguousarray(arr)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as f:
                np.save(f, arr)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return digest, int(arr.nbytes)

    def _flush_chunk(self, rows: int) -> None:
        t0 = time.perf_counter()
        index = len(self._chunks)
        cdir = self.root / chunk_dirname(index)
        cdir.mkdir(parents=True, exist_ok=True)
        files: dict[str, str] = {}
        dtypes: dict[str, str] = {}
        shas: dict[str, str] = {}
        nbytes: dict[str, int] = {}
        total_bytes = 0
        for name, _kind in self._schema:
            arr = self._take_rows(name, rows)
            rel = f"{chunk_dirname(index)}/{name}.npy"
            sha, nb = self._write_shard(self.root / rel, arr)
            files[name] = rel
            dtypes[name] = str(arr.dtype)
            shas[name] = sha
            nbytes[name] = nb
            total_bytes += nb
        self._chunks.append(ChunkMeta(
            index=index, rows=rows, files=files, dtypes=dtypes,
            sha256=shas, nbytes=nbytes,
        ))
        self._buffered_rows -= rows
        obs.inc("colstore.chunks_written_total")
        obs.inc("colstore.rows_written_total", rows)
        obs.inc("colstore.bytes_written_total", total_bytes)
        obs.observe("colstore.chunk_write_s", time.perf_counter() - t0)

    # -- commit -------------------------------------------------------------- #

    @property
    def rows_written(self) -> int:
        return sum(c.rows for c in self._chunks) + self._buffered_rows

    def finalize(self) -> Manifest:
        """Flush the tail chunk and commit the manifest; returns it."""
        if self._finalized:
            raise RuntimeError("writer is already finalized")
        if self._schema is None:
            self._fix_schema({})
        if self._buffered_rows > 0:
            self._flush_chunk(self._buffered_rows)
        manifest = Manifest(
            schema=list(self._schema),
            chunks=list(self._chunks),
            chunk_rows=self.chunk_rows,
            writer_version=COLSTORE_VERSION,
            meta=self.meta,
        )
        manifest.save(self.root)
        self._finalized = True
        elapsed = time.perf_counter() - self._t0
        if elapsed > 0:
            obs.set_gauge("colstore.write_rows_per_s",
                          round(manifest.total_rows / elapsed, 1))
        obs.get_logger("colstore").info(
            "store finalized", root=str(self.root),
            rows=manifest.total_rows, chunks=len(manifest.chunks),
        )
        return manifest
