"""End-to-end out-of-core training: store -> clean -> features -> model.

This module is the glue that strings the streaming pieces into one
bounded-memory pipeline (docs/colstore.md):

1. a raw campaign store (``run_campaign(store_dir=...)``),
2. :func:`repro.datasets.cleaning.clean_stream` -- run-at-a-time GPS
   filter / buffer trim / pixelization into a cleaned store,
3. :meth:`repro.fstore.offline.OfflineMaterializer.materialize_store`
   -- shard-by-shard feature-view execution into a feature store whose
   chunk boundaries mirror the cleaned store,
4. :meth:`repro.ml.tree.FeatureBinner.fit_stream` -- quantile-sketch
   bin edges from one pass over the feature chunks,
5. ``fit_binned_stream`` on the GBDT / random-forest families, which
   consume re-iterable ``(binned, y)`` chunk pairs and keep only O(rows)
   driver state.

Every intermediate store is content-addressed, so re-running
:func:`train_from_store` over the same inputs reuses the cleaned and
materialized stores instead of recomputing them.  Peak memory is a few
chunk working sets plus the per-row driver state -- never the campaign
-- and on paper-scale (single-chunk) data the result is bit-identical
to the in-memory path (``tests/colstore/test_colstore_pipeline.py``).
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs
from repro.colstore.reader import ChunkReader

__all__ = [
    "STREAM_MODELS",
    "bin_store",
    "binned_label_chunks",
    "feature_matrix_chunks",
    "train_from_store",
]

#: Model families with an out-of-core ``fit_binned_stream``.
STREAM_MODELS = ("gdbt", "rf")

#: Label column every training task reads from the cleaned store.
LABEL_COLUMN = "throughput_mbps"


def feature_matrix_chunks(feat_reader: ChunkReader, names=None):
    """Yield one float64 design-matrix chunk per feature-store chunk."""
    cols = list(names) if names is not None else feat_reader.column_names
    for tbl in feat_reader.iter_chunks(cols):
        yield np.column_stack([np.asarray(tbl[n], dtype=float)
                               for n in cols])


def bin_store(feat_reader: ChunkReader, max_bins: int = 256,
              sketch_capacity: int | None = None):
    """Fit a :class:`FeatureBinner` from one pass over a feature store."""
    from repro.ml.tree import FeatureBinner

    binner = FeatureBinner(max_bins, sketch_capacity=sketch_capacity)
    return binner.fit_stream(feature_matrix_chunks(feat_reader))


def binned_label_chunks(feat_reader: ChunkReader, label_reader: ChunkReader,
                        binner, label_of=None):
    """A re-iterable ``(binned, y)`` stream for ``fit_binned_stream``.

    ``feat_reader`` and ``label_reader`` must be chunk-aligned --
    :meth:`materialize_store` guarantees that by mirroring its input's
    boundaries, and the manifests are checked here.  ``label_of`` maps
    the raw label column to training targets (identity by default; the
    classification path turns throughput into class names).
    """
    f_rows = [c.rows for c in feat_reader.manifest.chunks]
    l_rows = [c.rows for c in label_reader.manifest.chunks]
    if f_rows != l_rows:
        raise ValueError(
            f"feature/label stores are not chunk-aligned: {f_rows} vs "
            f"{l_rows}"
        )

    def chunks():
        labels = label_reader.iter_chunks([LABEL_COLUMN])
        for X in feature_matrix_chunks(feat_reader):
            y = np.asarray(next(labels)[LABEL_COLUMN], dtype=float)
            yield binner.transform(X), (label_of(y) if label_of else y)

    return chunks


def _make_stream_model(model: str, task: str, config, seed: int):
    from repro.ml.forest import (
        RandomForestClassifier,
        RandomForestRegressor,
    )
    from repro.ml.gbdt import GBDTClassifier, GBDTRegressor

    if model == "gdbt":
        cls = GBDTRegressor if task == "regression" else GBDTClassifier
        return cls(
            n_estimators=config.gdbt_estimators,
            max_depth=config.gdbt_depth,
            learning_rate=config.gdbt_learning_rate,
            min_samples_leaf=config.gdbt_min_samples_leaf,
            random_state=seed,
        )
    if model == "rf":
        cls = (RandomForestRegressor if task == "regression"
               else RandomForestClassifier)
        return cls(
            n_estimators=config.rf_estimators,
            max_depth=config.rf_depth,
            random_state=seed,
        )
    raise ValueError(
        f"model {model!r} has no streaming fit; choose from {STREAM_MODELS}"
    )


def train_from_store(
    store_dir,
    work_dir,
    *,
    spec: str = "L+M+T+C",
    model: str = "gdbt",
    task: str = "regression",
    config=None,
    seed: int = 2020,
    cleaning=None,
    max_bins: int = 256,
):
    """Train a model from a raw campaign store at bounded memory.

    ``store_dir`` holds the raw telemetry store; intermediates (cleaned
    store, feature store) land under ``work_dir`` and are reused across
    calls via their content-addressed cache keys.  Returns
    ``(fitted_model, info)`` where ``info`` records the cleaning
    report, the view fingerprint, store digests and row counts --
    enough provenance to tie the model back to its exact inputs.
    """
    from repro.core.pipeline import ModelConfig
    from repro.datasets.cleaning import clean_stream
    from repro.fstore.offline import OfflineMaterializer
    from repro.fstore.views import combination_view

    if task not in ("regression", "classification"):
        raise ValueError(f"unknown task {task!r}")
    config = config or ModelConfig()
    raw = ChunkReader(store_dir)
    with obs.span("colstore.train_from_store", rows=len(raw),
                  model=model, task=task, spec=spec):
        cleaned, report = clean_stream(
            raw, os.path.join(str(work_dir), "clean"), cleaning
        )
        if len(cleaned) == 0:
            raise ValueError("cleaning dropped every row; nothing to train")
        view = combination_view(
            spec, past_throughput_lags=config.past_throughput_lags
        )
        feats = OfflineMaterializer(view).materialize_store(
            cleaned, os.path.join(str(work_dir), "features")
        )
        binner = bin_store(feats, max_bins=max_bins)
        label_of = None
        if task == "classification":
            from repro.core.labels import DEFAULT_CLASSES

            label_of = DEFAULT_CLASSES.classify
        chunks = binned_label_chunks(feats, cleaned, binner,
                                     label_of=label_of)
        estimator = _make_stream_model(model, task, config, seed)
        estimator.fit_binned_stream(chunks, binner)
    info = {
        "raw_rows": len(raw),
        "train_rows": len(cleaned),
        "n_chunks": cleaned.n_chunks,
        "cleaning_report": report,
        "view": view.name,
        "view_fingerprint": view.fingerprint(),
        "raw_digest": raw.manifest.digest(),
        "features_digest": feats.manifest.digest(),
        "fit_telemetry": estimator.fit_telemetry_,
    }
    obs.inc("colstore.models_trained_total")
    return estimator, info
