"""End-to-end out-of-core training: store -> clean -> features -> model.

This module is the glue that strings the streaming pieces into one
bounded-memory pipeline (docs/colstore.md):

1. a raw campaign store (``run_campaign(store_dir=...)``),
2. :func:`repro.datasets.cleaning.clean_stream` -- run-at-a-time GPS
   filter / buffer trim / pixelization into a cleaned store,
3. :meth:`repro.fstore.offline.OfflineMaterializer.materialize_store`
   -- shard-by-shard feature-view execution into a feature store whose
   chunk boundaries mirror the cleaned store,
4. :meth:`repro.ml.tree.FeatureBinner.fit_stream` -- quantile-sketch
   bin edges from one pass over the feature chunks,
5. ``fit_binned_stream`` on the GBDT / random-forest families, which
   consume re-iterable ``(binned, y)`` chunk pairs and keep only O(rows)
   driver state.

Every intermediate store is content-addressed, so re-running
:func:`train_from_store` over the same inputs reuses the cleaned and
materialized stores instead of recomputing them.  Peak memory is a few
chunk working sets plus the per-row driver state -- never the campaign
-- and on paper-scale (single-chunk) data the result is bit-identical
to the in-memory path (``tests/colstore/test_colstore_pipeline.py``).
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs
from repro.colstore.reader import ChunkReader

__all__ = [
    "STREAM_MODELS",
    "bin_store",
    "binned_label_chunks",
    "feature_matrix_chunks",
    "refit_from_store",
    "streamed_error",
    "streamed_prediction_baseline",
    "train_from_store",
]

#: Model families with an out-of-core ``fit_binned_stream``.
STREAM_MODELS = ("gdbt", "rf")

#: Label column every training task reads from the cleaned store.
LABEL_COLUMN = "throughput_mbps"


def feature_matrix_chunks(feat_reader: ChunkReader, names=None):
    """Yield one float64 design-matrix chunk per feature-store chunk."""
    cols = list(names) if names is not None else feat_reader.column_names
    for tbl in feat_reader.iter_chunks(cols):
        yield np.column_stack([np.asarray(tbl[n], dtype=float)
                               for n in cols])


def bin_store(feat_reader: ChunkReader, max_bins: int = 256,
              sketch_capacity: int | None = None):
    """Fit a :class:`FeatureBinner` from one pass over a feature store."""
    from repro.ml.tree import FeatureBinner

    binner = FeatureBinner(max_bins, sketch_capacity=sketch_capacity)
    return binner.fit_stream(feature_matrix_chunks(feat_reader))


def binned_label_chunks(feat_reader: ChunkReader, label_reader: ChunkReader,
                        binner, label_of=None):
    """A re-iterable ``(binned, y)`` stream for ``fit_binned_stream``.

    ``feat_reader`` and ``label_reader`` must be chunk-aligned --
    :meth:`materialize_store` guarantees that by mirroring its input's
    boundaries, and the manifests are checked here.  ``label_of`` maps
    the raw label column to training targets (identity by default; the
    classification path turns throughput into class names).
    """
    f_rows = [c.rows for c in feat_reader.manifest.chunks]
    l_rows = [c.rows for c in label_reader.manifest.chunks]
    if f_rows != l_rows:
        raise ValueError(
            f"feature/label stores are not chunk-aligned: {f_rows} vs "
            f"{l_rows}"
        )

    def chunks():
        labels = label_reader.iter_chunks([LABEL_COLUMN])
        for X in feature_matrix_chunks(feat_reader):
            y = np.asarray(next(labels)[LABEL_COLUMN], dtype=float)
            yield binner.transform(X), (label_of(y) if label_of else y)

    return chunks


def streamed_prediction_baseline(estimator, feat_reader: ChunkReader,
                                 stat: str = "prediction"):
    """A :class:`DriftBaseline` over streamed predictions, bounded memory.

    The in-memory path (``Lumos5G.publish``) gathers every training-time
    prediction and calls ``DriftBaseline.from_values``; here predictions
    stream chunk by chunk through a :class:`QuantileSketch` plus moment
    accumulators.  While the sketch has not compacted (its exact
    small-data fast path) the result is bit-identical to the gathered
    computation; past capacity the quantiles are sketch approximations
    and the moments stay exact.  Classifiers summarize their max
    class probability, matching the in-memory publish path.
    """
    import math

    from repro.colstore.sketch import QuantileSketch
    from repro.obs.telemetry import DriftBaseline

    sketch = QuantileSketch()
    total, acc, acc2 = 0, 0.0, 0.0
    is_classifier = hasattr(estimator, "predict_proba")
    for X in feature_matrix_chunks(feat_reader):
        if is_classifier:
            values = np.max(estimator.predict_proba(X), axis=1)
        else:
            values = np.asarray(estimator.predict(X), dtype=float).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            continue
        sketch.add(values)
        total += int(values.size)
        acc += float(values.sum())
        acc2 += float(np.dot(values, values))
    if total == 0:
        raise ValueError("no finite predictions to build a baseline from")
    if sketch.exact:
        return DriftBaseline.from_values(stat, sketch.values())
    mean = acc / total
    var = max(acc2 / total - mean * mean, 0.0)
    q10, q50, q90 = (float(q) for q in sketch.quantiles([0.1, 0.5, 0.9]))
    return DriftBaseline(stat=stat, count=total, mean=mean,
                         std=math.sqrt(var), p10=q10, p50=q50, p90=q90)


def streamed_error(estimator, feat_reader: ChunkReader,
                   label_reader: ChunkReader, task: str = "regression",
                   label_of=None) -> dict:
    """Streamed training-set error: MAE/RMSE or error rate, one pass."""
    abs_acc, sq_acc, wrong, n = 0.0, 0.0, 0, 0
    labels = label_reader.iter_chunks([LABEL_COLUMN])
    for X in feature_matrix_chunks(feat_reader):
        raw = np.asarray(next(labels)[LABEL_COLUMN], dtype=float)
        y = label_of(raw) if label_of else raw
        pred = estimator.predict(X)
        n += len(X)
        if task == "classification":
            wrong += int(np.sum(np.asarray(pred) != np.asarray(y)))
        else:
            err = np.asarray(pred, dtype=float) - np.asarray(y, dtype=float)
            abs_acc += float(np.abs(err).sum())
            sq_acc += float(np.dot(err, err))
    if n == 0:
        raise ValueError("empty store; nothing to evaluate")
    if task == "classification":
        return {"n": n, "error_rate": wrong / n}
    return {"n": n, "mae": abs_acc / n,
            "rmse": float(np.sqrt(sq_acc / n))}


def _make_stream_model(model: str, task: str, config, seed: int):
    from repro.ml.forest import (
        RandomForestClassifier,
        RandomForestRegressor,
    )
    from repro.ml.gbdt import GBDTClassifier, GBDTRegressor

    if model == "gdbt":
        cls = GBDTRegressor if task == "regression" else GBDTClassifier
        return cls(
            n_estimators=config.gdbt_estimators,
            max_depth=config.gdbt_depth,
            learning_rate=config.gdbt_learning_rate,
            min_samples_leaf=config.gdbt_min_samples_leaf,
            random_state=seed,
        )
    if model == "rf":
        cls = (RandomForestRegressor if task == "regression"
               else RandomForestClassifier)
        return cls(
            n_estimators=config.rf_estimators,
            max_depth=config.rf_depth,
            random_state=seed,
        )
    raise ValueError(
        f"model {model!r} has no streaming fit; choose from {STREAM_MODELS}"
    )


def train_from_store(
    store_dir,
    work_dir,
    *,
    spec: str = "L+M+T+C",
    model: str = "gdbt",
    task: str = "regression",
    config=None,
    seed: int = 2020,
    cleaning=None,
    max_bins: int = 256,
):
    """Train a model from a raw campaign store at bounded memory.

    ``store_dir`` holds the raw telemetry store; intermediates (cleaned
    store, feature store) land under ``work_dir`` and are reused across
    calls via their content-addressed cache keys.  Returns
    ``(fitted_model, info)`` where ``info`` records the cleaning
    report, the view fingerprint, store digests and row counts --
    enough provenance to tie the model back to its exact inputs.
    """
    from repro.core.pipeline import ModelConfig
    from repro.datasets.cleaning import clean_stream
    from repro.fstore.offline import OfflineMaterializer
    from repro.fstore.views import combination_view

    if task not in ("regression", "classification"):
        raise ValueError(f"unknown task {task!r}")
    config = config or ModelConfig()
    raw = ChunkReader(store_dir)
    with obs.span("colstore.train_from_store", rows=len(raw),
                  model=model, task=task, spec=spec):
        cleaned, report = clean_stream(
            raw, os.path.join(str(work_dir), "clean"), cleaning
        )
        if len(cleaned) == 0:
            raise ValueError("cleaning dropped every row; nothing to train")
        view = combination_view(
            spec, past_throughput_lags=config.past_throughput_lags
        )
        feats = OfflineMaterializer(view).materialize_store(
            cleaned, os.path.join(str(work_dir), "features")
        )
        binner = bin_store(feats, max_bins=max_bins)
        label_of = None
        if task == "classification":
            from repro.core.labels import DEFAULT_CLASSES

            label_of = DEFAULT_CLASSES.classify
        chunks = binned_label_chunks(feats, cleaned, binner,
                                     label_of=label_of)
        estimator = _make_stream_model(model, task, config, seed)
        estimator.fit_binned_stream(chunks, binner)
        # Store-trained models are drift-monitorable exactly like
        # Lumos5G.publish() output: the training-time prediction
        # baseline rides along (streamed -- the predictions are never
        # gathered) and round-trips through ml.serialize.
        baseline = streamed_prediction_baseline(estimator, feats)
        estimator.drift_baseline_ = baseline.to_dict()
    info = {
        "raw_rows": len(raw),
        "train_rows": len(cleaned),
        "n_chunks": cleaned.n_chunks,
        "cleaning_report": report,
        "view": view.name,
        "view_fingerprint": view.fingerprint(),
        "raw_digest": raw.manifest.digest(),
        "features_digest": feats.manifest.digest(),
        "fit_telemetry": estimator.fit_telemetry_,
        "drift_baseline": estimator.drift_baseline_,
    }
    obs.inc("colstore.models_trained_total")
    return estimator, info


def refit_from_store(
    estimator,
    store_dir,
    work_dir,
    *,
    n_rounds: int,
    spec: str = "L+M+T+C",
    task: str = "regression",
    config=None,
    cleaning=None,
):
    """Warm-start an already-fitted stream model on a fresh campaign store.

    The continuous-learning refit path (docs/continuous_learning.md):
    same clean -> materialize plumbing as :func:`train_from_store`, but
    the feature chunks are binned with the estimator's *own frozen
    binner* and appended via ``fit_more_binned_stream``, so the refit
    consumes the drifted store one chunk at a time -- the fresh data
    never fully materializes.  Attaches a fresh streamed drift baseline
    (the candidate must be monitored against its own training-time
    statistics, not its ancestor's) and returns ``(estimator, info)``
    where ``info["train_error"]`` carries the streamed post-refit error
    the rollout controller's escalation decision reads.
    """
    from repro.core.pipeline import ModelConfig
    from repro.datasets.cleaning import clean_stream
    from repro.fstore.offline import OfflineMaterializer
    from repro.fstore.views import combination_view

    if task not in ("regression", "classification"):
        raise ValueError(f"unknown task {task!r}")
    if getattr(estimator, "_binner", None) is None:
        raise ValueError("estimator must be fitted before refit_from_store")
    config = config or ModelConfig()
    raw = ChunkReader(store_dir)
    with obs.span("colstore.refit_from_store", rows=len(raw),
                  task=task, spec=spec, n_rounds=int(n_rounds)):
        cleaned, report = clean_stream(
            raw, os.path.join(str(work_dir), "clean"), cleaning
        )
        if len(cleaned) == 0:
            raise ValueError("cleaning dropped every row; nothing to refit")
        view = combination_view(
            spec, past_throughput_lags=config.past_throughput_lags
        )
        feats = OfflineMaterializer(view).materialize_store(
            cleaned, os.path.join(str(work_dir), "features")
        )
        label_of = None
        if task == "classification":
            from repro.core.labels import DEFAULT_CLASSES

            label_of = DEFAULT_CLASSES.classify
        chunks = binned_label_chunks(feats, cleaned, estimator._binner,
                                     label_of=label_of)
        estimator.fit_more_binned_stream(n_rounds, chunks)
        baseline = streamed_prediction_baseline(estimator, feats)
        estimator.drift_baseline_ = baseline.to_dict()
        train_error = streamed_error(estimator, feats, cleaned, task,
                                     label_of=label_of)
    info = {
        "refit_rows": len(cleaned),
        "n_chunks": cleaned.n_chunks,
        "cleaning_report": report,
        "view": view.name,
        "view_fingerprint": view.fingerprint(),
        "raw_digest": raw.manifest.digest(),
        "features_digest": feats.manifest.digest(),
        "fit_telemetry": estimator.fit_telemetry_,
        "drift_baseline": estimator.drift_baseline_,
        "train_error": train_error,
        "n_rounds": int(n_rounds),
    }
    obs.inc("colstore.models_refitted_total")
    return estimator, info
