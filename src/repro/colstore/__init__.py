"""``repro.colstore`` -- chunked, memory-mapped columnar storage.

The out-of-core backbone of the training pipeline (docs/colstore.md):

* :class:`ShardWriter` -- append column batches, get atomically
  committed ``.npy`` shards with deterministic chunk boundaries and a
  JSON manifest (schema, dtypes, per-shard SHA-256, writer version);
* :class:`ChunkReader` -- stream the store back as per-chunk
  memory-mapped ``Table`` views, so a 10M-row campaign never has to fit
  in RAM;
* :class:`Manifest` -- the commit record; its :meth:`Manifest.digest`
  content-addresses the whole dataset for downstream caches;
* :class:`QuantileSketch` -- deterministic streaming quantiles with an
  exact small-data fast path (what ``FeatureBinner.fit_stream`` builds
  its bin edges from).

End-to-end streaming glue (campaign -> clean -> features -> binned ->
GBDT, all at bounded memory) lives in :mod:`repro.colstore.pipeline`,
imported explicitly so this package root stays dependency-light.
"""

from repro.colstore.manifest import COLSTORE_VERSION, ChunkMeta, Manifest
from repro.colstore.reader import ChunkReader
from repro.colstore.sketch import DEFAULT_CAPACITY, QuantileSketch
from repro.colstore.writer import DEFAULT_CHUNK_ROWS, ShardWriter

__all__ = [
    "COLSTORE_VERSION",
    "ChunkMeta",
    "ChunkReader",
    "DEFAULT_CAPACITY",
    "DEFAULT_CHUNK_ROWS",
    "Manifest",
    "QuantileSketch",
    "ShardWriter",
]
