"""The colstore manifest: one JSON file naming every committed shard.

A store directory looks like::

    store/
      manifest.json           <- the commit record (written last, atomically)
      chunk-000000/
        run_id.npy            <- one plain .npy per column per chunk
        throughput_mbps.npy
        ...
      chunk-000001/
        ...

The manifest is the *only* source of truth about what the store
contains: shard files not listed in it do not exist as far as readers
are concerned (a crashed writer leaves at most orphan chunk files, never
a torn dataset).  Every shard carries a SHA-256 content fingerprint so
``ChunkReader.validate()`` can prove integrity, and the manifest digest
(:meth:`Manifest.digest`) gives downstream caches -- e.g. the feature
store's shard-by-shard materializer -- a content address for the whole
dataset without re-hashing the data.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.par.cache import fingerprint

__all__ = ["COLSTORE_VERSION", "MANIFEST_NAME", "ChunkMeta", "Manifest"]

#: Bumped on any change to the on-disk layout or manifest schema; a
#: reader refuses manifests written by a different major version.
COLSTORE_VERSION = 1

MANIFEST_NAME = "manifest.json"


def chunk_dirname(index: int) -> str:
    """Directory name of chunk ``index`` (fixed width keeps sorts sane)."""
    return f"chunk-{index:06d}"


@dataclass(frozen=True)
class ChunkMeta:
    """One committed chunk: row count plus per-column shard records."""

    index: int
    rows: int
    #: column -> path of its shard, relative to the store root.
    files: dict[str, str]
    #: column -> exact dtype of this chunk's shard (string widths may
    #: vary chunk to chunk; the schema pins only the dtype kind).
    dtypes: dict[str, str]
    #: column -> SHA-256 of the shard's array buffer.
    sha256: dict[str, str]
    #: column -> logical array bytes (``arr.nbytes``).
    nbytes: dict[str, int]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "rows": self.rows,
            "files": dict(self.files),
            "dtypes": dict(self.dtypes),
            "sha256": dict(self.sha256),
            "nbytes": dict(self.nbytes),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChunkMeta":
        return cls(
            index=int(data["index"]),
            rows=int(data["rows"]),
            files=dict(data["files"]),
            dtypes=dict(data["dtypes"]),
            sha256=dict(data["sha256"]),
            nbytes={k: int(v) for k, v in data["nbytes"].items()},
        )


@dataclass
class Manifest:
    """Schema + committed chunk list of one store."""

    #: Column order and dtype *kind* ("i", "f", "U", "b") per column --
    #: the invariant part of the schema across chunks.
    schema: list[tuple[str, str]]
    chunks: list[ChunkMeta] = field(default_factory=list)
    #: Rows per full chunk the writer was configured with (the last
    #: chunk may be shorter).  Recorded so readers/benchmarks can reason
    #: about the working-set a single chunk implies.
    chunk_rows: int = 0
    writer_version: int = COLSTORE_VERSION
    #: Free-form user metadata (campaign fingerprint, view fingerprint,
    #: cache keys ...); round-tripped verbatim.
    meta: dict = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return sum(c.rows for c in self.chunks)

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self.schema]

    def to_json(self) -> dict:
        return {
            "colstore_version": self.writer_version,
            "schema": [[n, k] for n, k in self.schema],
            "chunk_rows": self.chunk_rows,
            "total_rows": self.total_rows,
            "meta": self.meta,
            "chunks": [c.to_json() for c in self.chunks],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        version = int(data.get("colstore_version", -1))
        if version != COLSTORE_VERSION:
            raise ValueError(
                f"unsupported colstore manifest version {version} "
                f"(this build speaks {COLSTORE_VERSION})"
            )
        m = cls(
            schema=[(str(n), str(k)) for n, k in data["schema"]],
            chunks=[ChunkMeta.from_json(c) for c in data["chunks"]],
            chunk_rows=int(data.get("chunk_rows", 0)),
            writer_version=version,
            meta=dict(data.get("meta", {})),
        )
        declared = int(data.get("total_rows", m.total_rows))
        if declared != m.total_rows:
            raise ValueError(
                f"manifest total_rows {declared} != sum of chunk rows "
                f"{m.total_rows}; refusing a torn manifest"
            )
        return m

    def digest(self) -> str:
        """Content address of the whole dataset.

        Hashes the canonical manifest JSON -- which embeds every shard's
        SHA-256 -- so two stores share a digest iff they hold the same
        bytes in the same layout.  Downstream caches key on this instead
        of re-reading gigabytes of shards.
        """
        return fingerprint({"colstore_manifest": 1, "body": self.to_json()})

    # -- persistence -------------------------------------------------------- #

    def save(self, root: str | os.PathLike) -> pathlib.Path:
        """Atomically write ``manifest.json`` under ``root``.

        Same temp + flush + fsync + ``os.replace`` discipline as
        :meth:`repro.par.NpzCache.save`: a reader either sees the
        previous manifest or this one, never a torn file.
        """
        root = pathlib.Path(root)
        root.mkdir(parents=True, exist_ok=True)
        target = root / MANIFEST_NAME
        tmp = target.with_name(target.name + ".tmp")
        try:
            with open(tmp, "w") as f:
                json.dump(self.to_json(), f, indent=1, sort_keys=True)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        return target

    @classmethod
    def load(cls, root: str | os.PathLike) -> "Manifest":
        """Read and validate the manifest of a store directory."""
        path = pathlib.Path(root) / MANIFEST_NAME
        if not path.is_file():
            raise FileNotFoundError(
                f"no colstore manifest at {path}; the store was never "
                "finalized (or the path is wrong)"
            )
        with open(path) as f:
            return cls.from_json(json.load(f))

    @classmethod
    def exists(cls, root: str | os.PathLike) -> bool:
        return (pathlib.Path(root) / MANIFEST_NAME).is_file()
