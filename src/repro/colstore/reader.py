"""``ChunkReader`` -- stream a chunked store back as per-chunk Tables.

Every shard is opened with ``np.load(..., mmap_mode="r")``, so a chunk
Table is a set of file-backed views: touching a column faults in pages,
dropping the Table releases them.  Iterating a 10M-row store therefore
holds one chunk's working set in RAM at a time -- the property the
out-of-core pipeline (and ``benchmarks/bench_colstore.py``) is built on.

``read_table`` is the explicit, opt-in gather-everything escape hatch
for small stores and tests; library streaming paths must not call it
(``tools/check_colstore.py`` enforces that no full-manifest concat
hides in this module outside ``read_table`` itself).
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from collections.abc import Iterator, Sequence

import numpy as np

from repro import obs
from repro.colstore.manifest import ChunkMeta, Manifest
from repro.datasets.frame import Table

__all__ = ["ChunkReader"]


class ChunkReader:
    """Streaming, memory-mapped access to one finalized store."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.manifest = Manifest.load(self.root)

    # -- shape --------------------------------------------------------------- #

    def __len__(self) -> int:
        return self.manifest.total_rows

    @property
    def n_chunks(self) -> int:
        return len(self.manifest.chunks)

    @property
    def column_names(self) -> list[str]:
        return self.manifest.column_names

    def __repr__(self) -> str:
        return (f"ChunkReader({self.root}, {len(self)} rows x "
                f"{len(self.manifest.schema)} cols, {self.n_chunks} chunks)")

    # -- streaming ----------------------------------------------------------- #

    def _check_columns(self, columns: Sequence[str] | None) -> list[str]:
        names = self.manifest.column_names
        if columns is None:
            return names
        missing = [c for c in columns if c not in names]
        if missing:
            raise KeyError(
                f"store has no column(s) {missing}; available: {names}"
            )
        return list(columns)

    def _load_shard(self, chunk: ChunkMeta, name: str) -> np.ndarray:
        path = self.root / chunk.files[name]
        # mmap keeps RSS bounded by the pages actually touched; the
        # mapping dies with the returned array's last reference.
        return np.load(path, mmap_mode="r")

    def read_chunk(self, index: int,
                   columns: Sequence[str] | None = None) -> Table:
        """One chunk as a Table of memory-mapped column views."""
        names = self._check_columns(columns)
        chunk = self.manifest.chunks[index]
        t0 = time.perf_counter()
        cols = {n: self._load_shard(chunk, n) for n in names}
        obs.inc("colstore.chunks_read_total")
        obs.inc("colstore.rows_read_total", chunk.rows)
        obs.inc("colstore.bytes_read_total",
                sum(chunk.nbytes[n] for n in names))
        obs.observe("colstore.chunk_read_s", time.perf_counter() - t0)
        return Table(cols)

    def iter_chunks(self, columns: Sequence[str] | None = None
                    ) -> Iterator[Table]:
        """Yield every chunk in order as a memory-mapped Table view."""
        names = self._check_columns(columns)
        t0 = time.perf_counter()
        rows = 0
        for i in range(self.n_chunks):
            table = self.read_chunk(i, names)
            rows += len(table)
            yield table
        elapsed = time.perf_counter() - t0
        if elapsed > 0 and rows:
            obs.set_gauge("colstore.read_rows_per_s",
                          round(rows / elapsed, 1))

    # -- whole-store convenience (small data / tests only) ------------------- #

    def read_table(self, columns: Sequence[str] | None = None) -> Table:
        """Materialize the whole store as one in-memory Table.

        The explicit escape hatch for paper-scale data and tests; on a
        10M-row store this is exactly the allocation the streaming
        pipeline exists to avoid, so library code must stream instead
        (the colstore lint keeps concat out of every other path here).
        """
        names = self._check_columns(columns)
        chunks = [self.read_chunk(i, names) for i in range(self.n_chunks)]
        if not chunks:
            return Table({})
        return Table.concat(chunks)

    # -- integrity ------------------------------------------------------------ #

    def validate(self) -> None:
        """Re-hash every shard against the manifest; raises on mismatch."""
        for chunk in self.manifest.chunks:
            for name, rel in chunk.files.items():
                path = self.root / rel
                if not path.is_file():
                    raise FileNotFoundError(
                        f"manifest lists {rel} but the shard is missing"
                    )
                arr = np.ascontiguousarray(np.load(path, mmap_mode="r"))
                digest = hashlib.sha256(arr.tobytes()).hexdigest()
                if digest != chunk.sha256[name]:
                    raise ValueError(
                        f"shard {rel} content hash mismatch: store is "
                        "corrupt (expected "
                        f"{chunk.sha256[name][:12]}..., got {digest[:12]}...)"
                    )
        obs.inc("colstore.validations_total")
