"""A deterministic streaming quantile sketch (KLL-style compactors).

``QuantileSketch`` ingests values chunk by chunk, merges across chunks
(or ``pmap`` workers), and answers quantile queries two ways:

* **Exact fast path** -- until the first compaction, every value is
  retained verbatim and :meth:`quantiles` is ``np.quantile`` over the
  buffered values in insertion order.  ``np.quantile`` depends only on
  the value multiset, so for any dataset with at most ``capacity``
  values per column the streamed answer is **bit-identical** to the
  in-memory one.  This is what keeps the existing FeatureBinner goldens
  unchanged on paper-scale data.
* **Sketched path** -- beyond ``capacity`` values, leveled compactors
  keep a weighted sample: a full level is sorted and every other value
  (alternating offset per compaction, so the choice is deterministic
  and unbiased over pairs) is promoted with doubled weight.  Queries
  interpolate on the weighted multiset with ``np.quantile``'s
  "linear" rule.

**Error bound.** One compaction at level ``l`` (weight ``2**l``)
perturbs the rank of any query point by at most ``2**l``.  The sketch
tracks the sum of those perturbations exactly in
:attr:`rank_error_bound`: a returned quantile ``q`` over ``n`` values is
guaranteed to be some element whose true rank lies within
``q*n +- rank_error_bound`` (property-tested in
``tests/colstore/test_sketch.py``).  With the default capacity of
65536, a 10M-value stream compacts ~150 times at low levels, for a
relative rank error of well under 1%% -- far finer than the 256-bin
grid the FeatureBinner quantizes into anyway.

Everything is deterministic: no randomness, so a given insertion order
always produces the same sketch, and merges in a fixed order (chunk
order) are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_CAPACITY", "QuantileSketch"]

#: Per-level retained values before a compaction triggers.  65536
#: float64 values are 512 KiB per level per column -- small enough to
#: sketch dozens of feature columns at once, large enough that every
#: paper-scale campaign (<= 65536 rows per column) stays on the exact
#: path.
DEFAULT_CAPACITY = 65_536


class QuantileSketch:
    """Mergeable streaming quantiles with an exact small-data fast path."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 8:
            raise ValueError("capacity must be >= 8")
        self.capacity = int(capacity)
        #: Level ``l`` holds values of weight ``2**l`` as a list of
        #: arrays (concatenated lazily on compaction/query).
        self._levels: list[list[np.ndarray]] = [[]]
        self._level_counts: list[int] = [0]
        #: Alternating compaction offset per level (deterministic coin).
        self._offsets: list[int] = [0]
        self.n = 0
        self.min_ = np.inf
        self.max_ = -np.inf
        #: Exact upper bound on rank perturbation accumulated so far.
        self.rank_error_bound = 0

    # -- ingestion ----------------------------------------------------------- #

    @property
    def exact(self) -> bool:
        """True while every ingested value is still retained verbatim."""
        return self.rank_error_bound == 0

    def add(self, values: np.ndarray) -> "QuantileSketch":
        """Ingest a batch of finite float64 values (non-finite rejected)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return self
        if not np.isfinite(values).all():
            raise ValueError("sketch values must be finite; filter first")
        self._levels[0].append(values)
        self._level_counts[0] += values.size
        self.n += values.size
        self.min_ = min(self.min_, float(values.min()))
        self.max_ = max(self.max_, float(values.max()))
        self._compress()
        return self

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._level_counts.append(0)
            self._offsets.append(0)

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            if self._level_counts[level] > self.capacity:
                self._compact(level)
            level += 1

    def _compact(self, level: int) -> None:
        buf = np.sort(np.concatenate(self._levels[level]))
        offset = self._offsets[level]
        self._offsets[level] ^= 1
        promoted = buf[offset::2]
        self._levels[level] = []
        self._level_counts[level] = 0
        self._ensure_level(level + 1)
        self._levels[level + 1].append(promoted)
        self._level_counts[level + 1] += promoted.size
        # Dropping every other weight-2**level value shifts any rank by
        # at most 2**level.
        self.rank_error_bound += 1 << level

    # -- merging ------------------------------------------------------------- #

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch in (deterministic given merge order)."""
        if other.n == 0:
            return self
        self._ensure_level(len(other._levels) - 1)
        for level, parts in enumerate(other._levels):
            if parts:
                self._levels[level].extend(parts)
                self._level_counts[level] += other._level_counts[level]
        self.n += other.n
        self.min_ = min(self.min_, other.min_)
        self.max_ = max(self.max_, other.max_)
        self.rank_error_bound += other.rank_error_bound
        self._compress()
        return self

    # -- queries ------------------------------------------------------------- #

    def values(self) -> np.ndarray:
        """Retained level-0 values in insertion order (exact path only)."""
        if not self.exact:
            raise RuntimeError("sketch has compacted; raw values are gone")
        if not self._levels[0]:
            return np.empty(0)
        if len(self._levels[0]) == 1:
            return self._levels[0][0]
        return np.concatenate(self._levels[0])

    def quantiles(self, qs) -> np.ndarray:
        """Quantile estimates (exact until the first compaction)."""
        qs = np.atleast_1d(np.asarray(qs, dtype=np.float64))
        if self.n == 0:
            raise RuntimeError("sketch is empty")
        if self.exact:
            # Bit-identical to np.quantile over the original data: the
            # answer depends only on the value multiset, not the order.
            return np.quantile(self.values(), qs)
        vals_parts: list[np.ndarray] = []
        wts_parts: list[np.ndarray] = []
        for level, parts in enumerate(self._levels):
            for part in parts:
                vals_parts.append(part)
                wts_parts.append(np.full(part.size, 1 << level,
                                         dtype=np.int64))
        vals = np.concatenate(vals_parts)
        wts = np.concatenate(wts_parts)
        order = np.argsort(vals, kind="stable")
        vals = vals[order]
        wts = wts[order]
        cum = np.cumsum(wts)
        total = int(cum[-1])

        def value_at(rank: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(cum, rank, side="right")
            return vals[np.minimum(idx, len(vals) - 1)]

        # np.quantile's "linear" rule on the weighted multiset.
        h = qs * (total - 1)
        lo = np.floor(h).astype(np.int64)
        frac = h - lo
        v_lo = value_at(lo)
        v_hi = value_at(np.minimum(lo + 1, total - 1))
        return v_lo + frac * (v_hi - v_lo)
