"""Paper-style charts rendered to SVG.

Four chart types cover every figure in the paper's evaluation:

* :func:`line_chart` -- throughput traces (Figs. 1-2, 16, 21);
* :func:`heatmap_chart` -- spatial throughput maps (Figs. 3, 6, 9);
* :func:`box_chart` -- distributions per category (Figs. 8, 11, 13, 14);
* :func:`bar_chart` -- model/metric comparisons (Figs. 22, 23).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.viz.colors import series_color, throughput_color
from repro.viz.svg import LinearScale, SvgCanvas

MARGIN = dict(left=60.0, right=20.0, top=36.0, bottom=46.0)


def _frame(width, height, title):
    canvas = SvgCanvas(width, height)
    plot = dict(
        x0=MARGIN["left"], x1=width - MARGIN["right"],
        y0=height - MARGIN["bottom"], y1=MARGIN["top"],
    )
    if title:
        canvas.text(width / 2, 20, title, size=14, anchor="middle")
    return canvas, plot


def _axes(canvas, plot, xs: LinearScale, ys: LinearScale,
          x_label="", y_label="", x_tick_fmt="{:.0f}",
          y_tick_fmt="{:.0f}") -> None:
    canvas.line(plot["x0"], plot["y0"], plot["x1"], plot["y0"],
                stroke="#444")
    canvas.line(plot["x0"], plot["y0"], plot["x0"], plot["y1"],
                stroke="#444")
    for v in xs.ticks(5):
        px = xs(v)
        canvas.line(px, plot["y0"], px, plot["y0"] + 4, stroke="#444")
        canvas.text(px, plot["y0"] + 18, x_tick_fmt.format(v),
                    size=10, anchor="middle")
    for v in ys.ticks(5):
        py = ys(v)
        canvas.line(plot["x0"] - 4, py, plot["x0"], py, stroke="#444")
        canvas.text(plot["x0"] - 8, py + 3, y_tick_fmt.format(v),
                    size=10, anchor="end")
        canvas.line(plot["x0"], py, plot["x1"], py, stroke="#eee")
    if x_label:
        canvas.text((plot["x0"] + plot["x1"]) / 2, plot["y0"] + 36,
                    x_label, size=11, anchor="middle")
    if y_label:
        canvas.text(16, (plot["y0"] + plot["y1"]) / 2, y_label, size=11,
                    anchor="middle", rotate=-90)


def line_chart(
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "time (s)",
    y_label: str = "throughput (Mbps)",
    width: float = 640.0,
    height: float = 320.0,
) -> SvgCanvas:
    """Multi-series line chart over a shared integer x axis."""
    if not series:
        raise ValueError("no series")
    canvas, plot = _frame(width, height, title)
    longest = max(len(v) for v in series.values())
    all_vals = np.concatenate([
        np.asarray(v, dtype=float)[np.isfinite(np.asarray(v, dtype=float))]
        for v in series.values()
    ])
    hi = float(all_vals.max()) if len(all_vals) else 1.0
    xs = LinearScale((0.0, max(longest - 1, 1)), (plot["x0"], plot["x1"]))
    ys = LinearScale((0.0, hi * 1.05 or 1.0), (plot["y0"], plot["y1"]))
    _axes(canvas, plot, xs, ys, x_label, y_label)
    for i, (name, values) in enumerate(series.items()):
        vals = np.asarray(values, dtype=float)
        pts = [(xs(t), ys(v)) for t, v in enumerate(vals)
               if np.isfinite(v)]
        if pts:
            canvas.polyline(pts, stroke=series_color(i))
        canvas.text(plot["x1"] - 4, plot["y1"] + 14 + 14 * i, name,
                    size=10, anchor="end", fill=series_color(i))
    return canvas


def heatmap_chart(
    cells: Sequence,
    title: str = "",
    width: float = 520.0,
    height: float = 520.0,
    cell_px: float | None = None,
) -> SvgCanvas:
    """Spatial heatmap from :class:`repro.core.maps.MapCell` objects."""
    if not cells:
        raise ValueError("no cells")
    canvas, plot = _frame(width, height, title)
    xs_v = np.asarray([c.x for c in cells])
    ys_v = np.asarray([c.y for c in cells])
    xs = LinearScale((xs_v.min() - 2, xs_v.max() + 2),
                     (plot["x0"], plot["x1"]))
    ys = LinearScale((ys_v.min() - 2, ys_v.max() + 2),
                     (plot["y0"], plot["y1"]))
    _axes(canvas, plot, xs, ys, "x (m/px)", "y (m/px)")
    if cell_px is None:
        span = max(xs_v.max() - xs_v.min(), ys_v.max() - ys_v.min(), 1.0)
        cell_px = max(2.0, (plot["x1"] - plot["x0"]) / span * 2.0)
    for c in cells:
        canvas.rect(xs(c.x) - cell_px / 2, ys(c.y) - cell_px / 2,
                    cell_px, cell_px, fill=throughput_color(c.value))
    return canvas


def box_chart(
    groups: Mapping[str, Sequence[float]],
    title: str = "",
    y_label: str = "throughput (Mbps)",
    width: float = 640.0,
    height: float = 320.0,
) -> SvgCanvas:
    """Box-and-whisker chart, one box per named group (Fig. 14 style)."""
    if not groups:
        raise ValueError("no groups")
    canvas, plot = _frame(width, height, title)
    finite = [np.asarray(v, dtype=float) for v in groups.values()]
    finite = [v[np.isfinite(v)] for v in finite]
    hi = max((float(v.max()) for v in finite if len(v)), default=1.0)
    ys = LinearScale((0.0, hi * 1.05 or 1.0), (plot["y0"], plot["y1"]))
    n = len(groups)
    slot = (plot["x1"] - plot["x0"]) / n
    box_w = slot * 0.5
    for v in ys.ticks(5):
        canvas.line(plot["x0"], ys(v), plot["x1"], ys(v), stroke="#eee")
        canvas.text(plot["x0"] - 8, ys(v) + 3, f"{v:.0f}", size=10,
                    anchor="end")
    canvas.line(plot["x0"], plot["y0"], plot["x1"], plot["y0"],
                stroke="#444")
    canvas.text(16, (plot["y0"] + plot["y1"]) / 2, y_label, size=11,
                anchor="middle", rotate=-90)
    for i, (name, vals) in enumerate(groups.items()):
        v = np.asarray(vals, dtype=float)
        v = v[np.isfinite(v)]
        cx = plot["x0"] + slot * (i + 0.5)
        canvas.text(cx, plot["y0"] + 18, name, size=9, anchor="middle")
        if len(v) == 0:
            continue
        q1, med, q3 = np.percentile(v, [25, 50, 75])
        lo, hi_w = np.percentile(v, [5, 95])
        canvas.line(cx, ys(lo), cx, ys(hi_w), stroke="#666")
        canvas.rect(cx - box_w / 2, ys(q3), box_w, ys(q1) - ys(q3),
                    fill="#a8c6e8", stroke="#446")
        canvas.line(cx - box_w / 2, ys(med), cx + box_w / 2, ys(med),
                    stroke="#d62728", stroke_width=2.0)
    return canvas


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    y_label: str = "",
    width: float = 640.0,
    height: float = 320.0,
) -> SvgCanvas:
    """Labelled vertical bars (feature importance / model comparison)."""
    if not values:
        raise ValueError("no values")
    canvas, plot = _frame(width, height, title)
    hi = max(max(values.values()), 1e-9)
    ys = LinearScale((0.0, hi * 1.1), (plot["y0"], plot["y1"]))
    n = len(values)
    slot = (plot["x1"] - plot["x0"]) / n
    bar_w = slot * 0.6
    canvas.line(plot["x0"], plot["y0"], plot["x1"], plot["y0"],
                stroke="#444")
    for v in ys.ticks(5):
        canvas.text(plot["x0"] - 8, ys(v) + 3, f"{v:.2g}", size=10,
                    anchor="end")
        canvas.line(plot["x0"], ys(v), plot["x1"], ys(v), stroke="#eee")
    canvas.text(16, (plot["y0"] + plot["y1"]) / 2, y_label, size=11,
                anchor="middle", rotate=-90)
    for i, (name, value) in enumerate(values.items()):
        cx = plot["x0"] + slot * (i + 0.5)
        canvas.rect(cx - bar_w / 2, ys(value), bar_w,
                    plot["y0"] - ys(value), fill=series_color(i))
        canvas.text(cx, plot["y0"] + 14, name, size=9, anchor="middle",
                    rotate=20)
    return canvas
