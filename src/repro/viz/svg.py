"""Minimal SVG document builder (no third-party plotting available).

Produces standalone .svg files for the paper-style figures.  Elements are
accumulated as strings; coordinates are in user units (pixels).
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field


def _fmt(v: float) -> str:
    return f"{v:.2f}".rstrip("0").rstrip(".")


@dataclass
class SvgCanvas:
    """An SVG drawing surface with a fixed pixel size."""

    width: float
    height: float
    background: str | None = "white"
    _elements: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("canvas size must be positive")
        if self.background:
            self.rect(0, 0, self.width, self.height, fill=self.background,
                      stroke="none")

    # -- primitives ---------------------------------------------------------- #

    def rect(self, x, y, w, h, fill="black", stroke="none",
             stroke_width=1.0, opacity=1.0) -> None:
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}" '
            f'opacity="{_fmt(opacity)}"/>'
        )

    def circle(self, cx, cy, r, fill="black", stroke="none",
               opacity=1.0) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{_fmt(opacity)}"/>'
        )

    def line(self, x1, y1, x2, y2, stroke="black", stroke_width=1.0,
             dash: str | None = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}"{dash_attr}/>'
        )

    def polyline(self, points, stroke="black", stroke_width=1.5,
                 fill="none") -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}"/>'
        )

    def text(self, x, y, content, size=12.0, anchor="start",
             fill="#222", rotate: float | None = None) -> None:
        transform = (f' transform="rotate({_fmt(rotate)} {_fmt(x)} '
                     f'{_fmt(y)})"' if rotate else "")
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{html.escape(str(content))}</text>'
        )

    # -- output --------------------------------------------------------------- #

    def to_string(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_string())


@dataclass(frozen=True)
class LinearScale:
    """Map a data interval onto a pixel interval."""

    domain: tuple[float, float]
    range: tuple[float, float]

    def __post_init__(self) -> None:
        if self.domain[0] == self.domain[1]:
            raise ValueError("degenerate scale domain")

    def __call__(self, value: float) -> float:
        d0, d1 = self.domain
        r0, r1 = self.range
        return r0 + (value - d0) / (d1 - d0) * (r1 - r0)

    def ticks(self, n: int = 5) -> list[float]:
        d0, d1 = self.domain
        if n < 2:
            raise ValueError("need at least two ticks")
        step = (d1 - d0) / (n - 1)
        return [d0 + i * step for i in range(n)]
