"""SVG visualization: paper-style traces, heatmaps, boxes and bars."""

from repro.viz.charts import bar_chart, box_chart, heatmap_chart, line_chart
from repro.viz.colors import series_color, throughput_color
from repro.viz.svg import LinearScale, SvgCanvas

__all__ = [
    "LinearScale",
    "SvgCanvas",
    "bar_chart",
    "box_chart",
    "heatmap_chart",
    "line_chart",
    "series_color",
    "throughput_color",
]
