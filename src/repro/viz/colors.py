"""Color maps for throughput figures.

The paper's heatmaps run dark red (< 60 Mbps) to lime green (> 1 Gbps);
``throughput_color`` interpolates that ramp continuously.
"""

from __future__ import annotations

#: (value anchor in Mbps, (r, g, b)) stops of the paper-style ramp.
THROUGHPUT_STOPS = (
    (0.0, (139, 0, 0)),       # dark red
    (60.0, (214, 39, 40)),    # red
    (300.0, (255, 160, 54)),  # orange
    (700.0, (255, 221, 87)),  # yellow
    (1000.0, (154, 205, 50)), # yellow-green
    (2000.0, (50, 205, 50)),  # lime green
)

SERIES_PALETTE = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979",
)


def _hex(rgb: tuple[int, int, int]) -> str:
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def throughput_color(mbps: float) -> str:
    """Continuous paper-style color for a throughput value."""
    stops = THROUGHPUT_STOPS
    if mbps <= stops[0][0]:
        return _hex(stops[0][1])
    for (v0, c0), (v1, c1) in zip(stops, stops[1:]):
        if mbps <= v1:
            t = (mbps - v0) / (v1 - v0)
            rgb = tuple(
                int(round(a + t * (b - a))) for a, b in zip(c0, c1)
            )
            return _hex(rgb)
    return _hex(stops[-1][1])


def series_color(index: int) -> str:
    """Stable categorical color for the index-th series."""
    return SERIES_PALETTE[index % len(SERIES_PALETTE)]
