"""Dynamic blockage sources: the user's body and vehicle penetration.

The paper attributes two of its strongest mobility effects to blockage:

* **Self-body blockage** -- for a hand-held phone, walking *away* from a
  panel (mobility angle theta_m near 0) puts the user's body between the UE
  and the panel, forcing a NLoS reflective path (Sec. 4.4).  Measured body
  loss at 28 GHz is on the order of 15-25 dB (Zhao et al.).
* **Vehicle penetration** -- while driving, the signal must pass through
  the windshield/body of the car; beyond ~5 km/h the paper sees the median
  throughput collapse from ~557 Mbps to 60-164 Mbps (Sec. 4.6).  Measured
  vehicle penetration loss at mmWave is ~15-25 dB, and at speed the beam
  tracking loop also struggles, adding a speed-dependent penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BodyBlockageModel:
    """Loss from the user's own body as a function of mobility angle.

    The loss is maximal when the UE moves in the panel's facing direction
    (theta_m = 0: body between phone and panel for a phone held in front of
    a walking user) and negligible when moving head-on toward the panel
    (theta_m = 180).  A raised-cosine ramp between the two extremes keeps
    the transition smooth, which matches the gradual trend across theta_m
    bins in Fig. 8.
    """

    max_loss_db: float = 18.0
    applies_when_driving: bool = False

    def loss_db(self, mobility_angle_deg: float, driving: bool = False) -> float:
        if driving and not self.applies_when_driving:
            return 0.0  # phone mounted on the windshield, no body in the way
        # Fold theta_m into [0, 180]: 0 = moving with panel facing direction.
        folded = mobility_angle_deg % 360.0
        if folded > 180.0:
            folded = 360.0 - folded
        return self.max_loss_db * 0.5 * (1.0 + math.cos(math.radians(folded)))


@dataclass(frozen=True)
class VehiclePenetrationModel:
    """Loss from the vehicle body plus speed-dependent beam-tracking penalty.

    ``base_loss_db`` applies whenever the UE is inside a vehicle.  Above
    ``speed_threshold_kmph`` an additional penalty grows with speed,
    capturing degraded beam tracking/handoff churn at driving speeds; this
    reproduces the sharp walking-vs-driving asymmetry of Fig. 14 (walking
    speeds never cross the threshold).
    """

    base_loss_db: float = 14.0
    speed_threshold_kmph: float = 5.0
    tracking_loss_db_per_kmph: float = 0.5
    max_tracking_loss_db: float = 16.0

    def loss_db(self, speed_kmph: float, in_vehicle: bool) -> float:
        if not in_vehicle:
            return 0.0
        loss = self.base_loss_db
        if speed_kmph > self.speed_threshold_kmph:
            extra = self.tracking_loss_db_per_kmph * (
                speed_kmph - self.speed_threshold_kmph
            )
            loss += min(extra, self.max_tracking_loss_db)
        return loss


@dataclass(frozen=True)
class PedestrianBlockageModel:
    """Random transient blockage from passers-by and street clutter.

    Each second an independent blockage event occurs with a small
    probability, imposing a deep fade.  This contributes the residual
    "uncontrollable" +-200 Mbps fluctuation the paper reports even for a
    stationary UE, and caps how predictable throughput can ever be.
    """

    event_probability: float = 0.05
    loss_db: float = 10.0

    def sample_loss_db(self, rng) -> float:
        return self.loss_db if rng.random() < self.event_probability else 0.0
