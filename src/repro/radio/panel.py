"""5G mmWave panels and towers.

Each commercial mmWave tower in the paper's areas carries one to three
*panels* (transceivers on poles) facing different directions.  A panel is
highly directional: its antenna array serves a sector around its boresight,
with gain falling off quickly outside roughly +-60 degrees.  The UE attaches
to (at most) one panel at a time; switching panels is a *horizontal handoff*
and falling back to LTE is a *vertical handoff*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Panel:
    """A single mmWave transceiver panel.

    Parameters
    ----------
    panel_id:
        Globally unique identifier; surfaces in telemetry as the cell ID
        (``mCid``) the UE is connected to.
    position:
        (x, y) in local meters.
    bearing_deg:
        Boresight compass direction the front face points toward.
    max_range_m:
        Practical coverage range; mmWave deployments reach ~100-300 m.
    beamwidth_deg:
        Half-power sector width of the panel around its boresight.
    tx_power_dbm / max_gain_db:
        Radiated power and peak antenna gain, feeding the link budget.
    """

    panel_id: int
    position: tuple[float, float]
    bearing_deg: float
    max_range_m: float = 250.0
    beamwidth_deg: float = 120.0
    tx_power_dbm: float = 24.0
    max_gain_db: float = 18.0

    def gain_toward_db(self, ue_xy: tuple[float, float]) -> float:
        """Antenna gain toward a UE position (3GPP-style parabolic pattern).

        Gain is maximal on boresight and rolls off quadratically with the
        off-boresight angle, floored at a -30 dB front-to-back ratio, the
        standard sectorized antenna model (3GPP TR 36.942).
        """
        from repro.geo.geometry import positional_angle

        off = positional_angle(self.position, self.bearing_deg, ue_xy)
        attenuation = 12.0 * (off / self.beamwidth_deg) ** 2
        return self.max_gain_db - min(attenuation, 30.0)


@dataclass(frozen=True)
class Tower:
    """A tower site hosting one or more panels (often dual-panel outdoors)."""

    tower_id: int
    panels: tuple[Panel, ...]

    def __post_init__(self) -> None:
        if not self.panels:
            raise ValueError("a tower must host at least one panel")


@dataclass
class PanelDirectory:
    """Lookup table of every panel in an environment.

    This stands in for the exogenous tower/panel location information the
    authors gathered by manually surveying each area; the T feature group
    is computed against it.
    """

    towers: list[Tower] = field(default_factory=list)
    _by_id: dict[int, Panel] = field(default_factory=dict, repr=False)

    def add_tower(self, tower: Tower) -> None:
        for panel in tower.panels:
            if panel.panel_id in self._by_id:
                raise ValueError(f"duplicate panel id {panel.panel_id}")
            self._by_id[panel.panel_id] = panel
        self.towers.append(tower)

    @property
    def panels(self) -> list[Panel]:
        return [p for t in self.towers for p in t.panels]

    def get(self, panel_id: int) -> Panel:
        return self._by_id[panel_id]

    def __contains__(self, panel_id: int) -> bool:
        return panel_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def nearest(self, ue_xy: tuple[float, float]) -> Panel:
        """Panel with the smallest Euclidean distance to the UE."""
        if not self._by_id:
            raise ValueError("panel directory is empty")
        return min(
            self._by_id.values(),
            key=lambda p: math.hypot(
                p.position[0] - ue_xy[0], p.position[1] - ue_xy[1]
            ),
        )
