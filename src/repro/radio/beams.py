"""Codebook-based beam management for mmWave panels.

Commercial mmWave gNBs serve UEs through narrow analog beams picked from
a fixed codebook and re-selected periodically from SSB sweep
measurements.  The default simulator abstracts this into a
speed-dependent tracking loss; this module models it explicitly:

* :class:`BeamCodebook` -- N narrow beams tiling the panel's sector, each
  with a parabolic pattern and a peak gain exceeding the wide-beam gain
  (narrower beam = more array gain);
* :class:`BeamTracker` -- per-UE serving-beam state: beams are re-swept
  every ``sweep_period_s``; between sweeps the UE keeps its old beam, so
  angular motion opens a misalignment loss that grows with speed.

Enable by constructing the simulator with
``SimulationConfig(beams=BeamConfig(...))`` (see the beam ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geo.geometry import bearing, normalize_bearing


@dataclass(frozen=True)
class BeamCodebook:
    """Narrow beams tiling [-sector/2, +sector/2] around boresight."""

    n_beams: int = 8
    sector_deg: float = 120.0
    #: Extra array gain of a narrow beam over the panel's wide pattern.
    peak_gain_bonus_db: float = 6.0
    rolloff_db: float = 12.0

    def __post_init__(self) -> None:
        if self.n_beams < 1:
            raise ValueError("need at least one beam")
        if self.sector_deg <= 0:
            raise ValueError("sector must be positive")

    @property
    def beam_width_deg(self) -> float:
        return self.sector_deg / self.n_beams

    def beam_centers_deg(self) -> list[float]:
        """Beam boresights as offsets from the panel boresight."""
        w = self.beam_width_deg
        half = self.sector_deg / 2.0
        return [-half + w * (i + 0.5) for i in range(self.n_beams)]

    def best_beam(self, offset_deg: float) -> int:
        """Beam index whose center is nearest an angular offset."""
        centers = self.beam_centers_deg()
        return min(range(self.n_beams),
                   key=lambda i: abs(centers[i] - offset_deg))

    def gain_db(self, beam: int, offset_deg: float) -> float:
        """Relative beam gain toward an offset (0 dB = wide-beam level).

        Peak ``peak_gain_bonus_db`` on the beam center, parabolic rolloff
        with the (narrow) beam width, floored at -20 dB.
        """
        if not 0 <= beam < self.n_beams:
            raise ValueError("beam index out of range")
        center = self.beam_centers_deg()[beam]
        miss = abs(offset_deg - center)
        att = self.rolloff_db * (miss / self.beam_width_deg) ** 2
        return self.peak_gain_bonus_db - min(att, 20.0 + self.peak_gain_bonus_db)


@dataclass
class BeamTracker:
    """Serving-beam state for one UE against one panel."""

    codebook: BeamCodebook
    sweep_period_s: float = 1.28  # SSB periodicity scale
    _beam: int = 0
    _since_sweep: float = field(default=1e9, repr=False)

    def offset_of(self, panel_position, panel_bearing_deg, ue_xy) -> float:
        """Signed angular offset of the UE from the panel boresight."""
        to_ue = bearing(panel_position, ue_xy)
        return (normalize_bearing(to_ue - panel_bearing_deg + 180.0)
                - 180.0)

    def step(
        self, panel_position, panel_bearing_deg, ue_xy, dt_s: float = 1.0
    ) -> float:
        """Advance one step; returns the beam gain (dB, relative)."""
        offset = self.offset_of(panel_position, panel_bearing_deg, ue_xy)
        self._since_sweep += dt_s
        if self._since_sweep >= self.sweep_period_s:
            self._beam = self.codebook.best_beam(offset)
            self._since_sweep = 0.0
        return self.codebook.gain_db(self._beam, offset)
