"""Link budget and SNR -> PHY-rate mapping.

Combines path loss, antenna gain, blockage losses and noise into an SINR,
then maps SINR to an achievable physical-layer rate with a capped spectral
efficiency (truncated Shannon bound, as used in 3GPP system evaluations).
Verizon's 2019 mmWave deployment aggregated 4 x 100 MHz carriers, giving the
~2 Gbps practical per-UE ceiling the paper measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

THERMAL_NOISE_DBM_PER_HZ = -174.0


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget parameters for a 5G NR mmWave carrier."""

    bandwidth_hz: float = 400e6  # 4 x 100 MHz aggregated carriers
    noise_figure_db: float = 10.0
    ue_gain_db: float = 0.0
    max_spectral_efficiency: float = 5.5  # bit/s/Hz, 64-QAM-ish cap
    attenuation_factor: float = 0.85  # implementation loss vs Shannon
    min_sinr_db: float = -12.0  # below this the 5G link drops

    @property
    def noise_dbm(self) -> float:
        return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(self.bandwidth_hz) \
            + self.noise_figure_db

    def sinr_db(
        self,
        tx_power_dbm: float,
        tx_gain_db: float,
        path_loss_db: float,
        extra_loss_db: float = 0.0,
        interference_db: float = 0.0,
    ) -> float:
        """Received SINR given the link-budget terms (all in dB/dBm)."""
        rx_dbm = (
            tx_power_dbm + tx_gain_db + self.ue_gain_db
            - path_loss_db - extra_loss_db
        )
        return rx_dbm - self.noise_dbm - interference_db

    def rx_power_dbm(
        self,
        tx_power_dbm: float,
        tx_gain_db: float,
        path_loss_db: float,
        extra_loss_db: float = 0.0,
    ) -> float:
        """Received reference-signal power (feeds RSRP reporting)."""
        return (
            tx_power_dbm + tx_gain_db + self.ue_gain_db
            - path_loss_db - extra_loss_db
        )

    def phy_rate_bps(self, sinr_db: float) -> float:
        """Truncated-Shannon PHY rate for a SINR.

        ``rate = att * B * min(log2(1 + SINR), SE_max)``, zero below the
        SINR floor where the modem cannot hold the 5G link.
        """
        if sinr_db < self.min_sinr_db:
            return 0.0
        sinr = 10.0 ** (sinr_db / 10.0)
        se = min(math.log2(1.0 + sinr), self.max_spectral_efficiency)
        return self.attenuation_factor * self.bandwidth_hz * se


@dataclass(frozen=True)
class LteLinkModel:
    """Coarse LTE fallback link used after a vertical handoff.

    The paper's vertical handoffs drop the UE to 4G whose throughput sits
    far below mmWave 5G (tens of Mbps, occasionally ~100+).  We model LTE
    throughput as a distance-damped draw around a configurable median; LTE
    macro coverage is effectively everywhere, so it never drops out.
    """

    median_mbps: float = 70.0
    sigma_ln: float = 0.45
    range_scale_m: float = 1500.0

    def throughput_mbps(self, distance_m: float, rng) -> float:
        damp = math.exp(-max(distance_m, 0.0) / self.range_scale_m)
        draw = rng.lognormal(math.log(self.median_mbps * max(damp, 0.1)),
                             self.sigma_ln)
        return float(min(draw, 250.0))
