"""mmWave propagation: path loss, shadowing, fast fading.

We follow the 3GPP TR 38.901 urban-micro (UMi street canyon) model shape at
28 GHz: a log-distance path loss with distinct LoS/NLoS exponents plus
log-normal shadowing, and Rician/Rayleigh-like fast fading on top.  The
absolute constants are tuned so that the resulting link capacities land in
the ranges the paper measures on Verizon's deployment (peaks near 2 Gbps
close to a panel, dropping toward zero at the cell edge or under blockage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0
DEFAULT_FREQUENCY_GHZ = 28.0


def fspl_db(distance_m: float, frequency_ghz: float = DEFAULT_FREQUENCY_GHZ) -> float:
    """Free-space path loss in dB (the 1 m reference term of 38.901)."""
    distance_m = max(distance_m, 1.0)
    f_hz = frequency_ghz * 1e9
    return 20.0 * math.log10(4.0 * math.pi * distance_m * f_hz / SPEED_OF_LIGHT)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with LoS/NLoS exponents and shadowing.

    ``PL(d) = FSPL(1m) + 10 * n * log10(d) + X_sigma`` where the exponent
    ``n`` and shadowing sigma depend on LoS state (38.901 UMi: n ~ 2.1 LoS,
    ~3.2 NLoS; sigma ~ 4 dB LoS, ~7.8 dB NLoS).
    """

    frequency_ghz: float = DEFAULT_FREQUENCY_GHZ
    los_exponent: float = 2.5
    nlos_exponent: float = 3.2
    los_shadow_sigma_db: float = 4.0
    nlos_shadow_sigma_db: float = 7.8

    def mean_loss_db(self, distance_m: float, los: bool) -> float:
        """Median path loss (no shadowing) at a distance."""
        distance_m = max(distance_m, 1.0)
        n = self.los_exponent if los else self.nlos_exponent
        return fspl_db(1.0, self.frequency_ghz) + 10.0 * n * math.log10(distance_m)

    def shadow_sigma_db(self, los: bool) -> float:
        return self.los_shadow_sigma_db if los else self.nlos_shadow_sigma_db

    def sample_loss_db(
        self, distance_m: float, los: bool, rng: np.random.Generator
    ) -> float:
        """Path loss with log-normal shadowing drawn from ``rng``."""
        return self.mean_loss_db(distance_m, los) + rng.normal(
            0.0, self.shadow_sigma_db(los)
        )


@dataclass
class ShadowingProcess:
    """Spatially/temporally correlated shadowing (Gudmundson model).

    Successive per-second samples are correlated with
    ``rho = exp(-v * dt / d_corr)`` where ``v`` is UE speed and ``d_corr``
    the shadowing decorrelation distance (~10 m outdoors).  This is what
    makes throughput traces *trajectories* rather than white noise, and is
    the structure that history-based models (Seq2Seq, harmonic mean) can
    exploit.
    """

    sigma_db: float = 4.0
    decorrelation_distance_m: float = 10.0
    _state_db: float = 0.0

    def reset(self, rng: np.random.Generator) -> None:
        self._state_db = float(rng.normal(0.0, self.sigma_db))

    def step(self, speed_mps: float, dt_s: float, rng: np.random.Generator) -> float:
        """Advance one time step and return the current shadowing in dB."""
        moved = max(speed_mps, 0.05) * dt_s
        rho = math.exp(-moved / self.decorrelation_distance_m)
        innovation = rng.normal(0.0, self.sigma_db * math.sqrt(1.0 - rho * rho))
        self._state_db = rho * self._state_db + innovation
        return self._state_db


class SpatialShadowingField:
    """A static spatial shadowing field per panel (Gaussian random field).

    Shadow fading is caused by the static environment, so at a fixed
    position it is *reproducible across measurement runs* -- this is what
    makes throughput maps meaningful (consistently good and consistently
    bad patches, Fig. 6).  We synthesize a smooth zero-mean field with a
    target standard deviation and correlation length using random Fourier
    features: ``f(x) = sigma * sqrt(2/K) * sum_i cos(k_i . x + phi_i)``
    with wavevectors drawn for the chosen correlation length.  The field
    is deterministic given its seed (panel id + environment seed).
    """

    def __init__(
        self,
        sigma_db: float = 3.5,
        correlation_length_m: float = 15.0,
        n_components: int = 48,
        seed: int = 0,
    ):
        if sigma_db < 0 or correlation_length_m <= 0:
            raise ValueError("invalid field parameters")
        rng = np.random.default_rng(seed)
        self.sigma_db = sigma_db
        self.correlation_length_m = correlation_length_m
        # Wavevector magnitudes ~ Rayleigh around 1/L gives an approximately
        # Gaussian correlation function with length ~L.
        k_mag = rng.rayleigh(1.0 / correlation_length_m, size=n_components)
        k_dir = rng.uniform(0.0, 2 * np.pi, size=n_components)
        self._kx = k_mag * np.cos(k_dir)
        self._ky = k_mag * np.sin(k_dir)
        self._phase = rng.uniform(0.0, 2 * np.pi, size=n_components)
        self._amp = sigma_db * np.sqrt(2.0 / n_components)

    def value_db(self, x_m: float, y_m: float) -> float:
        """Shadowing in dB at a position (deterministic)."""
        arg = self._kx * x_m + self._ky * y_m + self._phase
        return float(self._amp * np.cos(arg).sum())


def fast_fading_db(los: bool, rng: np.random.Generator, k_factor_db: float = 9.0) -> float:
    """Small-scale fading gain in dB.

    Rician fading under LoS (strong direct component, K ~ 9 dB) and
    Rayleigh fading under NLoS.  Returned as a dB gain relative to the mean
    channel power (so it averages to ~0 dB).
    """
    if los:
        k = 10.0 ** (k_factor_db / 10.0)
        los_comp = math.sqrt(k / (k + 1.0))
        scatter = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        re = los_comp + rng.normal(0.0, scatter)
        im = rng.normal(0.0, scatter)
    else:
        re = rng.normal(0.0, math.sqrt(0.5))
        im = rng.normal(0.0, math.sqrt(0.5))
    power = re * re + im * im
    return 10.0 * math.log10(max(power, 1e-6))
