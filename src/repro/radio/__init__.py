"""Radio substrate: propagation, blockage, link budget, signal, handoffs."""

from repro.radio.beams import BeamCodebook, BeamTracker
from repro.radio.blockage import (
    BodyBlockageModel,
    PedestrianBlockageModel,
    VehiclePenetrationModel,
)
from repro.radio.handoff import (
    AttachmentState,
    HandoffEvent,
    HandoffPolicy,
    HandoffTracker,
    RadioType,
    consume_interruption,
)
from repro.radio.link import LinkBudget, LteLinkModel
from repro.radio.panel import Panel, PanelDirectory, Tower
from repro.radio.propagation import (
    PathLossModel,
    ShadowingProcess,
    fast_fading_db,
    fspl_db,
)
from repro.radio.signal import (
    UNAVAILABLE,
    SignalReport,
    SignalStrengthModel,
)

__all__ = [
    "UNAVAILABLE",
    "AttachmentState",
    "BeamCodebook",
    "BeamTracker",
    "BodyBlockageModel",
    "HandoffEvent",
    "HandoffPolicy",
    "HandoffTracker",
    "LinkBudget",
    "LteLinkModel",
    "Panel",
    "PanelDirectory",
    "PathLossModel",
    "PedestrianBlockageModel",
    "RadioType",
    "ShadowingProcess",
    "SignalReport",
    "SignalStrengthModel",
    "Tower",
    "VehiclePenetrationModel",
    "consume_interruption",
    "fast_fading_db",
    "fspl_db",
]
