"""Handoff state machine: panel attachment, 5G<->4G fallback.

The UE attaches to the panel offering the best received power.  Two kinds of
handoff appear in the paper's telemetry:

* **horizontal** -- the serving cell ID changes between two 5G panels;
* **vertical** -- the radio type flips between 5G NR and LTE, which happens
  when no panel can sustain the link (obstruction, range, dead zone).

Real modems add hysteresis (a new cell must beat the serving cell by a
margin before the UE switches) and a short service interruption accompanies
every switch; both matter for throughput traces, since the paper's maps show
persistent low-throughput "handoff patches".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.radio.panel import Panel, PanelDirectory


class RadioType(str, Enum):
    NR = "5G"
    LTE = "4G"


@dataclass(frozen=True)
class HandoffEvent:
    """What changed during one attachment decision."""

    horizontal: bool
    vertical: bool


@dataclass
class AttachmentState:
    """Current serving panel / radio type of a UE."""

    radio_type: RadioType = RadioType.LTE
    serving_panel_id: int | None = None
    interruption_s: float = 0.0  # residual outage from the last handoff
    nr_inhibit_s: float = 0.0  # cooldown before 5G may be re-added


@dataclass
class HandoffPolicy:
    """A3-style event-triggered handoff with hysteresis and fallback.

    Parameters
    ----------
    hysteresis_db:
        A candidate panel must exceed the serving panel's RSRP by this
        margin to trigger a horizontal handoff.
    nr_drop_dbm / nr_add_dbm:
        RSRP thresholds to drop 5G (vertical handoff to LTE) and to re-add
        5G once coverage returns; ``nr_add_dbm > nr_drop_dbm`` provides
        ping-pong protection.
    horizontal_outage_s / vertical_outage_s:
        Service interruption charged per handoff type; mmWave beam
        (re)acquisition after a vertical handoff is the slow case.
    reacquire_dwell_s:
        Minimum time the UE camps on LTE after losing 5G before it may
        try 5G again (time-to-trigger analogue; prevents ping-pong).
    """

    hysteresis_db: float = 8.0
    nr_drop_dbm: float = -92.0
    nr_add_dbm: float = -86.0
    horizontal_outage_s: float = 0.6
    vertical_outage_s: float = 1.8
    reacquire_dwell_s: float = 8.0

    def decide(
        self,
        state: AttachmentState,
        candidate_rsrp_dbm: dict[int, float],
    ) -> HandoffEvent:
        """Update ``state`` in place given per-panel RSRP and report changes."""
        best_id, best_rsrp = None, float("-inf")
        for panel_id, rsrp in candidate_rsrp_dbm.items():
            if rsrp > best_rsrp:
                best_id, best_rsrp = panel_id, rsrp

        horizontal = vertical = False
        on_nr = state.radio_type is RadioType.NR

        if on_nr:
            serving_rsrp = candidate_rsrp_dbm.get(
                state.serving_panel_id, float("-inf")
            )
            if serving_rsrp < self.nr_drop_dbm and best_rsrp < self.nr_add_dbm:
                # Nothing usable: fall back to LTE.
                state.radio_type = RadioType.LTE
                state.serving_panel_id = None
                state.interruption_s = self.vertical_outage_s
                state.nr_inhibit_s = self.reacquire_dwell_s
                vertical = True
            elif (
                best_id is not None
                and best_id != state.serving_panel_id
                and best_rsrp >= serving_rsrp + self.hysteresis_db
            ):
                state.serving_panel_id = best_id
                state.interruption_s = self.horizontal_outage_s
                horizontal = True
        else:
            if state.nr_inhibit_s > 0.0:
                state.nr_inhibit_s = max(0.0, state.nr_inhibit_s - 1.0)
            elif best_id is not None and best_rsrp >= self.nr_add_dbm:
                state.radio_type = RadioType.NR
                state.serving_panel_id = best_id
                state.interruption_s = self.vertical_outage_s
                vertical = True

        return HandoffEvent(horizontal=horizontal, vertical=vertical)


@dataclass
class HandoffTracker:
    """Counts and exposes per-second handoff indicator fields."""

    horizontal_count: int = 0
    vertical_count: int = 0
    last_event: HandoffEvent = field(
        default_factory=lambda: HandoffEvent(False, False)
    )

    def record(self, event: HandoffEvent) -> None:
        self.last_event = event
        if event.horizontal:
            self.horizontal_count += 1
        if event.vertical:
            self.vertical_count += 1


def consume_interruption(state: AttachmentState, dt_s: float) -> float:
    """Advance time and return the usable fraction of this step in [0, 1].

    During a handoff interruption no user data flows; a 1-second sample that
    contains 0.6 s of outage delivers only 40% of the link's throughput.
    """
    if state.interruption_s <= 0.0:
        return 1.0
    blocked = min(state.interruption_s, dt_s)
    state.interruption_s -= blocked
    return 1.0 - blocked / dt_s
