"""Signal-strength reporting: the fields a UE's modem exposes.

The paper parses LTE (rsrp, rsrq, rssi) and 5G NR (ssRsrp, ssRsrq, ssRssi)
from Android's raw ``SignalStrength`` object.  We synthesize these from the
link budget: RSRP tracks received power per resource element, RSRQ the
quality ratio, RSSI the wideband power.  Values are quantized and clamped to
the reporting ranges Android uses, including the occasional bogus reading
(the paper notes NR APIs "did not always provide meaningful data").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NR_RSRP_RANGE = (-140.0, -44.0)
NR_RSRQ_RANGE = (-20.0, -3.0)
LTE_RSRP_RANGE = (-140.0, -44.0)
LTE_RSRQ_RANGE = (-20.0, -3.0)
UNAVAILABLE = -9999.0  # Android's CellInfo "unavailable" sentinel analogue


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


@dataclass(frozen=True)
class SignalReport:
    """One second's worth of signal-strength fields."""

    nr_ss_rsrp: float
    nr_ss_rsrq: float
    nr_ss_rssi: float
    lte_rsrp: float
    lte_rsrq: float
    lte_rssi: float


@dataclass(frozen=True)
class SignalStrengthModel:
    """Derive Android-style signal fields from link-level quantities."""

    measurement_noise_db: float = 2.5
    unreliable_probability: float = 0.02  # NR report comes back unavailable

    def report(
        self,
        nr_rx_dbm: float | None,
        nr_sinr_db: float | None,
        lte_rx_dbm: float,
        rng: np.random.Generator,
    ) -> SignalReport:
        """Build a report; ``nr_*`` are None when the UE is on LTE only."""
        noise = lambda: float(rng.normal(0.0, self.measurement_noise_db))

        if nr_rx_dbm is None or rng.random() < self.unreliable_probability:
            nr_rsrp = nr_rsrq = nr_rssi = UNAVAILABLE
        else:
            # RSRP is per-resource-element power: wideband minus ~10log10(N_RE).
            nr_rsrp = _clamp(round(nr_rx_dbm - 27.0 + noise()), *NR_RSRP_RANGE)
            quality = -20.0 + 0.55 * max(min(nr_sinr_db or 0.0, 30.0), 0.0)
            nr_rsrq = _clamp(round(quality + noise() * 0.5), *NR_RSRQ_RANGE)
            nr_rssi = _clamp(round(nr_rx_dbm + noise()), -120.0, -20.0)

        lte_rsrp = _clamp(round(lte_rx_dbm - 22.0 + noise()), *LTE_RSRP_RANGE)
        lte_rsrq = _clamp(round(-10.5 + noise() * 0.7), *LTE_RSRQ_RANGE)
        lte_rssi = _clamp(round(lte_rx_dbm + noise()), -120.0, -20.0)
        return SignalReport(
            nr_ss_rsrp=nr_rsrp,
            nr_ss_rsrq=nr_rsrq,
            nr_ss_rssi=nr_rssi,
            lte_rsrp=lte_rsrp,
            lte_rsrq=lte_rsrq,
            lte_rssi=lte_rssi,
        )
