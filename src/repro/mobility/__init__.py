"""Mobility substrate: trajectories and walking/driving/stationary models."""

from repro.mobility.models import (
    DrivingModel,
    MobilityModel,
    StationaryModel,
    WalkingModel,
    kmph,
    mps,
)
from repro.mobility.trajectory import (
    TraversalState,
    Trajectory,
    rectangle_loop,
)

__all__ = [
    "DrivingModel",
    "MobilityModel",
    "StationaryModel",
    "TraversalState",
    "Trajectory",
    "WalkingModel",
    "kmph",
    "mps",
    "rectangle_loop",
]
