"""Trajectories: polylines that campaigns walk or drive repeatedly.

The paper's methodology is trajectory-centric: each area has a handful of
fixed routes (12 at the Intersection, NB/SB at the Airport, one 1300 m
Loop), and every route is traversed at least 30 times.  A
:class:`Trajectory` is an ordered polyline with constant-speed-independent
geometry; mobility models sample positions along it by arclength.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo.geometry import unit_to_heading


@dataclass(frozen=True)
class Trajectory:
    """A named polyline route in local-meter coordinates."""

    name: str
    waypoints: tuple[tuple[float, float], ...]
    closed: bool = False  # loops (e.g. the 1300 m Loop) wrap around

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")

    @property
    def segments(self) -> list[tuple[tuple[float, float], tuple[float, float]]]:
        pts = list(self.waypoints)
        if self.closed:
            pts.append(pts[0])
        return list(zip(pts[:-1], pts[1:]))

    @property
    def _segment_lengths(self) -> np.ndarray:
        return np.array([math.hypot(b[0] - a[0], b[1] - a[1])
                         for a, b in self.segments])

    @property
    def length_m(self) -> float:
        return float(self._segment_lengths.sum())

    def point_at(self, s_m: float) -> tuple[float, float]:
        """Position at arclength ``s_m`` from the start.

        Closed trajectories wrap; open trajectories clamp at the ends.
        """
        total = self.length_m
        if self.closed:
            s_m = s_m % total
        else:
            s_m = min(max(s_m, 0.0), total)
        for (a, b), seg_len in zip(self.segments, self._segment_lengths):
            if s_m <= seg_len or seg_len == 0.0:
                if seg_len == 0.0:
                    continue
                t = s_m / seg_len
                return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
            s_m -= seg_len
        return self.waypoints[0] if self.closed else self.waypoints[-1]

    def heading_at(self, s_m: float) -> float:
        """Compass heading of travel at arclength ``s_m``."""
        total = self.length_m
        if self.closed:
            s_m = s_m % total
        else:
            s_m = min(max(s_m, 0.0), total - 1e-9)
        for (a, b), seg_len in zip(self.segments, self._segment_lengths):
            if s_m < seg_len and seg_len > 0.0:
                return unit_to_heading(b[0] - a[0], b[1] - a[1])
            s_m -= seg_len
        last_a, last_b = self.segments[-1]
        return unit_to_heading(last_b[0] - last_a[0], last_b[1] - last_a[1])

    def reversed(self, name: str | None = None) -> "Trajectory":
        """The same route walked in the opposite direction."""
        return Trajectory(
            name=name or f"{self.name}-rev",
            waypoints=tuple(reversed(self.waypoints)),
            closed=self.closed,
        )


@dataclass
class TraversalState:
    """Progress of one pass along a trajectory."""

    trajectory: Trajectory
    s_m: float = 0.0
    finished: bool = False

    def advance(self, speed_mps: float, dt_s: float = 1.0) -> None:
        self.s_m += max(speed_mps, 0.0) * dt_s
        if not self.trajectory.closed and self.s_m >= self.trajectory.length_m:
            self.s_m = self.trajectory.length_m
            self.finished = True

    @property
    def position(self) -> tuple[float, float]:
        return self.trajectory.point_at(self.s_m)

    @property
    def heading_deg(self) -> float:
        return self.trajectory.heading_at(self.s_m)


def rectangle_loop(name: str, width_m: float, height_m: float,
                   origin: tuple[float, float] = (0.0, 0.0)) -> Trajectory:
    """Convenience builder for rectangular loop routes."""
    x0, y0 = origin
    return Trajectory(
        name=name,
        waypoints=(
            (x0, y0),
            (x0 + width_m, y0),
            (x0 + width_m, y0 + height_m),
            (x0, y0 + height_m),
        ),
        closed=True,
    )
