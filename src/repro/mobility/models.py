"""Mobility models: how fast the UE moves along its route each second.

Three modes appear in the dataset (Table 3): stationary, walking
(0-7 km/h) and driving (0-45 km/h with stop-and-go at traffic lights and
rail crossings).  Models are stateful speed generators; the simulator
advances a :class:`~repro.mobility.trajectory.TraversalState` by the speed
each model emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def kmph(speed_mps: float) -> float:
    return speed_mps * 3.6


def mps(speed_kmph: float) -> float:
    return speed_kmph / 3.6


class MobilityModel:
    """Interface: emit the speed (m/s) for the next 1-second step."""

    #: Google Activity Recognition label reported in telemetry.
    activity = "STILL"
    #: Whether the UE rides inside a vehicle (windshield mount, body loss).
    in_vehicle = False

    def reset(self, rng: np.random.Generator) -> None:  # pragma: no cover
        """Re-initialize internal state at the start of a pass."""

    def next_speed_mps(
        self, rng: np.random.Generator, s_m: float = 0.0,
        route_length_m: float | None = None,
    ) -> float:
        """Speed for the next second; ``s_m`` is arclength along the route."""
        raise NotImplementedError


@dataclass
class StationaryModel(MobilityModel):
    """A UE resting on a tripod or held still."""

    activity = "STILL"

    def next_speed_mps(
        self, rng: np.random.Generator, s_m: float = 0.0,
        route_length_m: float | None = None,
    ) -> float:
        return 0.0


@dataclass
class WalkingModel(MobilityModel):
    """Pedestrian pace with small second-to-second variation.

    Mean-reverting (AR(1)) around a preferred pace of ~1.4 m/s (5 km/h),
    clipped to the paper's observed 0-7 km/h walking range.
    """

    mean_speed_mps: float = 1.4
    sigma_mps: float = 0.25
    reversion: float = 0.7
    max_speed_mps: float = mps(7.0)
    _speed: float = field(default=1.4, repr=False)

    activity = "WALKING"

    def reset(self, rng: np.random.Generator) -> None:
        self._speed = float(
            np.clip(rng.normal(self.mean_speed_mps, self.sigma_mps),
                    0.0, self.max_speed_mps)
        )

    def next_speed_mps(
        self, rng: np.random.Generator, s_m: float = 0.0,
        route_length_m: float | None = None,
    ) -> float:
        drift = self.reversion * (self._speed - self.mean_speed_mps)
        self._speed = self.mean_speed_mps + drift + float(
            rng.normal(0.0, self.sigma_mps * math.sqrt(1 - self.reversion**2))
        )
        self._speed = float(np.clip(self._speed, 0.0, self.max_speed_mps))
        return self._speed


@dataclass
class DrivingModel(MobilityModel):
    """Urban stop-and-go driving between 0 and ~45 km/h.

    Alternates between CRUISE (accelerate toward a cruising speed) and
    STOP phases (decelerate to zero and idle).  Stops are triggered two
    ways, mirroring the Loop area: fixed ``traffic_lights`` (arclengths of
    signalled corners/rail crossings, each red with probability
    ``red_light_probability``) and a small per-second random stop chance
    (pedestrians, congestion).  Phone is windshield-mounted:
    ``in_vehicle``.
    """

    cruise_speed_mps: float = mps(38.0)
    accel_mps2: float = 1.8
    decel_mps2: float = 2.5
    stop_probability_per_s: float = 0.004
    traffic_lights: tuple[float, ...] = ()
    red_light_probability: float = 0.55
    light_lookahead_m: float = 40.0
    mean_stop_duration_s: float = 18.0
    max_speed_mps: float = mps(45.0)
    _speed: float = field(default=0.0, repr=False)
    _stop_timer: float = field(default=0.0, repr=False)
    _braking: bool = field(default=False, repr=False)
    _handled_light: float | None = field(default=None, repr=False)

    activity = "IN_VEHICLE"
    in_vehicle = True

    def reset(self, rng: np.random.Generator) -> None:
        self._speed = 0.0
        self._stop_timer = 0.0
        self._braking = False
        self._handled_light = None

    def _light_ahead(self, s_m: float, route_length_m: float | None) -> float | None:
        """The nearest traffic light within lookahead distance, if any."""
        for light in self.traffic_lights:
            gap = light - s_m
            if route_length_m:
                gap %= route_length_m
            if 0.0 <= gap <= self.light_lookahead_m:
                return light
        return None

    def next_speed_mps(
        self, rng: np.random.Generator, s_m: float = 0.0,
        route_length_m: float | None = None,
    ) -> float:
        if self._stop_timer > 0.0:
            self._stop_timer -= 1.0
            self._speed = 0.0
            return 0.0
        if self._braking:
            self._speed = max(0.0, self._speed - self.decel_mps2)
            if self._speed == 0.0:
                self._braking = False
                self._stop_timer = float(
                    max(2.0, rng.exponential(self.mean_stop_duration_s))
                )
            return self._speed
        light = self._light_ahead(s_m, route_length_m)
        if light is not None and light != self._handled_light:
            self._handled_light = light
            if rng.random() < self.red_light_probability:
                self._braking = True
                self._speed = max(0.0, self._speed - self.decel_mps2)
                return self._speed
        elif light is None:
            self._handled_light = None
        if rng.random() < self.stop_probability_per_s:
            self._braking = True
            self._speed = max(0.0, self._speed - self.decel_mps2)
            return self._speed
        jitter = float(rng.normal(0.0, 0.6))
        self._speed = float(np.clip(
            self._speed + self.accel_mps2 * 0.7 + jitter,
            0.0, min(self.cruise_speed_mps + 2.0, self.max_speed_mps),
        ))
        return self._speed
