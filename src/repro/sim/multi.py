"""Multi-UE co-simulation: several users sharing the same panels.

The paper's motivating scenario (Fig. 4) has four concurrent users --
Alice in a taxi, Bob walking the same way, Charlie walking opposite, and
Daisy in the park -- all streaming video over the same 5G deployment.
``MultiUeSimulator`` steps any number of UEs through an environment in
lock-step: each second every UE evaluates its own link, then a
:class:`~repro.net.scheduler.PanelScheduler` per panel divides airtime
among the UEs attached to it, and each UE's TCP stack sees its share.

This generalizes the stationary congestion experiment (Appendix A.1.4)
to arbitrary mobility, and is the substrate a "Lumos5G in action"
deployment study needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.env.environment import Environment
from repro.mobility.models import MobilityModel
from repro.mobility.trajectory import Trajectory, TraversalState
from repro.net.scheduler import PanelScheduler
from repro.radio.handoff import RadioType
from repro.sim.simulator import LinkSimulator, SimulationConfig


@dataclass
class UeSpec:
    """One participant in a multi-UE scenario."""

    name: str
    trajectory: Trajectory
    mobility: MobilityModel
    #: Optional start delay in seconds (session staggering).
    start_s: int = 0


@dataclass
class UeTrace:
    """Per-second outcome series for one UE."""

    name: str
    throughput_mbps: list[float] = field(default_factory=list)
    radio_type: list[str] = field(default_factory=list)
    serving_panel: list[int | None] = field(default_factory=list)
    position: list[tuple[float, float]] = field(default_factory=list)
    speed_mps: list[float] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.throughput_mbps, dtype=float)


class MultiUeSimulator:
    """Lock-step simulation of several UEs with shared panel airtime."""

    def __init__(
        self,
        env: Environment,
        specs: list[UeSpec],
        config: SimulationConfig | None = None,
        seed: int = 0,
    ):
        if not specs:
            raise ValueError("need at least one UE")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("UE names must be unique")
        self.env = env
        self.specs = specs
        self.config = config or SimulationConfig()
        self._rng = np.random.default_rng(seed)
        self._sims: dict[str, LinkSimulator] = {}
        self._traversals: dict[str, TraversalState] = {}
        for spec in specs:
            rng = np.random.default_rng(self._rng.integers(2**63))
            self._sims[spec.name] = LinkSimulator(env, config=self.config,
                                                  rng=rng)
            spec.mobility.reset(rng)
            self._traversals[spec.name] = TraversalState(spec.trajectory)

    def run(self, duration_s: int) -> dict[str, UeTrace]:
        """Simulate ``duration_s`` seconds; returns per-UE traces.

        Scheduling is two-pass per second: every active UE first computes
        its solo link outcome (full airtime), then panels with several
        attached UEs rescale their users' throughput by the PF airtime
        share.  LTE users are unaffected (macro capacity is not modelled
        as contended).
        """
        traces = {s.name: UeTrace(name=s.name) for s in self.specs}
        schedulers: dict[int, PanelScheduler] = {}

        with obs.span("sim.multi.run", ues=len(self.specs),
                      duration_s=duration_s):
            self._run(duration_s, traces, schedulers)
        return traces

    def _run(
        self,
        duration_s: int,
        traces: dict[str, UeTrace],
        schedulers: dict[int, PanelScheduler],
    ) -> None:
        for t in range(duration_s):
            solo: dict[str, tuple] = {}
            attached: dict[int, list[str]] = {}
            for spec in self.specs:
                trace = traces[spec.name]
                if t < spec.start_s:
                    trace.throughput_mbps.append(float("nan"))
                    trace.radio_type.append("-")
                    trace.serving_panel.append(None)
                    trace.position.append(self._traversals[spec.name].position)
                    trace.speed_mps.append(0.0)
                    continue
                sim = self._sims[spec.name]
                traversal = self._traversals[spec.name]
                route_len = (spec.trajectory.length_m
                             if spec.trajectory.closed else None)
                speed = spec.mobility.next_speed_mps(
                    sim.rng, s_m=traversal.s_m, route_length_m=route_len
                )
                traversal.advance(speed, 1.0)
                result = sim.step(
                    traversal.position, traversal.heading_deg, speed,
                    in_vehicle=spec.mobility.in_vehicle, airtime_share=1.0,
                )
                solo[spec.name] = (result, traversal.position, speed)
                if (result.radio_type is RadioType.NR
                        and result.serving_panel is not None):
                    attached.setdefault(
                        result.serving_panel.panel_id, []
                    ).append(spec.name)

            # PF airtime division on contended panels.
            obs_on = obs.enabled()
            if obs_on:
                obs.set_gauge("sim.multi.active_ues",
                              sum(len(u) for u in attached.values()))
            shared_rate: dict[str, float] = {}
            for panel_id, users in attached.items():
                if len(users) == 1:
                    continue
                if obs_on:
                    obs.inc("sim.contention.events_total")
                    obs.observe("sim.contention.ues_per_panel", len(users))
                scheduler = schedulers.setdefault(
                    panel_id, PanelScheduler(panel_id=panel_id)
                )
                scheduler.clear()
                for name in users:
                    scheduler.register(name, solo[name][0].throughput_mbps)
                shared_rate.update(scheduler.allocate())

            for name, (result, position, speed) in solo.items():
                trace = traces[name]
                tput = shared_rate.get(name, result.throughput_mbps)
                trace.throughput_mbps.append(tput)
                trace.radio_type.append(result.radio_type.value)
                trace.serving_panel.append(
                    result.serving_panel.panel_id
                    if result.serving_panel is not None else None
                )
                trace.position.append(position)
                trace.speed_mps.append(speed)
