"""Measurement simulator: per-second link simulation and campaigns."""

from repro.sim.collection import (
    CampaignConfig,
    run_area_campaign,
    run_campaign,
    run_congestion_experiment,
    run_side_by_side_4g5g,
)
from repro.sim.multi import MultiUeSimulator, UeSpec, UeTrace
from repro.sim.simulator import (
    LTE_MACRO_CELL_ID,
    LinkSimulator,
    SimulationConfig,
    StepResult,
    simulate_pass,
)

__all__ = [
    "CampaignConfig",
    "MultiUeSimulator",
    "UeSpec",
    "UeTrace",
    "LTE_MACRO_CELL_ID",
    "LinkSimulator",
    "SimulationConfig",
    "StepResult",
    "run_area_campaign",
    "run_campaign",
    "run_congestion_experiment",
    "run_side_by_side_4g5g",
    "simulate_pass",
]
