"""Measurement campaigns: repeated passes, special experiments.

``run_campaign`` mirrors the paper's methodology (Sec. 3.2): every
trajectory in an area is traversed repeatedly (the paper does >= 30 passes;
the default here is configurable so tests stay fast), on "different dates"
(fresh random state per pass), walking everywhere plus driving at the Loop.

Two appendix experiments get dedicated drivers:

* :func:`run_congestion_experiment` (A.1.4) -- four UEs side by side on one
  panel with staggered iPerf sessions;
* :func:`run_side_by_side_4g5g` (A.4) -- one UE pinned to LTE and one on 5G
  walking the Loop together.

Crash safety (docs/robustness.md): pass ``checkpoint_dir`` (or set
``REPRO_CHECKPOINT_DIR``) and every completed pass is persisted under a
content-addressed campaign fingerprint; re-running after an interruption
loads the finished passes and simulates only the rest, bit-identical to
an uninterrupted run because each pass owns an index-keyed seed.  The
``sim.pass_crash`` fault seam fires at the top of each pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro import obs
from repro.par import fingerprint, pmap, pmap_stream, root_sequence, spawn_seeds
from repro.resil import faults
from repro.resil.checkpoint import CheckpointStore, resolve_dir
from repro.env.areas import build_area
from repro.env.environment import Environment
from repro.mobility.models import (
    DrivingModel,
    MobilityModel,
    StationaryModel,
    WalkingModel,
)
from repro.datasets.frame import Table
from repro.geo.geometry import distance
from repro.net.scheduler import PanelScheduler
from repro.net.tcp import BulkTransferModel
from repro.radio.handoff import RadioType
from repro.sim.simulator import LinkSimulator, SimulationConfig, simulate_pass
from repro.ue.telemetry import (
    MODE_DRIVING,
    MODE_STATIONARY,
    MODE_WALKING,
    TelemetryRecord,
)

faults.register_point(
    "sim.pass_crash",
    "raise at the top of one campaign pass (keyed by run_id)",
)


@dataclass
class CampaignConfig:
    """How much data to collect and under which physics."""

    passes_per_trajectory: int = 30
    driving_passes: int = 30  # Loop only
    stationary_runs: int = 4
    stationary_duration_s: int = 120
    seed: int = 2020
    simulation: SimulationConfig = field(default_factory=SimulationConfig)

    def scaled(self, factor: float) -> "CampaignConfig":
        """A proportionally smaller campaign (for tests/benchmarks)."""
        return CampaignConfig(
            passes_per_trajectory=max(1, int(self.passes_per_trajectory * factor)),
            driving_passes=max(1, int(self.driving_passes * factor)),
            stationary_runs=max(1, int(self.stationary_runs * factor)),
            stationary_duration_s=self.stationary_duration_s,
            seed=self.seed,
            simulation=self.simulation,
        )


def _records_to_table(records: list[TelemetryRecord]) -> Table:
    return Table.from_records(records, TelemetryRecord.field_names())


def _corner_arclengths(trajectory) -> tuple[float, ...]:
    """Arclength positions of a polyline's interior corners (waypoints)."""
    out, s = [0.0], 0.0
    for (a, b) in trajectory.segments:
        s += ((b[0] - a[0]) ** 2 + (b[1] - a[1]) ** 2) ** 0.5
        out.append(s)
    return tuple(out[:-1])


def run_area_campaign(
    env: Environment,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    store_dir: str | os.PathLike | None = None,
    chunk_rows: int | None = None,
):
    """Collect the full campaign for one area and return the raw log.

    ``workers`` fans the per-pass simulations out over a process pool
    (``None`` defers to ``REPRO_WORKERS``; <=1 runs serially).  Every
    pass draws from its own index-keyed seed, so the returned Table is
    bit-identical at any worker count.

    ``checkpoint_dir`` (``None`` defers to ``REPRO_CHECKPOINT_DIR``;
    unset disables checkpointing) persists each completed pass so an
    interrupted campaign resumes from where it died -- bit-identical,
    since resumed passes are the very arrays the original run produced
    and fresh passes re-derive the same per-index seeds.

    ``store_dir`` switches to the out-of-core path: instead of building
    one in-memory Table, each pass's columns are appended to a
    :class:`repro.colstore.ShardWriter` as they complete (a bounded
    ``pmap_stream`` window keeps only in-flight passes in RAM) and a
    :class:`repro.colstore.ChunkReader` over the finished store is
    returned.  Column values are identical to the in-memory path
    (``docs/colstore.md``); ``chunk_rows`` sets the shard size.
    Checkpoint resume composes with the store path: resumed passes are
    appended straight from their checkpoint arrays.
    """
    config = config or CampaignConfig()
    with obs.span("sim.campaign", area=env.name,
                  passes=config.passes_per_trajectory):
        if store_dir is not None:
            result = _store_area_campaign(
                env, config, workers=workers,
                checkpoint_dir=checkpoint_dir,
                store_dir=store_dir, chunk_rows=chunk_rows,
            )
        else:
            result = _run_area_campaign(env, config, workers=workers,
                                        checkpoint_dir=checkpoint_dir)
    obs.get_logger("sim").info(
        "campaign", area=env.name, rows=len(result),
        passes=config.passes_per_trajectory,
    )
    return result


@dataclass(frozen=True)
class _PassTask:
    """One schedulable traversal of the campaign plan."""

    kind: str  # "walk" | "drive" | "stationary"
    trajectory: str
    run_id: int
    duration_s: int | None
    traffic_lights: tuple[float, ...] = ()


def _campaign_plan(env: Environment, config: CampaignConfig
                   ) -> list[_PassTask]:
    """The ordered pass list (run_id order, matching the paper's plan)."""
    tasks: list[_PassTask] = []
    run_id = 0
    for name in sorted(env.trajectories):
        trajectory = env.trajectories[name]
        # Closed loops never "arrive": size the pass to one full lap.
        walk_duration = (
            int(trajectory.length_m / 1.25) if trajectory.closed else None
        )
        for _ in range(config.passes_per_trajectory):
            tasks.append(_PassTask("walk", name, run_id, walk_duration))
            run_id += 1
        if env.name == "Loop":
            # Traffic lights / rail crossings sit at the loop's corners.
            lights = _corner_arclengths(trajectory)
            drive_duration = int(trajectory.length_m / 6.0)
            for _ in range(config.driving_passes):
                tasks.append(_PassTask("drive", name, run_id,
                                       drive_duration, lights))
                run_id += 1
    # A few stationary sessions at the start of each trajectory.
    for name in sorted(env.trajectories):
        for _ in range(config.stationary_runs):
            tasks.append(_PassTask("stationary", name, run_id,
                                   config.stationary_duration_s))
            run_id += 1
    return tasks


def _simulate_pass_task(
    env: Environment,
    config: SimulationConfig,
    item: tuple[_PassTask, np.random.SeedSequence],
) -> list[TelemetryRecord]:
    """Pure worker: one pass from its own seed (pmap task function)."""
    task, seed = item
    faults.inject("sim.pass_crash", key=task.run_id)
    rng = np.random.default_rng(seed)
    trajectory = env.trajectories[task.trajectory]
    if task.kind == "walk":
        mobility: MobilityModel = WalkingModel()
        mode = MODE_WALKING
    elif task.kind == "drive":
        mobility = DrivingModel(traffic_lights=task.traffic_lights)
        mode = MODE_DRIVING
    else:
        mobility = StationaryModel()
        mode = MODE_STATIONARY
    return simulate_pass(
        env, trajectory, mobility, run_id=task.run_id, rng=rng,
        config=config, mobility_mode=mode, duration_s=task.duration_s,
    )


def _pass_columns(records: list[TelemetryRecord]
                  ) -> dict[str, np.ndarray]:
    """One pass as column arrays (the checkpoint payload)."""
    return {
        f: np.asarray([getattr(r, f) for r in records])
        for f in TelemetryRecord.field_names()
    }


def _records_from_columns(columns: dict[str, np.ndarray]
                          ) -> list[TelemetryRecord]:
    """Inverse of :func:`_pass_columns`, exact to the last bit.

    ``tolist()`` restores native Python scalars (int/float/str), so a
    record round-tripped through a checkpoint equals the original and
    ``_records_to_table`` over a resumed run matches an uninterrupted
    one column-for-column.
    """
    cols = [columns[f].tolist() for f in TelemetryRecord.field_names()]
    return [TelemetryRecord(*vals) for vals in zip(*cols)]


def _canonical_columns(columns: dict[str, np.ndarray]
                       ) -> dict[str, np.ndarray]:
    """Pass columns cast to the store's canonical schema.

    Per-pass dtypes are data-dependent (an all-LTE pass yields integer
    ``nr_ss_*`` sentinels where a mixed campaign promotes to float64),
    so the out-of-core path pins every column to its
    :class:`TelemetryRecord` annotation: int -> int64, float -> float64,
    str -> unicode.  Values are unchanged -- telemetry ints are exactly
    representable in float64 -- so the store read back equals the
    in-memory Table column for column.
    """
    from dataclasses import fields as _dc_fields

    out = dict(columns)
    for f in _dc_fields(TelemetryRecord):
        arr = out[f.name]
        if f.type == "int":
            out[f.name] = arr.astype(np.int64)
        elif f.type == "float":
            out[f.name] = arr.astype(np.float64)
        else:
            out[f.name] = arr.astype(str)
    return out


def _campaign_fingerprint(env: Environment, config: CampaignConfig) -> str:
    """Content address of one area campaign's checkpoint bucket.

    Any change to the campaign config, the area, or the telemetry
    schema lands in a fresh bucket, so stale checkpoints can never leak
    into a differently-configured run.
    """
    return fingerprint({
        "version": 1,
        "area": env.name,
        "schema": TelemetryRecord.field_names(),
        "campaign": config,
    })


def _simulate_checkpointed_pass_task(
    env: Environment,
    config: SimulationConfig,
    root: str,
    fp: str,
    item: tuple[int, _PassTask, np.random.SeedSequence],
) -> list[TelemetryRecord]:
    """One pass that persists its own checkpoint before returning.

    Workers write their own parts (atomically, via NpzCache) so a crash
    mid-campaign loses only the passes still in flight.
    """
    index, task, seed = item
    records = _simulate_pass_task(env, config, (task, seed))
    CheckpointStore(root, fp).save(index, _pass_columns(records))
    return records


def _run_area_campaign(
    env: Environment,
    config: CampaignConfig,
    workers: int | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
) -> Table:
    tasks = _campaign_plan(env, config)
    # One child seed per pass, keyed by (campaign seed, area, pass index):
    # execution order and worker count cannot change any draw.
    seeds = spawn_seeds(root_sequence(config.seed, env.name), len(tasks))
    root = resolve_dir(checkpoint_dir)
    if root is None:
        per_pass = pmap(
            partial(_simulate_pass_task, env, config.simulation),
            list(zip(tasks, seeds)),
            workers=workers,
            label="sim.campaign",
        )
    else:
        fp = _campaign_fingerprint(env, config)
        store = CheckpointStore(root, fp)
        per_pass = [None] * len(tasks)
        pending: list[tuple[int, _PassTask, np.random.SeedSequence]] = []
        for i, (task, seed) in enumerate(zip(tasks, seeds)):
            columns = store.load(i)
            if columns is not None:
                per_pass[i] = _records_from_columns(columns)
                obs.inc("resil.checkpoint.passes_resumed_total")
            else:
                pending.append((i, task, seed))
        if pending:
            done = pmap(
                partial(_simulate_checkpointed_pass_task, env,
                        config.simulation, str(root), fp),
                pending,
                workers=workers,
                label="sim.campaign",
            )
            for (i, _, _), recs in zip(pending, done):
                per_pass[i] = recs
    records: list[TelemetryRecord] = []
    for recs in per_pass:
        records.extend(recs)
    return _records_to_table(records)


def _store_area_campaign(
    env: Environment,
    config: CampaignConfig,
    workers: int | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    store_dir: str | os.PathLike | None = None,
    chunk_rows: int | None = None,
):
    """Out-of-core campaign: stream passes into a columnar store.

    Identical plan, seeds and per-pass values as
    :func:`_run_area_campaign`; the difference is purely where rows go.
    Passes are consumed *in run order* from a bounded
    :func:`repro.par.pmap_stream` window and appended to a
    :class:`repro.colstore.ShardWriter`, so peak memory is the in-flight
    window plus one open chunk -- never the whole campaign.

    With checkpointing on, already-completed passes are loaded lazily at
    their consume point (one at a time) and pending ones streamed from
    the pool; an entry that turns out corrupt at consume time is
    re-simulated serially from its index-keyed seed.  The store is
    always rewritten from scratch -- resume applies to the *pass*
    checkpoints, which remain the unit of crash safety.
    """
    from repro.colstore import ChunkReader, DEFAULT_CHUNK_ROWS, ShardWriter

    tasks = _campaign_plan(env, config)
    seeds = spawn_seeds(root_sequence(config.seed, env.name), len(tasks))
    fp = _campaign_fingerprint(env, config)
    writer = ShardWriter(
        store_dir,
        chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
        meta={
            "kind": "campaign_raw",
            "area": env.name,
            "campaign_fingerprint": fp,
        },
    )
    root = resolve_dir(checkpoint_dir)
    with writer:
        if root is None:
            stream = pmap_stream(
                partial(_simulate_pass_task, env, config.simulation),
                list(zip(tasks, seeds)),
                workers=workers,
                label="sim.campaign",
            )
            for records in stream:
                writer.append(_canonical_columns(_pass_columns(records)))
        else:
            store = CheckpointStore(root, fp)
            resumed = set(store.completed(len(tasks)))
            pending = [
                (i, task, seed)
                for i, (task, seed) in enumerate(zip(tasks, seeds))
                if i not in resumed
            ]
            stream = iter(pmap_stream(
                partial(_simulate_checkpointed_pass_task, env,
                        config.simulation, str(root), fp),
                pending,
                workers=workers,
                label="sim.campaign",
            ))
            for i, (task, seed) in enumerate(zip(tasks, seeds)):
                if i in resumed:
                    columns = store.load(i)
                    if columns is None:
                        # Entry vanished/corrupted between the scan and
                        # now: recompute from the same index-keyed seed.
                        columns = _pass_columns(_simulate_checkpointed_pass_task(
                            env, config.simulation, str(root), fp,
                            (i, task, seed),
                        ))
                    else:
                        obs.inc("resil.checkpoint.passes_resumed_total")
                else:
                    columns = _pass_columns(next(stream))
                writer.append(_canonical_columns(columns))
    return ChunkReader(store_dir)


def run_campaign(
    areas: list[str] | None = None,
    config: CampaignConfig | None = None,
    workers: int | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    store_dir: str | os.PathLike | None = None,
    chunk_rows: int | None = None,
) -> dict:
    """Run campaigns for several areas; returns ``{area_name: raw_table}``.

    ``workers`` and ``checkpoint_dir`` are forwarded to
    :func:`run_area_campaign` (per-pass fan-out / crash-safe resume
    within each area); per-area seeding keeps the result independent of
    how the passes were executed.

    ``store_dir`` switches every area to the out-of-core path: area
    ``name`` lands in ``<store_dir>/<name>/`` and the dict values are
    :class:`repro.colstore.ChunkReader` handles instead of Tables.
    """
    areas = areas or ["Airport", "Intersection", "Loop"]
    out = {}
    for name in areas:
        area_store = (
            None if store_dir is None else os.path.join(str(store_dir), name)
        )
        out[name] = run_area_campaign(
            build_area(name), config, workers=workers,
            checkpoint_dir=checkpoint_dir,
            store_dir=area_store, chunk_rows=chunk_rows,
        )
    return out


# --------------------------------------------------------------------------- #
# Appendix A.1.4: multi-UE congestion
# --------------------------------------------------------------------------- #


def run_congestion_experiment(
    n_ues: int = 4,
    stagger_s: int = 60,
    tail_s: int = 60,
    seed: int = 7,
    config: SimulationConfig | None = None,
) -> dict[str, list[float]]:
    """Staggered iPerf sessions on one Airport panel (Fig. 21).

    UE_k starts at ``k * stagger_s``; all sessions end together.  All UEs
    sit ~25 m in front of the south panel with clear LoS.  Returns the
    per-second throughput series (Mbps) per UE, NaN before a UE starts.
    """
    env = build_area("Airport")
    config = config or SimulationConfig()
    rng = np.random.default_rng(seed)
    position = (0.0, 25.0)  # 25 m in front of the south panel, on boresight
    panel = env.panels.get(101)

    sims = []
    for _ in range(n_ues):
        sim = LinkSimulator(env, config=config, rng=rng)
        sim.tcp = BulkTransferModel()
        sims.append(sim)

    total_s = stagger_s * (n_ues - 1) + tail_s
    series: dict[str, list[float]] = {f"UE{k + 1}": [] for k in range(n_ues)}
    scheduler = PanelScheduler(panel_id=panel.panel_id)

    for t in range(total_s):
        active = [k for k in range(n_ues) if t >= k * stagger_s]
        scheduler.clear()
        phy_rates: dict[int, float] = {}
        for k in active:
            sim = sims[k]
            # Evaluate the solo PHY rate at full airtime, then let the PF
            # scheduler split airtime among the active sessions.
            result = sim.step(
                position, heading_deg=180.0, speed_mps=0.0,
                in_vehicle=False, airtime_share=1.0,
            )
            if result.radio_type is RadioType.NR:
                phy_rates[k] = result.throughput_mbps
                scheduler.register(f"UE{k + 1}", result.throughput_mbps)
            else:
                phy_rates[k] = result.throughput_mbps
        alloc = scheduler.allocate()
        for k in range(n_ues):
            if k not in active:
                series[f"UE{k + 1}"].append(float("nan"))
            else:
                shared = alloc.get(f"UE{k + 1}", phy_rates.get(k, 0.0))
                series[f"UE{k + 1}"].append(shared)
    return series


# --------------------------------------------------------------------------- #
# Appendix A.4: side-by-side 4G vs 5G walk
# --------------------------------------------------------------------------- #


def run_side_by_side_4g5g(
    passes: int = 30,
    seed: int = 11,
    config: SimulationConfig | None = None,
) -> tuple[Table, Table]:
    """Two phones walking the Loop together: one on 5G, one locked to LTE.

    Returns ``(table_5g, table_4g)`` raw logs.  The 4G phone experiences
    the omnidirectional macro link, whose throughput is far less sensitive
    to micro-location -- the property A.4 quantifies.
    """
    env = build_area("Loop")
    config = config or SimulationConfig()
    rng = np.random.default_rng(seed)
    records_5g: list[TelemetryRecord] = []
    records_4g: list[TelemetryRecord] = []
    trajectory = env.trajectories["LOOP-CW"]

    for run in range(passes):
        recs = simulate_pass(
            env, trajectory, WalkingModel(), run_id=run, rng=rng,
            config=config, mobility_mode=MODE_WALKING, duration_s=600,
        )
        records_5g.extend(recs)
        # The LTE phone walks the identical ground truth; reuse positions.
        lte_rng = np.random.default_rng(seed * 1000 + run)
        for rec in recs:
            d = min(
                distance(p.position, (rec.true_x_m, rec.true_y_m))
                for p in env.panels.panels
            )
            lte_tput = config.lte.throughput_mbps(d, lte_rng)
            clone = TelemetryRecord(**{
                f: getattr(rec, f) for f in TelemetryRecord.field_names()
            })
            clone.radio_type = RadioType.LTE.value
            clone.throughput_mbps = lte_tput
            clone.cell_id = 9999
            records_4g.append(clone)
    return _records_to_table(records_5g), _records_to_table(records_4g)
