"""Discrete-time measurement simulator.

``LinkSimulator`` reproduces, one second at a time, the full chain the
paper measures through: UE position/heading/speed -> per-panel link budget
(path loss, antenna pattern, obstacle penetration, body/vehicle blockage,
correlated shadowing) -> handoff decisions -> serving-link SINR with fast
fading -> PF airtime share -> parallel-TCP goodput, alongside the noisy
sensor readings and signal-strength reports that the monitoring app logs.

``simulate_pass`` drives one traversal of a trajectory and emits the raw
:class:`~repro.ue.telemetry.TelemetryRecord` rows.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.env.environment import Environment
from repro.geo.geometry import distance, mobility_angle, positional_angle
from repro.mobility.models import MobilityModel, kmph
from repro.mobility.trajectory import Trajectory, TraversalState
from repro.net.scheduler import CellLoadModel
from repro.net.tcp import BulkTransferModel
from repro.radio.beams import BeamCodebook, BeamTracker
from repro.radio.blockage import (
    BodyBlockageModel,
    PedestrianBlockageModel,
    VehiclePenetrationModel,
)
from repro.radio.handoff import (
    AttachmentState,
    HandoffPolicy,
    HandoffTracker,
    RadioType,
    consume_interruption,
)
from repro.radio.link import LinkBudget, LteLinkModel
from repro.radio.panel import Panel
from repro.radio.propagation import (
    PathLossModel,
    ShadowingProcess,
    SpatialShadowingField,
    fast_fading_db,
)
from repro.radio.signal import SignalStrengthModel
from repro.ue.device import UserEquipment
from repro.ue.telemetry import TelemetryRecord

LTE_MACRO_CELL_ID = 9999


@dataclass
class SimulationConfig:
    """Tunable physics/protocol knobs for a campaign."""

    path_loss: PathLossModel = field(default_factory=PathLossModel)
    link_budget: LinkBudget = field(default_factory=LinkBudget)
    lte: LteLinkModel = field(default_factory=LteLinkModel)
    handoff: HandoffPolicy = field(default_factory=HandoffPolicy)
    body_blockage: BodyBlockageModel = field(default_factory=BodyBlockageModel)
    vehicle: VehiclePenetrationModel = field(
        default_factory=VehiclePenetrationModel
    )
    pedestrian: PedestrianBlockageModel = field(
        default_factory=PedestrianBlockageModel
    )
    signals: SignalStrengthModel = field(default_factory=SignalStrengthModel)
    cell_load: CellLoadModel = field(default_factory=CellLoadModel)
    #: Per-run systematic offset (weather, device warmth, tower state...);
    #: the run-to-run component of the paper's "uncontrollable" variation.
    run_offset_sigma_db: float = 1.2
    #: Reflection path: fraction of blocked-path loss recovered when a
    #: blocker offers reflectivity r; loss' = pen_loss * (1 - r * this).
    reflection_recovery: float = 0.9
    #: Static spatial shadowing (reproducible across runs at a location).
    spatial_shadow_sigma_db: float = 3.5
    spatial_shadow_correlation_m: float = 15.0
    #: Residual per-run temporal shadowing on top of the spatial field.
    temporal_shadow_sigma_db: float = 0.8
    #: Fraction of instantaneous fast-fading variance surviving the
    #: 1-second throughput averaging (thousands of TTIs per sample).
    fading_averaging: float = 0.35
    #: White multiplicative jitter on per-second goodput (scheduler grant
    #: granularity, RLC retransmissions, iPerf interval alignment).
    throughput_jitter_sigma: float = 0.10
    #: Optional explicit beam management.  When set, serving-panel links
    #: additionally gain/lose the codebook beam (mis)alignment term --
    #: the mechanistic version of the abstract tracking loss.
    beams: BeamCodebook | None = None
    beam_sweep_period_s: float = 1.28
    #: Seasonal LoS/foliage degradation applied to every panel link
    #: (leaves on trees, deployment aging).  The drifting-campaign
    #: harness (repro.rollout) ramps this between phases to shift the
    #: throughput distribution under a serving model; 0.0 is the exact
    #: pre-existing channel.
    seasonal_foliage_db: float = 0.0


@dataclass
class StepResult:
    """Everything the simulator knows about one second (pre-telemetry)."""

    throughput_mbps: float
    radio_type: RadioType
    serving_panel: Panel | None
    horizontal_handoff: bool
    vertical_handoff: bool
    sinr_db: float | None
    nr_rx_dbm: float | None


class LinkSimulator:
    """Stateful per-run radio/transport simulator for a single UE."""

    def __init__(
        self,
        env: Environment,
        config: SimulationConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.env = env
        self.config = config or SimulationConfig()
        self.rng = rng or np.random.default_rng()
        self._shadowing: dict[int, ShadowingProcess] = {}
        self._fields: dict[int, SpatialShadowingField] = {}
        cfg = self.config
        # Stable across processes (unlike hash()), so the spatial shadowing
        # field of an area is identical in every campaign.
        env_seed = zlib.crc32(env.name.encode()) % (2**31)
        for panel in env.panels.panels:
            self._fields[panel.panel_id] = SpatialShadowingField(
                sigma_db=cfg.spatial_shadow_sigma_db,
                correlation_length_m=cfg.spatial_shadow_correlation_m,
                seed=env_seed + panel.panel_id,
            )
        self._beam_trackers: dict[int, BeamTracker] = {}
        self.attachment = AttachmentState()
        self.tracker = HandoffTracker()
        self.tcp = BulkTransferModel()
        self.run_offset_db = 0.0
        self._prev_serving_los: bool | None = None
        self.reset()

    def reset(self) -> None:
        """Start a fresh measurement run (new shadowing, new TCP state)."""
        cfg = self.config
        self._shadowing = {}
        for panel in self.env.panels.panels:
            proc = ShadowingProcess(
                sigma_db=cfg.temporal_shadow_sigma_db,
                decorrelation_distance_m=10.0,
            )
            proc.reset(self.rng)
            self._shadowing[panel.panel_id] = proc
        if cfg.beams is not None:
            self._beam_trackers = {
                panel.panel_id: BeamTracker(
                    cfg.beams, sweep_period_s=cfg.beam_sweep_period_s
                )
                for panel in self.env.panels.panels
            }
        self.attachment = AttachmentState()
        self.tracker = HandoffTracker()
        self.tcp = BulkTransferModel()
        self._prev_serving_los = None
        self.run_offset_db = float(
            self.rng.normal(0.0, cfg.run_offset_sigma_db)
        )

    # ------------------------------------------------------------------ #

    def _panel_path_loss_db(
        self,
        panel: Panel,
        ue_xy: tuple[float, float],
        heading_deg: float,
        speed_mps: float,
        in_vehicle: bool,
    ) -> tuple[float, bool]:
        """Slow-fading loss (path + penetration + blockage + shadowing).

        Returns (loss_db_from_EIRP_reference, los) where the loss already
        accounts for antenna gain toward the UE, so the caller only adds
        tx power.  Used both for handoff RSRP and as the base of the
        serving-link SINR.
        """
        cfg = self.config
        d = distance(panel.position, ue_xy)
        pen_db = self.env.obstacles.penetration_loss_db(panel.position, ue_xy)
        los = pen_db <= 15.0
        # A reflective blocker partially restores a blocked path (the
        # paper's "signal properly deflected by the environment").
        if pen_db > 0.0:
            refl = self.env.obstacles.best_reflectivity(panel.position, ue_xy)
            pen_db *= 1.0 - refl * cfg.reflection_recovery
            pen_db += 3.0  # residual reflection loss even for perfect mirrors
        pl = cfg.path_loss.mean_loss_db(d, los)
        shadow = (
            self._fields[panel.panel_id].value_db(*ue_xy)
            + self._shadowing[panel.panel_id].step(speed_mps, 1.0, self.rng)
        )
        theta_m = mobility_angle(panel.bearing_deg, heading_deg)
        body_db = cfg.body_blockage.loss_db(theta_m, driving=in_vehicle)
        vehicle_db = cfg.vehicle.loss_db(kmph(speed_mps), in_vehicle)
        beam_db = 0.0
        if cfg.beams is not None:
            beam_db = self._beam_trackers[panel.panel_id].step(
                panel.position, panel.bearing_deg, ue_xy, 1.0
            )
        loss = (
            pl + min(pen_db, 60.0) + shadow + body_db + vehicle_db
            + cfg.seasonal_foliage_db
            - panel.gain_toward_db(ue_xy) - beam_db - self.run_offset_db
        )
        return loss, los

    def step(
        self,
        ue_xy: tuple[float, float],
        heading_deg: float,
        speed_mps: float,
        in_vehicle: bool,
        airtime_share: float | None = None,
    ) -> StepResult:
        """Advance one second at the given kinematic state."""
        cfg = self.config

        rsrp: dict[int, float] = {}
        los_by_panel: dict[int, bool] = {}
        for panel in self.env.panels.panels:
            loss, los = self._panel_path_loss_db(
                panel, ue_xy, heading_deg, speed_mps, in_vehicle
            )
            rsrp[panel.panel_id] = panel.tx_power_dbm - loss
            los_by_panel[panel.panel_id] = los

        event = cfg.handoff.decide(self.attachment, rsrp)
        self.tracker.record(event)
        usable = consume_interruption(self.attachment, 1.0)

        obs_on = obs.enabled()
        if obs_on:
            obs.inc("sim.steps_total")
            if event.horizontal:
                obs.inc("sim.handoff.horizontal_total")
            if event.vertical:
                obs.inc("sim.handoff.vertical_total")

        if airtime_share is None:
            airtime_share = cfg.cell_load.airtime_share(1, self.rng)

        if self.attachment.radio_type is RadioType.NR:
            panel = self.env.panels.get(self.attachment.serving_panel_id)
            rx_dbm = rsrp[panel.panel_id]
            serving_los = los_by_panel[panel.panel_id]
            if obs_on and self._prev_serving_los is not None \
                    and serving_los != self._prev_serving_los:
                obs.inc("sim.blockage.transitions_total")
            self._prev_serving_los = serving_los
            fading = cfg.fading_averaging * fast_fading_db(
                serving_los, self.rng
            )
            ped_db = cfg.pedestrian.sample_loss_db(self.rng)
            sinr = cfg.link_budget.sinr_db(
                tx_power_dbm=rx_dbm,  # rx already folds gains and losses in
                tx_gain_db=0.0,
                path_loss_db=0.0,
                extra_loss_db=ped_db - fading,
            )
            phy = cfg.link_budget.phy_rate_bps(sinr) * airtime_share
            if phy <= 0.0:
                # Modem lost the beam this second; force vertical handoff.
                self.attachment.radio_type = RadioType.LTE
                self.attachment.serving_panel_id = None
                self.attachment.interruption_s = cfg.handoff.vertical_outage_s
                self.attachment.nr_inhibit_s = cfg.handoff.reacquire_dwell_s
                self.tracker.record(
                    type(event)(horizontal=False, vertical=True)
                )
                if obs_on:
                    obs.inc("sim.handoff.vertical_total")
                    obs.inc("sim.beam_loss_total")
                self._prev_serving_los = None
                tput = 0.0
                return StepResult(
                    throughput_mbps=tput,
                    radio_type=RadioType.LTE,
                    serving_panel=None,
                    horizontal_handoff=event.horizontal,
                    vertical_handoff=True,
                    sinr_db=sinr,
                    nr_rx_dbm=rx_dbm,
                )
            goodput = self.tcp.step(phy, usable_fraction=usable)
            goodput *= self.rng.lognormal(0.0, cfg.throughput_jitter_sigma)
            # iPerf intervals cannot report more than the deployment's
            # practical ceiling (~2 Gbps on 2019 commercial mmWave).
            goodput = min(goodput, 2000e6)
            if obs_on:
                obs.observe("sim.step.throughput_mbps", goodput / 1e6)
            return StepResult(
                throughput_mbps=goodput / 1e6,
                radio_type=RadioType.NR,
                serving_panel=panel,
                horizontal_handoff=event.horizontal,
                vertical_handoff=event.vertical,
                sinr_db=sinr,
                nr_rx_dbm=rx_dbm,
            )

        # LTE fallback: throughput from the macro model, TCP still ramps.
        self._prev_serving_los = None
        nearest = self.env.panels.nearest(ue_xy)
        d_macro = distance(nearest.position, ue_xy)
        lte_mbps = cfg.lte.throughput_mbps(d_macro, self.rng)
        goodput = self.tcp.step(lte_mbps * 1e6, usable_fraction=usable)
        if obs_on:
            obs.inc("sim.lte_fallback_steps_total")
            obs.observe("sim.step.throughput_mbps", goodput / 1e6)
        return StepResult(
            throughput_mbps=goodput / 1e6,
            radio_type=RadioType.LTE,
            serving_panel=None,
            horizontal_handoff=event.horizontal,
            vertical_handoff=event.vertical,
            sinr_db=None,
            nr_rx_dbm=None,
        )

    # ------------------------------------------------------------------ #

    def lte_rx_dbm(self, ue_xy: tuple[float, float]) -> float:
        """Rough LTE macro received power for signal reporting."""
        nearest = self.env.panels.nearest(ue_xy)
        d = max(distance(nearest.position, ue_xy), 10.0)
        return -60.0 - 30.0 * math.log10(d / 10.0)


def simulate_pass(
    env: Environment,
    trajectory: Trajectory,
    mobility: MobilityModel,
    run_id: int,
    rng: np.random.Generator,
    config: SimulationConfig | None = None,
    ue: UserEquipment | None = None,
    mobility_mode: str = "walking",
    max_steps: int = 3600,
    duration_s: int | None = None,
) -> list[TelemetryRecord]:
    """Simulate one traversal of ``trajectory`` and log Table-1 records.

    For open trajectories the pass ends on arrival; closed loops and
    stationary runs end after ``duration_s`` seconds (or ``max_steps``).
    """
    sim = LinkSimulator(env, config=config, rng=rng)
    ue = ue or UserEquipment()
    ue.reset(rng)
    mobility.reset(rng)
    traversal = TraversalState(trajectory=trajectory)
    records: list[TelemetryRecord] = []

    limit = duration_s if duration_s is not None else max_steps
    route_length = trajectory.length_m if trajectory.closed else None
    cfg = sim.config
    for t in range(limit):
        speed = mobility.next_speed_mps(
            rng, s_m=traversal.s_m, route_length_m=route_length
        )
        traversal.advance(speed, 1.0)
        pos = traversal.position
        heading = traversal.heading_deg

        # Background subscribers sharing the panel (Appendix A.1.4); the
        # sampled count is logged as a carrier-side oracle field.
        background = cfg.cell_load.background_ues(rng)
        result = sim.step(
            pos, heading, speed, in_vehicle=mobility.in_vehicle,
            airtime_share=1.0 / (1 + background),
        )

        (meas_x, meas_y), gps_acc = ue.gps.read(pos, rng)
        lat, lon = env.projection.to_latlon(meas_x, meas_y)
        compass, compass_acc = ue.compass.read(heading, rng)
        meas_speed = ue.speedometer.read(speed, rng)
        activity = ue.activity.read(mobility.activity, rng)

        signal = sim.config.signals.report(
            nr_rx_dbm=result.nr_rx_dbm,
            nr_sinr_db=result.sinr_db,
            lte_rx_dbm=sim.lte_rx_dbm(pos),
            rng=rng,
        )

        if env.panel_survey_available and result.serving_panel is not None:
            # The app derives tower geometry from its *measured* location
            # and compass, as on a real UE -- the survey only supplies the
            # panel's position/orientation.
            panel = result.serving_panel
            measured_pos = (meas_x, meas_y)
            dist = distance(panel.position, measured_pos)
            theta_p = positional_angle(panel.position, panel.bearing_deg,
                                       measured_pos)
            theta_m = mobility_angle(panel.bearing_deg, compass)
        else:
            dist = theta_p = theta_m = float("nan")

        cell_id = (result.serving_panel.panel_id
                   if result.serving_panel is not None else LTE_MACRO_CELL_ID)
        records.append(TelemetryRecord(
            run_id=run_id,
            timestamp_s=t,
            area=env.name,
            trajectory=trajectory.name,
            mobility_mode=mobility_mode,
            latitude=lat,
            longitude=lon,
            gps_accuracy_m=gps_acc,
            detected_activity=activity,
            moving_speed_mps=meas_speed,
            compass_direction_deg=compass,
            compass_accuracy_deg=compass_acc,
            throughput_mbps=result.throughput_mbps,
            radio_type=result.radio_type.value,
            cell_id=cell_id,
            nr_ss_rsrp=signal.nr_ss_rsrp,
            nr_ss_rsrq=signal.nr_ss_rsrq,
            nr_ss_rssi=signal.nr_ss_rssi,
            lte_rsrp=signal.lte_rsrp,
            lte_rsrq=signal.lte_rsrq,
            lte_rssi=signal.lte_rssi,
            horizontal_handoff=int(result.horizontal_handoff),
            vertical_handoff=int(result.vertical_handoff),
            ue_panel_distance_m=dist,
            positional_angle_deg=theta_p,
            mobility_angle_deg=theta_m,
            carrier_load_ues=float(1 + background),
            true_x_m=pos[0],
            true_y_m=pos[1],
            true_heading_deg=heading,
            true_speed_mps=speed,
        ))

        if traversal.finished and duration_s is None:
            break
    if obs.enabled():
        obs.inc("sim.passes_total")
        obs.inc("sim.telemetry_rows_total", len(records))
    return records
