"""Planar geometry between UEs and 5G panels.

All positions are in local meters (east = +x, north = +y).  Angles follow the
compass convention used by Android and the paper: degrees clockwise from
North, in [0, 360).

Three quantities from the paper (Fig. 5):

* **UE-panel distance** -- Euclidean distance between UE and panel.
* **Positional angle** (theta_p) -- angle between the panel boresight (the
  line normal to the panel's front face) and the line from the panel to the
  UE.  0 means the UE is dead ahead of the panel ("F"), 180 means it is
  behind it ("B").
* **Mobility angle** (theta_m) -- angle between the panel boresight and the
  UE's direction of travel.  180 means the UE is moving head-on toward the
  panel's facing direction; 0 means it moves the same way the panel faces
  (the user's body then blocks line of sight for a hand-held phone).
"""

from __future__ import annotations

import math


def normalize_bearing(deg: float) -> float:
    """Wrap an angle in degrees into [0, 360)."""
    wrapped = deg % 360.0
    # Guard against float artifacts (e.g. tiny negatives wrap to 360.0).
    return 0.0 if wrapped >= 360.0 else wrapped


def angle_difference(a_deg: float, b_deg: float) -> float:
    """Smallest absolute difference between two bearings, in [0, 180]."""
    d = abs(a_deg - b_deg) % 360.0
    return 360.0 - d if d > 180.0 else d


def bearing(from_xy: tuple[float, float], to_xy: tuple[float, float]) -> float:
    """Compass bearing (deg clockwise from North) from one point to another."""
    dx = to_xy[0] - from_xy[0]
    dy = to_xy[1] - from_xy[1]
    return normalize_bearing(math.degrees(math.atan2(dx, dy)))


def distance(a_xy: tuple[float, float], b_xy: tuple[float, float]) -> float:
    """Euclidean distance in meters."""
    return math.hypot(b_xy[0] - a_xy[0], b_xy[1] - a_xy[1])


def positional_angle(
    panel_xy: tuple[float, float], panel_bearing_deg: float,
    ue_xy: tuple[float, float],
) -> float:
    """UE-panel positional angle theta_p in [0, 180].

    The angle between the panel boresight and the panel->UE line; it depends
    only on where the UE *is*, not where it is going.
    """
    to_ue = bearing(panel_xy, ue_xy)
    return angle_difference(to_ue, panel_bearing_deg)


def mobility_angle(panel_bearing_deg: float, ue_heading_deg: float) -> float:
    """UE-panel mobility angle theta_m in [0, 360).

    Defined as the angle of the UE's trajectory measured against the panel's
    facing direction; 180 deg means moving straight *toward* the panel face,
    0 deg means moving *with* the panel's facing direction (body blockage
    for a hand-held UE).  Unlike theta_p, the paper treats theta_m over the
    full circle (Fig. 8 bins span 0-360).

    A UE whose heading equals the panel bearing moves with the facing
    direction (theta_m = 0); a UE whose heading is opposite the bearing
    moves head-on toward the panel face (theta_m = 180).
    """
    return normalize_bearing(ue_heading_deg - panel_bearing_deg)


POSITION_SECTORS = ("F", "R", "B", "L")


def positional_sector(
    panel_xy: tuple[float, float], panel_bearing_deg: float,
    ue_xy: tuple[float, float],
) -> str:
    """Classify UE position relative to a panel as F/R/B/L (Fig. 12).

    Front when the signed angle from boresight to the panel->UE line is within
    +-45 deg, right for (45, 135], back beyond 135, left for [-135, -45).
    """
    to_ue = bearing(panel_xy, ue_xy)
    signed = (to_ue - panel_bearing_deg + 180.0) % 360.0 - 180.0
    if -45.0 <= signed <= 45.0:
        return "F"
    if 45.0 < signed <= 135.0:
        return "R"
    if -135.0 <= signed < -45.0:
        return "L"
    return "B"


def heading_to_unit(deg: float) -> tuple[float, float]:
    """Unit vector (east, north) for a compass heading."""
    r = math.radians(deg)
    return math.sin(r), math.cos(r)


def unit_to_heading(dx: float, dy: float) -> float:
    """Compass heading for a direction vector (east, north)."""
    return normalize_bearing(math.degrees(math.atan2(dx, dy)))
