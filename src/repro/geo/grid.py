"""Spatial grid aggregation for throughput maps.

The paper visualizes 5G throughput as heatmaps where every point is a
2m x 2m grid cell colored by the mean of all throughput samples that fall in
it (Fig. 6), and runs its per-geolocation statistics (CV, normality, pairwise
tests) over the samples grouped by pixelized coordinate.  ``GridAccumulator``
provides that grouping for arbitrary cell sizes.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CellStats:
    """Summary statistics of samples that fell into one grid cell."""

    cell: tuple[int, int]
    count: int
    mean: float
    std: float
    cv: float  # coefficient of variation, in percent

    @property
    def center(self) -> tuple[float, float]:
        return (self.cell[0] + 0.5, self.cell[1] + 0.5)


class GridAccumulator:
    """Accumulate point samples into square grid cells.

    Parameters
    ----------
    cell_size:
        Cell edge length in the same units as the coordinates (meters for
        local coordinates, pixels for pixelized coordinates).  The paper uses
        2 m cells for heatmaps and 1-pixel (~1 m) cells for statistics.
    """

    def __init__(self, cell_size: float = 2.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._samples: dict[tuple[int, int], list[float]] = defaultdict(list)

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Return the integer cell index containing a point."""
        return (int(np.floor(x / self.cell_size)),
                int(np.floor(y / self.cell_size)))

    def add(self, x: float, y: float, value: float) -> None:
        """Add one sample at coordinates (x, y)."""
        self._samples[self.cell_of(x, y)].append(float(value))

    def add_many(
        self,
        xs: Sequence[float] | np.ndarray,
        ys: Sequence[float] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        """Vectorized :meth:`add` over parallel arrays."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        values = np.asarray(values, dtype=float)
        if not (xs.shape == ys.shape == values.shape):
            raise ValueError("xs, ys and values must have identical shapes")
        cx = np.floor(xs / self.cell_size).astype(int)
        cy = np.floor(ys / self.cell_size).astype(int)
        for i in range(len(values)):
            self._samples[(int(cx[i]), int(cy[i]))].append(float(values[i]))

    def __len__(self) -> int:
        return len(self._samples)

    def cells(self) -> Iterable[tuple[int, int]]:
        return self._samples.keys()

    def samples(self, cell: tuple[int, int]) -> np.ndarray:
        """All raw sample values recorded in one cell."""
        return np.asarray(self._samples.get(cell, ()), dtype=float)

    def stats(self, min_samples: int = 1) -> list[CellStats]:
        """Per-cell summary statistics for cells with enough samples.

        CV is reported in percent (std / mean * 100), matching the paper's
        "53% of geolocations have CV values >= 50%" phrasing; cells with zero
        mean get CV 0 to avoid division blow-ups on dead zones.
        """
        out = []
        for cell, vals in sorted(self._samples.items()):
            if len(vals) < min_samples:
                continue
            arr = np.asarray(vals, dtype=float)
            mean = float(arr.mean())
            std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
            cv = 100.0 * std / mean if mean > 0 else 0.0
            out.append(CellStats(cell=cell, count=len(arr), mean=mean,
                                 std=std, cv=cv))
        return out

    def mean_map(self, min_samples: int = 1) -> dict[tuple[int, int], float]:
        """Cell -> mean value; the raw material of a throughput heatmap."""
        return {s.cell: s.mean for s in self.stats(min_samples=min_samples)}

    def to_arrays(
        self, min_samples: int = 1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(x_centers, y_centers, means) arrays for plotting/export."""
        st = self.stats(min_samples=min_samples)
        if not st:
            empty = np.empty(0)
            return empty, empty.copy(), empty.copy()
        xs = np.array([(s.cell[0] + 0.5) * self.cell_size for s in st])
        ys = np.array([(s.cell[1] + 0.5) * self.cell_size for s in st])
        means = np.array([s.mean for s in st])
        return xs, ys, means


THROUGHPUT_COLOR_BINS_MBPS = (60.0, 150.0, 300.0, 500.0, 700.0, 1000.0)


def throughput_color_level(mean_mbps: float) -> int:
    """Discrete color level for a heatmap cell.

    Level 0 corresponds to the paper's "dark red" (< 60 Mbps) and the top
    level to "lime green" (> 1 Gbps).
    """
    level = 0
    for edge in THROUGHPUT_COLOR_BINS_MBPS:
        if mean_mbps >= edge:
            level += 1
    return level
