"""Web Mercator pixel projection used for geolocation pixelization.

The paper discretizes raw GPS coordinates onto the pixel grid defined by the
Google Maps JavaScript API at zoom level 17, where one pixel spans roughly
0.99--1.19 m depending on latitude (~1.07 m in Minneapolis).  This module
implements that projection exactly: latitude/longitude -> "world coordinates"
(a 256 x 256 unit square covering the globe) -> pixel coordinates at a given
zoom level (world coordinates scaled by ``2**zoom``).

Reference: Google Maps "Map and Tile Coordinates" documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

TILE_SIZE = 256
DEFAULT_ZOOM = 17
EARTH_RADIUS_M = 6_378_137.0
EARTH_CIRCUMFERENCE_M = 2 * math.pi * EARTH_RADIUS_M

# Web Mercator is undefined at the poles; Google clamps latitude to the range
# where the projected square is closed (~85.05 degrees).
MAX_LATITUDE = math.degrees(2 * math.atan(math.exp(math.pi)) - math.pi / 2)


def clamp_latitude(lat_deg: float) -> float:
    """Clamp a latitude into the valid Web Mercator range."""
    return max(-MAX_LATITUDE, min(MAX_LATITUDE, lat_deg))


def latlon_to_world(lat_deg: float, lon_deg: float) -> tuple[float, float]:
    """Project latitude/longitude to world coordinates in [0, 256) x [0, 256)."""
    lat_deg = clamp_latitude(lat_deg)
    siny = math.sin(math.radians(lat_deg))
    x = TILE_SIZE * (0.5 + lon_deg / 360.0)
    y = TILE_SIZE * (0.5 - math.log((1 + siny) / (1 - siny)) / (4 * math.pi))
    return x, y


def world_to_latlon(x: float, y: float) -> tuple[float, float]:
    """Invert :func:`latlon_to_world`."""
    lon = (x / TILE_SIZE - 0.5) * 360.0
    n = math.pi - 2 * math.pi * y / TILE_SIZE
    lat = math.degrees(math.atan(math.sinh(n)))
    return lat, lon


def latlon_to_pixel(
    lat_deg: float, lon_deg: float, zoom: int = DEFAULT_ZOOM
) -> tuple[int, int]:
    """Pixelize a GPS coordinate at the given zoom level (paper: zoom 17).

    Returns integer pixel coordinates ``(px, py)``.  Two GPS fixes less than
    one pixel (~1 m at zoom 17) apart map to the same pixel, which is the
    paper's mechanism for reducing GPS noise and sparsity.
    """
    x, y = latlon_to_world(lat_deg, lon_deg)
    scale = 1 << zoom
    return int(math.floor(x * scale)), int(math.floor(y * scale))


def pixel_to_latlon(
    px: float, py: float, zoom: int = DEFAULT_ZOOM
) -> tuple[float, float]:
    """Map a pixel coordinate back to the lat/lon of its north-west corner."""
    scale = 1 << zoom
    return world_to_latlon(px / scale, py / scale)


def pixel_center_latlon(
    px: int, py: int, zoom: int = DEFAULT_ZOOM
) -> tuple[float, float]:
    """Latitude/longitude of the center of an integer pixel cell."""
    return pixel_to_latlon(px + 0.5, py + 0.5, zoom)


def meters_per_pixel(lat_deg: float, zoom: int = DEFAULT_ZOOM) -> float:
    """Ground resolution (meters spanned by one pixel) at a latitude.

    At zoom 17 this is ~1.19 m at the equator and ~1.07 m at Minneapolis
    (45 N), matching the paper's "0.99 to 1.19 meters (~1 meter)".
    """
    lat_deg = clamp_latitude(lat_deg)
    return (
        EARTH_CIRCUMFERENCE_M
        * math.cos(math.radians(lat_deg))
        / (TILE_SIZE * (1 << zoom))
    )


@dataclass(frozen=True)
class LocalProjection:
    """Local tangent-plane (ENU) projection around an origin lat/lon.

    The simulator works in local meters (east = +x, north = +y); this helper
    converts between local meters and GPS coordinates so that the telemetry
    pipeline can report realistic latitude/longitude values and the cleaning
    stage can pixelize them exactly as the paper does.
    """

    origin_lat: float
    origin_lon: float

    def to_latlon(self, x_m: float, y_m: float) -> tuple[float, float]:
        """Convert local east/north meters to latitude/longitude."""
        lat = self.origin_lat + math.degrees(y_m / EARTH_RADIUS_M)
        lon = self.origin_lon + math.degrees(
            x_m / (EARTH_RADIUS_M * math.cos(math.radians(self.origin_lat)))
        )
        return lat, lon

    def to_meters(self, lat_deg: float, lon_deg: float) -> tuple[float, float]:
        """Convert latitude/longitude to local east/north meters."""
        y = math.radians(lat_deg - self.origin_lat) * EARTH_RADIUS_M
        x = (
            math.radians(lon_deg - self.origin_lon)
            * EARTH_RADIUS_M
            * math.cos(math.radians(self.origin_lat))
        )
        return x, y
