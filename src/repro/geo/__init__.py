"""Geospatial substrate: Web Mercator pixelization, UE-panel geometry, grids."""

from repro.geo.geometry import (
    angle_difference,
    bearing,
    distance,
    heading_to_unit,
    mobility_angle,
    normalize_bearing,
    positional_angle,
    positional_sector,
    unit_to_heading,
)
from repro.geo.grid import (
    CellStats,
    GridAccumulator,
    throughput_color_level,
)
from repro.geo.mercator import (
    DEFAULT_ZOOM,
    LocalProjection,
    latlon_to_pixel,
    latlon_to_world,
    meters_per_pixel,
    pixel_center_latlon,
    pixel_to_latlon,
    world_to_latlon,
)

__all__ = [
    "DEFAULT_ZOOM",
    "CellStats",
    "GridAccumulator",
    "LocalProjection",
    "angle_difference",
    "bearing",
    "distance",
    "heading_to_unit",
    "latlon_to_pixel",
    "latlon_to_world",
    "meters_per_pixel",
    "mobility_angle",
    "normalize_bearing",
    "pixel_center_latlon",
    "pixel_to_latlon",
    "positional_angle",
    "positional_sector",
    "throughput_color_level",
    "unit_to_heading",
    "world_to_latlon",
]
