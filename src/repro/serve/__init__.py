"""``repro.serve`` -- batched online inference over trained models.

The deployment half of the paper's story: Lumos5G ends with throughput
maps "augmented with the ML models" that UEs and apps query in real time
(Sec. 7).  This package turns a fitted model into a service:

* :class:`~repro.serve.registry.ModelRegistry` -- a directory of
  versioned, JSON-serialized models (``repro.ml.serialize`` payloads);
* :class:`~repro.serve.batcher.BatchPredictor` -- micro-batches incoming
  feature rows (max batch size / max wait) onto the vectorized batched
  tree traversal, so per-request Python overhead amortizes away;
* :class:`~repro.serve.cache.PredictionCache` -- an LRU keyed by
  quantized feature vectors, sized for the map-query workload where
  nearby positions repeat;
* :class:`~repro.serve.service.InferenceService` -- ties the three
  together behind a JSONL request loop (the ``repro serve`` CLI).

Everything on the request path is instrumented with ``repro.obs``
(``serve.requests_total``, ``serve.batch_size``, ``serve.request_latency_s``,
cache hit counters); ``tools/check_serve.py`` lints that this package
never fits a model -- serving is read-only by construction.
"""

from repro.serve.batcher import BatchPredictor
from repro.serve.cache import PredictionCache
from repro.serve.registry import (
    CORRUPT_SUFFIX,
    REJECTED_SUFFIX,
    ROLLOUT_STATE_FILE,
    FeatureViewMismatch,
    ModelNotFound,
    ModelRegistry,
    RegistryError,
    ServingPinError,
)
from repro.serve.service import InferenceService, ServeConfig, ServeStats

__all__ = [
    "BatchPredictor",
    "CORRUPT_SUFFIX",
    "REJECTED_SUFFIX",
    "ROLLOUT_STATE_FILE",
    "FeatureViewMismatch",
    "InferenceService",
    "ModelNotFound",
    "ModelRegistry",
    "PredictionCache",
    "RegistryError",
    "ServeConfig",
    "ServeStats",
    "ServingPinError",
]
