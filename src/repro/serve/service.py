"""JSONL inference service: the request loop behind ``repro serve``.

One request per line, one response per line, in request order; the wire
format lives in :class:`~repro.serve.protocol.RequestCodec` (shared with
the sharded gateway, ``repro.gateway``).  Lines are read ahead in
windows of several batches and submitted together so the micro-batcher
actually sees concurrent work even from a serial stdin stream;
responses are flushed strictly in input order.

Resilience (docs/robustness.md): a failed prediction never kills the
loop -- the affected request gets an ``{"error": "prediction failed:
..."}`` response and the run continues.  Repeated failures trip the
service :class:`~repro.resil.retry.CircuitBreaker`, after which new
requests are short-circuited with ``service unavailable`` responses
until the reset timeout probes the model again.
``ServeConfig.request_deadline_ms`` bounds how long a request may sit
queued before failing with a deadline error instead of adding latency.

:class:`ServeStats` tells the three failure modes apart: ``failures``
counts predictions that reached the model and blew up, ``shed`` counts
breaker short-circuits (the model was never asked), and
``deadline_exceeded`` counts requests that expired in the queue.  Only
genuine prediction failures feed the circuit breaker -- shedding and
deadline expiry are load symptoms, not model faults.

Telemetry (docs/observability.md): every request is minted a trace ID
(honoring a client-supplied ``"trace"`` field) that rides through the
batcher queue, the ambient contextvar, structured log lines and back
out on the response.  A :class:`~repro.obs.telemetry.TelemetryPlane`
tracks windowed latency quantiles and availability, evaluates the
default latency/availability SLOs once per window bucket, and -- when
the model carries a frozen training-time drift baseline -- watches the
prediction stream for distribution shift.  The final verdict lands in
``ServeStats.telemetry``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.obs.telemetry import (
    AvailabilitySLO,
    LatencySLO,
    TelemetryPlane,
    baseline_of,
    trace_scope,
)
from repro.resil.retry import CircuitBreaker, DeadlineExceeded
from repro.serve.batcher import BatchPredictor
from repro.serve.cache import PredictionCache
from repro.serve.protocol import RequestCodec

_LOG = obs.get_logger("serve.service")


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving path (docs/serving.md)."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = 4096
    cache_quant_step: float = 0.25
    #: How many requests to read ahead before flushing responses; the
    #: window is what lets a serial input stream fill batches.
    read_ahead: int = 256
    #: Max milliseconds a request may spend queued before it fails with
    #: a deadline error (0 = unbounded).
    request_deadline_ms: float = 0.0
    #: Consecutive prediction failures that trip the service breaker,
    #: and how long it stays open before probing again.
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    #: Windowed telemetry (docs/observability.md): fast/slow window
    #: lengths, the default latency SLO thresholds evaluated on the
    #: windowed ``serve.request_latency_s`` quantiles, and the
    #: availability target whose error budget ``--strict`` enforces.
    #: ``telemetry=False`` turns the whole plane off.
    telemetry: bool = True
    window_s: float = 60.0
    slow_window_s: float = 600.0
    latency_slo_p99_ms: float = 50.0
    latency_slo_p999_ms: float = 250.0
    availability_target: float = 0.999


@dataclass
class ServeStats:
    """What one request-loop run did (the CLI summary / bench record)."""

    requests: int = 0
    errors: int = 0
    #: Requests that reached the model and failed there (prediction
    #: errors) -- distinct from ``errors``, which counts malformed
    #: requests, and from the two load-failure counters below.
    failures: int = 0
    #: Requests short-circuited by the open service breaker ("service
    #: unavailable") without ever reaching the model.
    shed: int = 0
    #: Requests that expired in the queue (``request_deadline_ms``).
    deadline_exceeded: int = 0
    batches: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    #: Final telemetry-plane snapshot (windows, last SLO/drift verdict,
    #: run totals) -- None when the plane is disabled.
    telemetry: dict | None = field(default=None, repr=False)

    @property
    def failed_total(self) -> int:
        """Every non-ok model-path outcome, whatever the mechanism."""
        return self.failures + self.shed + self.deadline_exceeded

    @property
    def rows_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def budget_burned(self) -> bool:
        """Whether the run's availability error budget was spent."""
        verdict = (self.telemetry or {}).get("last_evaluation") or {}
        return bool(verdict.get("budget_burned"))


class InferenceService:
    """Glue: model + micro-batcher + prediction cache + JSONL protocol."""

    def __init__(self, model, config: ServeConfig | None = None, *,
                 telemetry: TelemetryPlane | None = None,
                 event_stream=None):
        self.model = model
        self.config = config or ServeConfig()
        #: The telemetry plane; pass one in (e.g. with a ManualClock) or
        #: let the config build the default fast/slow-window plane with
        #: the standard serve SLOs and the model's drift baseline.
        self.telemetry = telemetry
        if self.telemetry is None and self.config.telemetry:
            self.telemetry = TelemetryPlane(
                window_s=self.config.window_s,
                slow_window_s=self.config.slow_window_s,
                slos=self.default_slos(self.config),
                baseline=baseline_of(model),
                event_stream=event_stream,
            )
        #: The JSONL wire format, shared with the gateway.
        self.codec = RequestCodec(model)
        self.cache = (
            PredictionCache(
                max_entries=self.config.cache_size,
                quant_step=self.config.cache_quant_step,
            )
            if self.config.cache_size > 0 else None
        )
        predict_fn = (model.predict_proba if self.codec.is_classifier
                      else model.predict)
        self.batcher = BatchPredictor(
            predict_fn,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_ms / 1000.0,
            cache=self.cache,
            deadline_s=self.config.request_deadline_ms / 1000.0,
            telemetry=self.telemetry,
        )
        self.breaker = CircuitBreaker(
            name="serve",
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
        )

    # -- codec facade (kept for callers and tests of the old surface) -------- #

    @property
    def is_classifier(self) -> bool:
        return self.codec.is_classifier

    @property
    def classes(self):
        return self.codec.classes

    @property
    def n_features(self):
        return self.codec.n_features

    @property
    def feature_server(self):
        return self.codec.feature_server

    def parse_request(self, line: str):
        return self.codec.parse_request(line)

    @staticmethod
    def default_slos(config: ServeConfig) -> list:
        """The serve path's declarative SLOs for a given config."""
        return [
            LatencySLO("serve.latency_p99", "serve.request_latency_s",
                       0.99, config.latency_slo_p99_ms / 1000.0),
            LatencySLO("serve.latency_p999", "serve.request_latency_s",
                       0.999, config.latency_slo_p999_ms / 1000.0),
            AvailabilitySLO("serve.availability",
                            good="serve.ok_total", bad="serve.failed_total",
                            target=config.availability_target),
        ]

    # -- the loop ----------------------------------------------------------- #

    def run_jsonl(self, lines, out) -> ServeStats:
        """Serve every request line from ``lines``; write to ``out``.

        Reads ahead ``config.read_ahead`` requests, submits them all to
        the batcher, then drains responses in input order.  Returns the
        run's :class:`ServeStats`; error lines get error responses and
        are tallied (the CLI's ``--strict`` turns them into a nonzero
        exit).
        """
        stats = ServeStats()
        plane = self.telemetry
        t_start = time.perf_counter()
        with self.batcher, obs.span("serve.run"):
            window: list = []  # (request, future-or-error-dict, trace_id)
            for line in lines:
                if not line.strip():
                    continue
                req, features = self.codec.parse_request(line)
                tid = self.codec.trace_of(req)
                if features is None:
                    stats.errors += 1
                    obs.inc("serve.bad_requests_total")
                    if plane is not None:
                        plane.inc("serve.bad_requests_total")
                    window.append((req, self.codec.error_response(req), tid))
                elif not self.breaker.allow():
                    stats.shed += 1
                    obs.inc("serve.shed_total")
                    if plane is not None:
                        plane.inc("serve.shed_total")
                        plane.inc("serve.failed_total")
                    response = self.codec.attach_id(
                        {"error":
                         "service unavailable: circuit breaker open"}, req)
                    window.append((req, response, tid))
                else:
                    with trace_scope(tid):
                        window.append(
                            (req, self.batcher.submit(features,
                                                      trace_id=tid), tid)
                        )
                stats.requests += 1
                if plane is not None:
                    plane.inc("serve.requests_total")
                if len(window) >= self.config.read_ahead:
                    self._flush(window, out, stats)
                    window = []
            self._flush(window, out, stats)
        stats.batches = self.batcher.batches
        stats.cache_hits = self.cache.hits if self.cache is not None else 0
        stats.wall_s = time.perf_counter() - t_start
        obs.set_gauge("serve.rows_per_s", round(stats.rows_per_s, 3))
        if self.cache is not None:
            obs.set_gauge("serve.cache.hit_rate",
                          round(self.cache.hit_rate, 4))
        if plane is not None:
            # Force a final evaluation so the whole-run SLO/drift verdict
            # lands in the stats even for sub-bucket-length runs.
            plane.evaluate()
            stats.telemetry = plane.snapshot()
        return stats

    def _flush(self, window: list, out, stats: ServeStats) -> None:
        plane = self.telemetry
        # The producer is done submitting this window: wake the batcher
        # so the tail batch predicts now instead of waiting out
        # max_wait_s on an already-drained queue.
        self.batcher.flush()
        for req, pending, tid in window:
            if isinstance(pending, dict):  # pre-formed error response
                response = pending
            else:
                try:
                    result = pending.result()
                except DeadlineExceeded as exc:
                    # The request expired queued: a load symptom, not a
                    # model fault -- counted apart and kept away from
                    # the breaker.
                    stats.deadline_exceeded += 1
                    if plane is not None:
                        plane.inc("serve.deadline_exceeded_total")
                        plane.inc("serve.failed_total")
                    _LOG.warning("request deadline exceeded", trace_id=tid,
                                 error=str(exc))
                    response = self.codec.attach_id(
                        {"error": f"deadline exceeded: {exc}"}, req)
                except Exception as exc:
                    # One bad batch answers its own requests with error
                    # responses; the loop itself never dies.
                    stats.failures += 1
                    obs.inc("resil.serve.failed_requests_total")
                    if plane is not None:
                        plane.inc("serve.failed_total")
                    _LOG.warning("request failed", trace_id=tid,
                                 error=str(exc))
                    self.breaker.record_failure()
                    response = self.codec.attach_id(
                        {"error": f"prediction failed: {exc}"}, req)
                else:
                    self.breaker.record_success()
                    if plane is not None:
                        plane.inc("serve.ok_total")
                        plane.observe_drift(self.codec.drift_value(result))
                    response = self.codec.format_response(req, result)
            response["trace"] = tid
            out.write(json.dumps(response) + "\n")
        if plane is not None:
            plane.maybe_evaluate()
