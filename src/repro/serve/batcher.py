"""Micro-batching front end for a batch-capable predict function.

Requests arrive one feature row at a time; the model is fastest on big
matrices (the vectorized tree traversal costs O(depth) numpy passes per
*batch*, not per row).  :class:`BatchPredictor` bridges the two: rows
queue up, a worker thread drains up to ``max_batch_size`` of them --
waiting at most ``max_wait_s`` for stragglers after the first -- stacks
them into one matrix and runs the model once.  Each caller gets a
``concurrent.futures.Future`` resolving to its own row's prediction.

An optional :class:`~repro.serve.cache.PredictionCache` short-circuits
submits whose quantized feature key is already known; fresh batch
results are written back so the cache warms itself.

Request-path telemetry (``repro.obs``): ``serve.requests_total``,
``serve.batches_total``, ``serve.errors_total`` counters, and
``serve.batch_size`` / ``serve.request_latency_s`` /
``serve.batch_predict_s`` histograms.  An optional
:class:`~repro.obs.telemetry.TelemetryPlane` additionally receives
windowed per-request latency observations, and every queued row carries
the request's trace ID (``submit(..., trace_id=...)``, defaulting to
the ambient :func:`~repro.obs.telemetry.current_trace_id`) so failure
and expiry log lines can name the requests they affected.

Resilience (docs/robustness.md): an optional per-request **deadline**
(``deadline_s``) expires rows that queued too long -- their futures
resolve to :class:`~repro.resil.retry.DeadlineExceeded` without ever
hitting the model, bounding tail latency under overload.  A failing
batch predict is retried up to ``predict_attempts`` times (the
``serve.predict`` fault seam fires here) before the error is fanned out
to the waiting futures; re-running a pure predict on the same matrix is
side-effect free, so the retry is invisible in results.

Flush wake-up: a producer that knows it has submitted its last row for
now calls :meth:`BatchPredictor.flush` -- a marker rides the queue and
tells the collector to predict what it holds *immediately* instead of
waiting out the full ``max_wait_s`` straggler window on a queue that
has already drained.  ``predict_many`` and the serve/gateway loops
flush at the end of every submission window, so the old worst case
(one tail batch idling ``max_wait_s`` with its submitter blocked on the
futures) cannot happen.  The clock is injectable (``clock=``) so
deadline math is unit-testable without sleeping.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro import obs
from repro.obs.telemetry import current_trace_id
from repro.resil import faults
from repro.resil.retry import DeadlineExceeded
from repro.serve.cache import PredictionCache

_STOP = object()
_FLUSH = object()
_LOG = obs.get_logger("serve.batcher")

faults.register_point(
    "serve.predict",
    "raise inside a micro-batch predict call (retried once by default)",
)


class BatchPredictor:
    """Queue rows, predict in micro-batches, resolve per-row futures."""

    def __init__(
        self,
        predict_fn,
        max_batch_size: int = 64,
        max_wait_s: float = 0.002,
        cache: PredictionCache | None = None,
        deadline_s: float = 0.0,
        predict_attempts: int = 2,
        telemetry=None,
        clock=time.perf_counter,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")
        if deadline_s < 0.0:
            raise ValueError("deadline_s must be >= 0")
        if predict_attempts < 1:
            raise ValueError("predict_attempts must be >= 1")
        self.predict_fn = predict_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.cache = cache
        #: Seconds a row may spend queued before its future fails with
        #: DeadlineExceeded instead of reaching the model (0 = no limit).
        self.deadline_s = deadline_s
        self.predict_attempts = predict_attempts
        #: Optional TelemetryPlane receiving windowed latency observations.
        self.telemetry = telemetry
        #: Injectable time source for enqueue stamps, the straggler wait
        #: and deadline expiry (tests pass a manual clock).
        self.clock = clock
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._batch_seq = 0
        #: Requests answered (cache hits included) and batches run.
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.expired = 0

    # -- lifecycle ---------------------------------------------------------- #

    def start(self) -> "BatchPredictor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="serve-batcher", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting work, drain the queue, join the worker."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(_STOP)
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "BatchPredictor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------- #

    def submit(self, features, trace_id: str | None = None) -> Future:
        """Enqueue one feature row; the Future resolves to its prediction.

        ``trace_id`` ties the queued row back to its request; when
        omitted, the ambient contextvar trace ID (set by the serve
        loop's ``trace_scope``) is captured instead.
        """
        if self._closed:
            raise RuntimeError("predictor is closed")
        if self._thread is None:
            raise RuntimeError("predictor is not started; use start() or "
                               "a with-block")
        if trace_id is None:
            trace_id = current_trace_id()
        row = np.asarray(features, dtype=float).ravel()
        fut: Future = Future()
        key = None
        if self.cache is not None:
            key = self.cache.key(row)
            hit = self.cache.get(key)
            if hit is not None:
                self.requests += 1
                obs.inc("serve.requests_total")
                obs.observe("serve.request_latency_s", 0.0)
                if self.telemetry is not None:
                    self.telemetry.observe("serve.request_latency_s", 0.0)
                fut.set_result(hit)
                return fut
        t_enqueue = self.clock()
        t_deadline = t_enqueue + self.deadline_s if self.deadline_s > 0 \
            else None
        self._queue.put((row, fut, t_enqueue, key, t_deadline, trace_id))
        return fut

    def flush(self) -> None:
        """Tell the collector the producer is (for now) done submitting.

        The marker overtakes nothing -- rows already queued still batch
        in order -- but once the collector reaches it, the current batch
        predicts immediately instead of waiting out ``max_wait_s`` for
        stragglers that are not coming.  Safe to call any number of
        times; a no-op on a closed predictor.
        """
        if not self._closed and self._thread is not None:
            self._queue.put(_FLUSH)

    def predict_many(self, X) -> list:
        """Submit every row of ``X`` and wait; per-row results in order."""
        futures = [self.submit(row) for row in np.asarray(X, dtype=float)]
        self.flush()  # last item submitted: wake the collector now
        return [f.result() for f in futures]

    # -- worker ------------------------------------------------------------- #

    def _collect(self, first) -> tuple[list, bool]:
        """One micro-batch starting from ``first``; True when stopping."""
        batch = [first]
        deadline = self.clock() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            timeout = deadline - self.clock()
            if timeout <= 0:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
            if item is _STOP:
                return batch, True
            if item is _FLUSH:
                # The producer marked the end of its submissions: stop
                # waiting for stragglers and predict what we hold.
                break
            batch.append(item)
        return batch, False

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if item is _FLUSH:  # stale marker: nothing queued behind it
                continue
            batch, stopping = self._collect(item)
            self._predict_batch(batch)
            if stopping:
                return

    def _expire(self, batch: list) -> list:
        """Fail rows whose deadline already passed; returns the live rest."""
        now = self.clock()
        live = []
        for item in batch:
            t_deadline = item[4]
            if t_deadline is not None and now > t_deadline:
                self.expired += 1
                obs.inc("resil.serve.deadline_exceeded_total")
                _LOG.warning("request deadline exceeded",
                             trace_id=item[5] or "-",
                             queued_s=round(now - item[2], 6))
                item[1].set_exception(DeadlineExceeded(
                    f"request spent > {self.deadline_s:g}s queued"
                ))
            else:
                live.append(item)
        return live

    def _predict_batch(self, batch: list) -> None:
        batch = self._expire(batch)
        if not batch:
            return
        rows = [item[0] for item in batch]
        seq = self._batch_seq
        self._batch_seq += 1
        t0 = self.clock()
        preds = None
        for attempt in range(self.predict_attempts):
            try:
                faults.inject("serve.predict", key=(seq, attempt))
                preds = self.predict_fn(np.stack(rows))
                break
            except Exception as exc:
                obs.inc("resil.serve.predict_failures_total")
                if attempt + 1 >= self.predict_attempts:
                    # Out of attempts: surface through every waiting future.
                    self.errors += len(batch)
                    obs.inc("serve.errors_total", len(batch))
                    _LOG.error("batch predict exhausted retries",
                               trace_id=batch[0][5] or "-",
                               batch_seq=seq, rows=len(batch),
                               error=str(exc))
                    for item in batch:
                        item[1].set_exception(exc)
                    return
                obs.inc("resil.serve.batch_retries_total")
                _LOG.warning("batch predict retrying",
                             trace_id=batch[0][5] or "-",
                             batch_seq=seq, attempt=attempt + 1,
                             error=str(exc))
        done = self.clock()
        preds = np.asarray(preds)
        self.requests += len(batch)
        self.batches += 1
        obs.inc("serve.requests_total", len(batch))
        obs.inc("serve.batches_total")
        obs.observe("serve.batch_size", len(batch))
        obs.observe("serve.batch_predict_s", done - t0)
        if self.telemetry is not None:
            self.telemetry.inc("serve.batches_total")
        for i, (_, fut, t_enqueue, key, _, _) in enumerate(batch):
            obs.observe("serve.request_latency_s", done - t_enqueue)
            if self.telemetry is not None:
                self.telemetry.observe("serve.request_latency_s",
                                       done - t_enqueue)
            if self.cache is not None and key is not None:
                self.cache.put(key, preds[i])
            fut.set_result(preds[i])
