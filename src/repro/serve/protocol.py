"""The JSONL request/response codec shared by serve and gateway.

One request per line::

    {"id": 7, "features": [12.0, 3.5, null, 140.0]}
    {"id": 8, "row": {"moving_speed": 1.2, ...}}          # stamped models
    {"id": 9, "key": "ue-42", "features": [...]}          # gateway routing

One response per line::

    {"id": 7, "prediction": 612.4}                        # regressor
    {"id": 8, "prediction": "High", "proba": [...]}       # classifier
    {"id": 9, "error": "features must be ..."}            # bad request

:class:`RequestCodec` owns everything about this wire format that
depends only on the *model* -- parsing feature arrays and ``"row"``
requests (through the model's stamped feature view), trace-ID
extraction, error-message construction and response formatting -- so
:class:`~repro.serve.service.InferenceService` (single process) and
:class:`~repro.gateway.AsyncGateway` (sharded) speak byte-identical
protocol without duplicating the rules.

``null`` features become NaN (a missing signal reading -- the tree
models route those through their missing-value bin).
"""

from __future__ import annotations

import json

import numpy as np

from repro.fstore import OnlineFeatureServer, view_from_dict, view_of
from repro.obs.telemetry import new_trace_id

__all__ = ["RequestCodec", "routing_key"]


def routing_key(req: dict | None, trace_id: str) -> str:
    """The request's shard-routing key (gateway; docs/serving.md).

    An explicit ``"key"`` wins (the UE / area identity the client wants
    requests partitioned by), else ``"ue"``, else the request ``"id"``,
    else the trace ID -- so every request routes deterministically even
    without client cooperation.
    """
    if isinstance(req, dict):
        for field in ("key", "ue", "id"):
            value = req.get(field)
            if value is not None and not isinstance(value, (dict, list)):
                return str(value)
    return trace_id


class RequestCodec:
    """Parse requests and format responses for one model's protocol."""

    def __init__(self, model):
        self.model = model
        self.is_classifier = hasattr(model, "predict_proba")
        self.classes = (
            [c for c in np.asarray(model.classes_).tolist()]
            if self.is_classifier else None
        )
        self.n_features = getattr(model, "n_features_", None)
        #: The online feature path: models published through
        #: ``Lumos5G.publish`` carry their feature-view stamp
        #: (``repro.fstore.attach_view``), which lets the codec accept
        #: ``{"row": {...}}`` requests -- raw telemetry fields -- and
        #: compute the feature vector itself, bit-identically to
        #: training-time materialization.  Unstamped models still serve
        #: ``"features"`` requests.
        stamp = view_of(model)
        self.feature_server = (
            OnlineFeatureServer(view_from_dict(stamp["view"]))
            if isinstance(stamp, dict) and "view" in stamp else None
        )

    # -- requests ------------------------------------------------------------ #

    def parse_request(self, line: str) -> tuple[dict | None, np.ndarray | None]:
        """(request, features) -- features is None on a bad request."""
        try:
            req = json.loads(line)
        except json.JSONDecodeError:
            return None, None
        if not isinstance(req, dict):
            return None, None
        raw = req.get("features")
        if raw is None and "row" in req:
            return req, self._row_features(req.get("row"))
        if not isinstance(raw, list) or not raw:
            return req, None
        try:
            features = np.asarray(
                [float("nan") if v is None else float(v) for v in raw],
                dtype=float,
            )
        except (TypeError, ValueError):
            return req, None
        if self.n_features is not None and len(features) != self.n_features:
            return req, None
        return req, features

    def _row_features(self, row) -> np.ndarray | None:
        """Feature vector for a ``"row"`` request; None on a bad row."""
        if self.feature_server is None or not isinstance(row, dict):
            return None
        try:
            return self.feature_server.vector(row)
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def trace_of(req: dict | None) -> str:
        """The request's trace ID: the client's ``"trace"``, else minted."""
        if isinstance(req, dict):
            tid = req.get("trace")
            if isinstance(tid, str) and tid:
                return tid
        return new_trace_id()

    # -- responses ----------------------------------------------------------- #

    def error_response(self, req: dict | None) -> dict:
        if req is None:
            message = "invalid JSON request line"
        elif req.get("features") is None and "row" in req:
            if self.feature_server is None:
                message = ("model carries no feature-view stamp; "
                           "'row' requests need a model published with "
                           "repro.fstore.attach_view")
            elif not isinstance(req.get("row"), dict):
                message = "'row' must be an object of telemetry fields"
            else:
                message = ("row is missing or has malformed fields for "
                           f"feature view "
                           f"{self.feature_server.view.name!r}")
        elif not isinstance(req.get("features"), list):
            message = "request must carry a 'features' array"
        elif self.n_features is not None and isinstance(
            req.get("features"), list
        ) and len(req["features"]) != self.n_features:
            message = (f"expected {self.n_features} features, "
                       f"got {len(req['features'])}")
        else:
            message = "features must be numbers or null"
        return self.attach_id({"error": message}, req)

    @staticmethod
    def attach_id(response: dict, req: dict | None) -> dict:
        """Copy the request ``"id"`` onto ``response`` (in place)."""
        if isinstance(req, dict) and "id" in req:
            response["id"] = req["id"]
        return response

    def format_response(self, req: dict, pred) -> dict:
        out: dict = {}
        if "id" in req:
            out["id"] = req["id"]
        if self.is_classifier:
            proba = np.asarray(pred, dtype=float)
            out["prediction"] = self.classes[int(np.argmax(proba))]
            out["proba"] = [round(float(p), 6) for p in proba]
        else:
            out["prediction"] = float(pred)
        return out

    def drift_value(self, result) -> float:
        """The scalar the drift monitor watches for one prediction."""
        if self.is_classifier:
            return float(np.max(np.asarray(result, dtype=float)))
        return float(result)
