"""On-disk model registry: named, versioned, JSON-serialized models.

Layout (one directory per model name, one file per version)::

    <root>/
      airport-tm-gdbt/
        v00001.json
        v00002.json
      global-lm-rf/
        v00001.json

Payloads are ``repro.ml.serialize.model_to_dict`` dicts, so anything the
serializer speaks -- GBDT, random forests, scalers, prediction pipelines
-- can be published and loaded without pickle.  Writes go through a temp
file + ``os.replace`` so a crash never leaves a half-written version,
and a bounded LRU keeps recently used models deserialized in memory.

Resilience (docs/robustness.md): a truncated or garbled version file
raises a typed :class:`RegistryError` naming the path instead of a raw
``json.JSONDecodeError``; :meth:`ModelRegistry.load_resilient` retries
transient load failures under a seeded backoff policy, **quarantines**
corrupt version files (renamed to ``*.corrupt``, which the version
catalog skips) and falls back to the newest remaining good version,
all guarded by a per-model-name :class:`~repro.resil.retry.CircuitBreaker`
that short-circuits to the last good in-memory model once loads keep
failing.  The ``serve.model_load`` fault seam lives on the load path.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
import time
from collections import OrderedDict

from repro import obs
from repro.ml.serialize import model_from_dict, model_to_dict
from repro.obs.telemetry import current_trace_id
from repro.resil import faults
from repro.resil.faults import FaultError
from repro.resil.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryExhausted,
    RetryPolicy,
    retry,
)

_LOG = obs.get_logger("serve.registry")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._+-]*$")
_VERSION_RE = re.compile(r"^v(\d{5})\.json$")

#: Suffix a quarantined (corrupt) version file is renamed with.
CORRUPT_SUFFIX = ".corrupt"

#: Suffix a rejected rollout candidate is renamed with.  Like
#: ``*.corrupt`` it drops out of the version catalog immediately but
#: stays on disk for a post-mortem.
REJECTED_SUFFIX = ".rejected"

#: Per-name rollout state file: the serving pin plus shadow/canary
#: markers.  Written only via ``ModelRegistry._write_rollout_state``
#: (temp file + ``os.replace``; tools/check_rollout.py enforces the
#: single-writer rule), so every registry transition is atomic.
ROLLOUT_STATE_FILE = "serving.json"

#: Default backoff for load_resilient: fast, bounded, deterministic.
DEFAULT_LOAD_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.02,
                                  max_delay_s=0.25, seed=0)

faults.register_point(
    "serve.model_load",
    "raise while deserializing a registry model (keyed by name, version)",
)


class ModelNotFound(KeyError):
    """Unknown model name or version."""


class RegistryError(RuntimeError):
    """A version file exists but cannot be parsed; ``path`` names it."""

    def __init__(self, message: str, path: str | os.PathLike | None = None):
        super().__init__(message)
        self.path = pathlib.Path(path) if path is not None else None


class ServingPinError(RegistryError):
    """The pinned serving version is missing from the catalog.

    Raised when a ``serving`` pointer names a version that has been
    deleted, quarantined, or rejected: serving "whatever is newest"
    instead would silently undo a rollback, so resolution fails loudly.
    """


class FeatureViewMismatch(RegistryError):
    """The loaded model's feature-view stamp is not the expected one.

    Raised by :meth:`ModelRegistry.load` / ``load_resilient`` when
    ``expect_view`` is given and the model was published against a
    different (or no) feature view: serving it would feed features the
    model never saw.  Unlike payload corruption this is a deployment
    error -- the file is *not* quarantined and no older version is
    tried, because every version under the name is suspect.
    """

    def __init__(self, message: str, *, expected: str | None = None,
                 actual: str | None = None,
                 path: str | os.PathLike | None = None):
        super().__init__(message, path=path)
        self.expected = expected
        self.actual = actual


def _expected_fingerprint(expect_view) -> str:
    """Normalize ``expect_view`` to a fingerprint hex string.

    Accepts a raw fingerprint string, a ``repro.fstore.FeatureView``,
    or an ``attach_view``-style stamp dict with a ``"fingerprint"`` key.
    """
    if isinstance(expect_view, str):
        return expect_view
    fp = getattr(expect_view, "fingerprint", None)
    if callable(fp):
        return fp()
    if isinstance(expect_view, dict) and "fingerprint" in expect_view:
        return str(expect_view["fingerprint"])
    raise TypeError(
        "expect_view must be a fingerprint string, a FeatureView or a "
        f"feature_view_ stamp dict; got {type(expect_view).__name__}"
    )


class ModelRegistry:
    """Load/save versioned models under one root directory."""

    def __init__(self, root: str | os.PathLike, max_loaded: int = 8):
        if max_loaded < 1:
            raise ValueError("max_loaded must be >= 1")
        self.root = pathlib.Path(root)
        self.max_loaded = max_loaded
        self._lock = threading.Lock()
        self._loaded: OrderedDict[tuple[str, int], object] = OrderedDict()
        #: Newest successfully loaded (version, model) per name -- what a
        #: tripped breaker falls back to without touching the disk.
        self._last_good: dict[str, tuple[int, object]] = {}
        self._breakers: dict[str, CircuitBreaker] = {}

    # -- paths -------------------------------------------------------------- #

    def _model_dir(self, name: str) -> pathlib.Path:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, "
                "'.', '_', '+', '-'"
            )
        return self.root / name

    def path(self, name: str, version: int) -> pathlib.Path:
        return self._model_dir(name) / f"v{int(version):05d}.json"

    # -- catalog ------------------------------------------------------------ #

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and _NAME_RE.match(p.name)
        )

    def versions(self, name: str) -> list[int]:
        """Catalogued version numbers, ascending.

        Anything that is not exactly a ``vNNNNN.json`` regular file --
        temp files, quarantined ``*.json.corrupt`` entries, non-numeric
        names, stray directories -- is skipped, never an error.
        """
        d = self._model_dir(name)
        if not d.is_dir():
            return []
        out = []
        for p in d.iterdir():
            m = _VERSION_RE.match(p.name)
            if m and p.is_file():
                out.append(int(m.group(1)))
        return sorted(out)

    def latest_version(self, name: str) -> int | None:
        versions = self.versions(name)
        return versions[-1] if versions else None

    def latest(self, name: str) -> int | None:
        """Alias of :meth:`latest_version` (same skip-junk guarantees)."""
        return self.latest_version(name)

    # -- rollout state: serving pin, shadow, canary -------------------------- #

    def _write_rollout_state(self, name: str, state: dict) -> None:
        """The single (atomic) writer of the serving-pointer file."""
        d = self._model_dir(name)
        d.mkdir(parents=True, exist_ok=True)
        target = d / ROLLOUT_STATE_FILE
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(json.dumps(state, sort_keys=True) + "\n")
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        obs.inc("serve.registry.rollout_state_writes_total")

    def rollout_state(self, name: str) -> dict:
        """The name's rollout state dict (``{}`` when never written)."""
        target = self._model_dir(name) / ROLLOUT_STATE_FILE
        try:
            return json.loads(target.read_text())
        except FileNotFoundError:
            return {}
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"corrupt rollout state at {target}: {exc}", path=target
            ) from exc

    def _update_rollout_state(self, name: str, **changes) -> dict:
        """Read-modify-write one atomic state transition (None deletes)."""
        with self._lock:
            state = self.rollout_state(name)
            for key, value in changes.items():
                if value is None:
                    state.pop(key, None)
                else:
                    state[key] = value
            self._write_rollout_state(name, state)
        return state

    def pin_serving(self, name: str, version: int) -> None:
        """Pin the version :meth:`load` / ``load_resilient`` default to."""
        version = int(version)
        if version not in self.versions(name):
            raise ModelNotFound(
                f"cannot pin model {name!r} to missing version {version}"
            )
        self._update_rollout_state(name, serving=version)
        obs.inc("serve.registry.pins_total")
        _LOG.info("serving version pinned",
                  trace_id=current_trace_id() or "-",
                  model=name, version=version)

    def unpin_serving(self, name: str) -> None:
        """Drop the pin; the latest version wins again."""
        self._update_rollout_state(name, serving=None)

    def serving_version(self, name: str) -> int | None:
        """The pinned serving version, validated against the catalog.

        Returns None when nothing is pinned; raises
        :class:`ServingPinError` when the pin names a missing version.
        """
        pinned = self.rollout_state(name).get("serving")
        if pinned is None:
            return None
        pinned = int(pinned)
        if pinned not in self.versions(name):
            raise ServingPinError(
                f"model {name!r} is pinned to version {pinned}, which is "
                f"missing from {self._model_dir(name)}",
                path=self._model_dir(name) / ROLLOUT_STATE_FILE,
            )
        return pinned

    def resolve_serving(self, name: str) -> int | None:
        """Version to serve by default: the pin when set, else latest."""
        pinned = self.serving_version(name)
        return pinned if pinned is not None else self.latest_version(name)

    def set_shadow(self, name: str, version: int) -> None:
        """Mark a version as the shadow candidate (mirrored, not served)."""
        version = int(version)
        if version not in self.versions(name):
            raise ModelNotFound(
                f"cannot shadow model {name!r} missing version {version}"
            )
        self._update_rollout_state(name, shadow=version)

    def clear_shadow(self, name: str) -> None:
        self._update_rollout_state(name, shadow=None)

    def shadow_version(self, name: str) -> int | None:
        shadow = self.rollout_state(name).get("shadow")
        return None if shadow is None else int(shadow)

    def set_canary(self, name: str, version: int, fraction: float) -> None:
        """Mark a version as canary for a deterministic key slice."""
        version = int(version)
        fraction = float(fraction)
        if version not in self.versions(name):
            raise ModelNotFound(
                f"cannot canary model {name!r} missing version {version}"
            )
        if not 0.0 < fraction <= 1.0:
            raise ValueError("canary fraction must be in (0, 1]")
        self._update_rollout_state(
            name, canary={"version": version, "fraction": fraction}
        )

    def clear_canary(self, name: str) -> None:
        self._update_rollout_state(name, canary=None)

    def canary_stage(self, name: str) -> dict | None:
        """``{"version": int, "fraction": float}`` or None."""
        canary = self.rollout_state(name).get("canary")
        if canary is None:
            return None
        return {"version": int(canary["version"]),
                "fraction": float(canary["fraction"])}

    def promote_serving(self, name: str, version: int) -> None:
        """Pin ``version`` and clear shadow/canary in one atomic write."""
        version = int(version)
        if version not in self.versions(name):
            raise ModelNotFound(
                f"cannot promote model {name!r} to missing version {version}"
            )
        self._update_rollout_state(name, serving=version, shadow=None,
                                   canary=None)
        obs.inc("serve.registry.promotions_total")
        _LOG.info("serving version promoted",
                  trace_id=current_trace_id() or "-",
                  model=name, version=version)

    def reject_candidate(self, name: str, version: int
                         ) -> pathlib.Path | None:
        """Quarantine a rollout candidate: rename to ``*.rejected``.

        Clears the candidate's shadow/canary markers (one atomic state
        write), evicts any cached deserialization, and drops it from the
        last-good fallback so a tripped breaker can never resurrect it.
        The serving pin is untouched -- rollback is "the pin stays where
        it was".
        """
        version = int(version)
        state = self.rollout_state(name)
        changes = {}
        if state.get("shadow") == version:
            changes["shadow"] = None
        canary = state.get("canary")
        if isinstance(canary, dict) and int(canary.get("version", -1)
                                            ) == version:
            changes["canary"] = None
        if changes:
            self._update_rollout_state(name, **changes)
        with self._lock:
            self._loaded.pop((name, version), None)
            good = self._last_good.get(name)
            if good is not None and good[0] == version:
                self._last_good.pop(name)
        target = self.path(name, version)
        dest = target.with_name(target.name + REJECTED_SUFFIX)
        try:
            os.replace(target, dest)
        except FileNotFoundError:
            dest = None
        obs.inc("serve.registry.rejected_total")
        _LOG.warning("rollout candidate rejected",
                     trace_id=current_trace_id() or "-",
                     model=name, version=version,
                     path=str(dest) if dest else "-")
        return dest

    # -- save / load -------------------------------------------------------- #

    def save(self, name: str, model, version: int | None = None) -> int:
        """Serialize ``model`` as a new (or given) version; returns it."""
        d = self._model_dir(name)
        if version is None:
            latest = self.latest_version(name)
            version = 1 if latest is None else latest + 1
        elif version < 1:
            raise ValueError("version must be >= 1")
        d.mkdir(parents=True, exist_ok=True)
        target = self.path(name, version)
        payload = json.dumps(model_to_dict(model), sort_keys=True)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        with self._lock:
            self._loaded[(name, int(version))] = model
            self._loaded.move_to_end((name, int(version)))
            while len(self._loaded) > self.max_loaded:
                self._loaded.popitem(last=False)
        obs.inc("serve.registry.saves_total")
        return int(version)

    def _check_view(self, model, expect_view, name: str, version: int):
        """Raise :class:`FeatureViewMismatch` unless the stamp matches."""
        if expect_view is None:
            return
        expected = _expected_fingerprint(expect_view)
        stamp = getattr(model, "feature_view_", None)
        actual = stamp.get("fingerprint") if isinstance(stamp, dict) else None
        if actual == expected:
            return
        obs.inc("serve.registry.view_mismatches_total")
        described = (f"feature view {stamp.get('name')!r} "
                     f"(version {stamp.get('version')!r}, "
                     f"fingerprint {actual})"
                     if isinstance(stamp, dict) else "no feature-view stamp")
        raise FeatureViewMismatch(
            f"model {name!r} version {version} was published against "
            f"{described}, but serving expects fingerprint {expected}",
            expected=expected, actual=actual,
            path=self.path(name, int(version)),
        )

    def load(self, name: str, version: int | None = None, *,
             expect_view=None):
        """Deserialize a model (latest version when unspecified).

        ``expect_view`` (a fingerprint string, ``FeatureView`` or stamp
        dict) enforces the model/feature-version handshake: the loaded
        model -- memoized or fresh from disk -- must carry a matching
        ``feature_view_`` stamp or :class:`FeatureViewMismatch` is
        raised.

        With no explicit ``version`` the serving pin wins when set
        (:meth:`pin_serving`; :class:`ServingPinError` if it dangles),
        else the latest version.
        """
        if version is None:
            version = self.resolve_serving(name)
            if version is None:
                raise ModelNotFound(
                    f"no versions of model {name!r} in {self.root}"
                )
        key = (name, int(version))
        with self._lock:
            model = self._loaded.get(key)
            if model is not None:
                self._loaded.move_to_end(key)
        if model is not None:
            obs.inc("serve.registry.memo_hits_total")
            self._check_view(model, expect_view, name, int(version))
            return model
        target = self.path(name, int(version))
        if not target.is_file():
            raise ModelNotFound(
                f"model {name!r} version {version} not found at {target}"
            )
        faults.inject("serve.model_load", key=(name, int(version)))
        try:
            payload = json.loads(target.read_text())
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"corrupt model payload at {target}: {exc}", path=target
            ) from exc
        model = model_from_dict(payload)
        with self._lock:
            self._loaded[key] = model
            self._loaded.move_to_end(key)
            while len(self._loaded) > self.max_loaded:
                self._loaded.popitem(last=False)
            good = self._last_good.get(name)
            if good is None or good[0] <= int(version):
                self._last_good[name] = (int(version), model)
        obs.inc("serve.registry.loads_total")
        self._check_view(model, expect_view, name, int(version))
        return model

    # -- resilience --------------------------------------------------------- #

    def breaker(self, name: str) -> CircuitBreaker:
        """The per-model-name circuit breaker guarding resilient loads."""
        with self._lock:
            b = self._breakers.get(name)
            if b is None:
                b = CircuitBreaker(name=f"registry:{name}",
                                   failure_threshold=3, reset_timeout_s=5.0)
                self._breakers[name] = b
            return b

    def quarantine(self, name: str, version: int) -> pathlib.Path | None:
        """Rename a corrupt version file to ``*.corrupt``; returns the
        new path (None when the file is already gone).

        The quarantined file drops out of :meth:`versions` /
        :meth:`latest_version` immediately but stays on disk for a
        post-mortem, and the slot's cached deserialization (if any) is
        evicted so it cannot shadow the corruption.
        """
        target = self.path(name, int(version))
        dest = target.with_name(target.name + CORRUPT_SUFFIX)
        try:
            os.replace(target, dest)
        except FileNotFoundError:
            return None
        with self._lock:
            self._loaded.pop((name, int(version)), None)
        obs.inc("resil.registry.quarantined_total")
        _LOG.warning("model version quarantined",
                     trace_id=current_trace_id() or "-",
                     model=name, version=int(version), path=str(dest))
        return dest

    def load_resilient(
        self,
        name: str,
        version: int | None = None,
        *,
        policy: RetryPolicy | None = None,
        sleep=time.sleep,
        expect_view=None,
    ):
        """A model for ``name``, surviving flaky loads and corrupt files.

        ``expect_view`` enforces the feature-version handshake exactly as
        in :meth:`load`; a :class:`FeatureViewMismatch` raises
        immediately -- no quarantine, no retry, no fallback to an older
        version -- because a wrongly-deployed model is not corruption
        that ageing out can fix.

        Per candidate version (the requested one, else the latest, then
        falling back through older versions): transient failures --
        injected ``serve.model_load`` faults, OS errors -- are retried
        under ``policy``; a :class:`RegistryError` (corrupt payload)
        quarantines the file and falls straight through to the previous
        version.  Fallbacks count ``resil.registry.fallbacks_total``.

        The per-name breaker trips after repeated failures; while open,
        the newest previously loaded model is returned directly
        (``resil.registry.breaker_fallbacks_total``) and the disk is
        left alone.  Raises :class:`ModelNotFound` when no version
        exists, :class:`RetryExhausted` when every candidate kept
        failing transiently, :class:`CircuitOpenError` when the breaker
        is open and nothing good was ever loaded.
        """
        policy = policy or DEFAULT_LOAD_POLICY
        breaker = self.breaker(name)
        if not breaker.allow():
            with self._lock:
                good = self._last_good.get(name)
            if good is not None:
                self._check_view(good[1], expect_view, name, good[0])
                obs.inc("resil.registry.breaker_fallbacks_total")
                _LOG.warning("load breaker open; serving last good model",
                             trace_id=current_trace_id() or "-",
                             model=name, version=good[0])
                return good[1]
            raise CircuitOpenError(
                f"model {name!r}: load circuit open and no good version "
                "in memory"
            )
        known = self.versions(name)
        if version is None:
            # The serving pin (when set) caps the candidate list exactly
            # like an explicit version would; a dangling pin raises
            # ServingPinError rather than silently serving the latest.
            version = self.serving_version(name)
        if version is None:
            candidates = list(reversed(known))
        else:
            candidates = [v for v in reversed(known) if v <= int(version)]
            if int(version) not in known:
                raise ModelNotFound(
                    f"model {name!r} version {version} not found in "
                    f"{self.root}"
                )
        if not candidates:
            raise ModelNotFound(
                f"no versions of model {name!r} in {self.root}"
            )
        last_exc: Exception | None = None
        for i, v in enumerate(candidates):
            fallback_left = i + 1 < len(candidates)
            try:
                model = retry(
                    lambda v=v: self.load(name, v, expect_view=expect_view),
                    policy=policy,
                    retry_on=(FaultError, OSError),
                    label=f"registry.load:{name}:v{v}",
                    sleep=sleep,
                )
            except FeatureViewMismatch:
                raise
            except RegistryError as exc:
                last_exc = exc
                breaker.record_failure()
                self.quarantine(name, v)
                if fallback_left:
                    obs.inc("resil.registry.fallbacks_total")
                    _LOG.warning("falling back to older model version",
                                 trace_id=current_trace_id() or "-",
                                 model=name, from_version=v,
                                 reason="corrupt")
                continue
            except RetryExhausted as exc:
                last_exc = exc
                breaker.record_failure()
                if fallback_left:
                    obs.inc("resil.registry.fallbacks_total")
                    _LOG.warning("falling back to older model version",
                                 trace_id=current_trace_id() or "-",
                                 model=name, from_version=v,
                                 reason="retry_exhausted")
                    continue
                raise
            breaker.record_success()
            return model
        assert last_exc is not None
        raise last_exc
