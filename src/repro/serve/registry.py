"""On-disk model registry: named, versioned, JSON-serialized models.

Layout (one directory per model name, one file per version)::

    <root>/
      airport-tm-gdbt/
        v00001.json
        v00002.json
      global-lm-rf/
        v00001.json

Payloads are ``repro.ml.serialize.model_to_dict`` dicts, so anything the
serializer speaks -- GBDT, random forests, scalers, prediction pipelines
-- can be published and loaded without pickle.  Writes go through a temp
file + ``os.replace`` so a crash never leaves a half-written version,
and a bounded LRU keeps recently used models deserialized in memory.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
from collections import OrderedDict

from repro import obs
from repro.ml.serialize import model_from_dict, model_to_dict

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._+-]*$")
_VERSION_RE = re.compile(r"^v(\d{5})\.json$")


class ModelNotFound(KeyError):
    """Unknown model name or version."""


class ModelRegistry:
    """Load/save versioned models under one root directory."""

    def __init__(self, root: str | os.PathLike, max_loaded: int = 8):
        if max_loaded < 1:
            raise ValueError("max_loaded must be >= 1")
        self.root = pathlib.Path(root)
        self.max_loaded = max_loaded
        self._lock = threading.Lock()
        self._loaded: OrderedDict[tuple[str, int], object] = OrderedDict()

    # -- paths -------------------------------------------------------------- #

    def _model_dir(self, name: str) -> pathlib.Path:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, "
                "'.', '_', '+', '-'"
            )
        return self.root / name

    def path(self, name: str, version: int) -> pathlib.Path:
        return self._model_dir(name) / f"v{int(version):05d}.json"

    # -- catalog ------------------------------------------------------------ #

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and _NAME_RE.match(p.name)
        )

    def versions(self, name: str) -> list[int]:
        d = self._model_dir(name)
        if not d.is_dir():
            return []
        out = []
        for p in d.iterdir():
            m = _VERSION_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def latest_version(self, name: str) -> int | None:
        versions = self.versions(name)
        return versions[-1] if versions else None

    # -- save / load -------------------------------------------------------- #

    def save(self, name: str, model, version: int | None = None) -> int:
        """Serialize ``model`` as a new (or given) version; returns it."""
        d = self._model_dir(name)
        if version is None:
            latest = self.latest_version(name)
            version = 1 if latest is None else latest + 1
        elif version < 1:
            raise ValueError("version must be >= 1")
        d.mkdir(parents=True, exist_ok=True)
        target = self.path(name, version)
        payload = json.dumps(model_to_dict(model), sort_keys=True)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        with self._lock:
            self._loaded[(name, int(version))] = model
            self._loaded.move_to_end((name, int(version)))
            while len(self._loaded) > self.max_loaded:
                self._loaded.popitem(last=False)
        obs.inc("serve.registry.saves_total")
        return int(version)

    def load(self, name: str, version: int | None = None):
        """Deserialize a model (latest version when unspecified)."""
        if version is None:
            version = self.latest_version(name)
            if version is None:
                raise ModelNotFound(
                    f"no versions of model {name!r} in {self.root}"
                )
        key = (name, int(version))
        with self._lock:
            model = self._loaded.get(key)
            if model is not None:
                self._loaded.move_to_end(key)
        if model is not None:
            obs.inc("serve.registry.memo_hits_total")
            return model
        target = self.path(name, int(version))
        if not target.is_file():
            raise ModelNotFound(
                f"model {name!r} version {version} not found at {target}"
            )
        model = model_from_dict(json.loads(target.read_text()))
        with self._lock:
            self._loaded[key] = model
            self._loaded.move_to_end(key)
            while len(self._loaded) > self.max_loaded:
                self._loaded.popitem(last=False)
        obs.inc("serve.registry.loads_total")
        return model
