"""LRU prediction cache keyed by quantized feature vectors.

Map-style queries hit the same few thousand grid positions over and
over; quantizing each feature to a step (default 0.25) folds
nearly-identical rows onto one key, so repeated lookups skip model
traversal entirely.  Keys are the raw bytes of the quantized ``int64``
vector -- hashing is one ``tobytes`` call, and vectors of different
lengths can never collide.

Thread-safe; the serving batcher consults it on submit and fills it
after every predicted batch.  Hit/miss/eviction counts are kept locally
(for the CLI summary and benchmarks) and mirrored into ``repro.obs``
counters when observability is on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro import obs

#: Sentinels for non-finite features, outside the clip range of real
#: values so a missing reading can never alias a huge real one.
_CLIP = np.int64(2) ** 62
_NAN = np.int64(_CLIP + 1)
_POS_INF = np.int64(_CLIP + 2)
_NEG_INF = np.int64(-(_CLIP + 2))


class PredictionCache:
    """Bounded LRU of ``quantized feature vector -> prediction``."""

    def __init__(self, max_entries: int = 4096, quant_step: float = 0.25):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not quant_step > 0.0:
            raise ValueError("quant_step must be > 0")
        self.max_entries = max_entries
        self.quant_step = quant_step
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key(self, features) -> bytes:
        """Quantized-vector cache key for one feature row."""
        x = np.asarray(features, dtype=float).ravel()
        q = np.rint(x / self.quant_step)
        out = np.empty(len(q), dtype=np.int64)
        finite = np.isfinite(q)
        out[finite] = np.clip(q[finite], -_CLIP, _CLIP).astype(np.int64)
        nonfinite = q[~finite]
        out[~finite] = np.where(
            np.isnan(nonfinite), _NAN,
            np.where(nonfinite > 0, _POS_INF, _NEG_INF),
        )
        return out.tobytes()

    def get(self, key: bytes):
        """Cached prediction for ``key``, or None (refreshes recency)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is None:
            obs.inc("serve.cache.misses_total")
            return None
        obs.inc("serve.cache.hits_total")
        return value

    def put(self, key: bytes, value) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            obs.inc("serve.cache.evictions_total", evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
