"""Histogram-based decision trees (the shared core of GBDT and forests).

Features are quantized once into at most 256 quantile bins; split search
then reduces to per-bin gradient/hessian histograms (the LightGBM-style
construction, Ke et al., NeurIPS 2017).  One builder covers every tree
use in the repo:

* plain regression trees fit targets with ``grad=y, hess=1`` (leaf = mean);
* gradient boosting fits Newton steps with arbitrary grad/hess;
* classification forests fit one-hot targets as multi-output regression.

Trees support multi-output targets: a leaf stores a k-vector and the split
gain sums over outputs.

Growth runs through an iterative, frontier-based engine
(:class:`_TreeGrower`) with the four classic histogram-GBDT
optimizations -- one-shot all-feature offset-bincount histograms, the
histogram-subtraction trick, in-place stable row partitioning, and a
fully vectorized split search (docs/performance.md).  The original
recursive grower survives as :meth:`HistogramTree.fit_reference`
(mirroring the ``predict_binned_slow`` pattern) and the engine produces
bit-identical trees: same node order, splits, values, gains and
``feature_gain_``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs

MAX_BINS = 256


class FeatureBinner:
    """Quantile binning of a float feature matrix into uint8 codes.

    Fits either in one shot (:meth:`fit`) or out of core
    (:meth:`partial_fit` per chunk + :meth:`finalize`, or
    :meth:`fit_stream` over a chunk iterable).  The streaming fit grows
    one :class:`repro.colstore.QuantileSketch` per feature and merges
    chunks into it; as long as a feature's finite values fit the sketch
    capacity (the default holds every paper-scale campaign) the sketch
    is *exact* and the finalized edges are bit-identical to
    :meth:`fit` on the gathered matrix.  Past capacity the edges are
    rank-approximate with a known bound (``docs/colstore.md``).
    """

    def __init__(self, max_bins: int = MAX_BINS, *,
                 sketch_capacity: int | None = None):
        if not 2 <= max_bins <= MAX_BINS:
            raise ValueError(f"max_bins must be in [2, {MAX_BINS}]")
        self.max_bins = max_bins
        self.sketch_capacity = sketch_capacity
        self.edges_: list[np.ndarray] | None = None
        self._sketches: list | None = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.edges_ = []
        qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            col = col[np.isfinite(col)]
            if len(col) == 0 or col.min() == col.max():
                # Missing or constant feature: one bin, never splittable.
                self.edges_.append(np.empty(0))
                continue
            edges = np.unique(np.quantile(col, qs))
            self.edges_.append(edges)
        return self

    def partial_fit(self, X: np.ndarray) -> "FeatureBinner":
        """Absorb one chunk into the per-feature quantile sketches."""
        from repro.colstore import DEFAULT_CAPACITY, QuantileSketch

        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if self._sketches is None:
            cap = self.sketch_capacity or DEFAULT_CAPACITY
            self._sketches = [QuantileSketch(cap) for _ in range(X.shape[1])]
        if len(self._sketches) != X.shape[1]:
            raise ValueError("chunk feature count changed between calls")
        for j, sketch in enumerate(self._sketches):
            col = X[:, j]
            sketch.add(col[np.isfinite(col)])
        return self

    def finalize(self) -> "FeatureBinner":
        """Turn the accumulated sketches into bin edges.

        A sketch that never compacted replays :meth:`fit`'s exact
        arithmetic (``np.quantile`` over the very values it absorbed, in
        insertion order -- the quantile is order-insensitive, so the
        edges are bit-identical to the one-shot fit); a compacted sketch
        answers from its weighted summary.
        """
        if self._sketches is None:
            raise RuntimeError("partial_fit was never called")
        qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        self.edges_ = []
        for sketch in self._sketches:
            if sketch.n == 0 or sketch.min_ == sketch.max_:
                self.edges_.append(np.empty(0))
                continue
            self.edges_.append(np.unique(sketch.quantiles(qs)))
        self._sketches = None
        return self

    def fit_stream(self, chunks) -> "FeatureBinner":
        """Fit from an iterable of 2-D chunks (one pass, bounded memory)."""
        for X in chunks:
            self.partial_fit(X)
        return self.finalize()

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.zeros(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            col = X[:, j]
            codes = np.searchsorted(edges, col, side="right")
            codes[~np.isfinite(col)] = 0  # missing values go to bin 0
            out[:, j] = codes.astype(np.uint8)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        return len(self.edges_[feature]) + 1

    @property
    def n_bins_(self) -> np.ndarray:
        """Per-feature bin counts; what tree growth needs to size its
        histogram grid without rescanning codes per node."""
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        return np.asarray([len(e) + 1 for e in self.edges_], dtype=np.int64)


@dataclass
class TreeParams:
    """Growth limits shared by all tree consumers."""

    max_depth: int = 6
    min_samples_leaf: int = 5
    min_gain: float = 1e-12
    reg_lambda: float = 1.0
    #: Number of features considered per split; None = all ("sqrt" for RF).
    max_features: int | str | None = None


@dataclass
class _Node:
    feature: int = -1
    threshold_bin: int = 0
    left: int = -1
    right: int = -1
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    n_samples: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class _TreeGrower:
    """Iterative frontier-based growth engine for :class:`HistogramTree`.

    Equivalent to the recursive reference grower
    (:meth:`HistogramTree.fit_reference`) node for node and bit for bit,
    but structured around four histogram-GBDT optimizations:

    1. **One-shot histogram construction**: per node, a single set of
       ``np.bincount`` calls over ``codes + per-feature bin offsets``
       builds every feature's grad/hess/count histogram at once, instead
       of a Python loop of ``n_features x n_outputs`` bincounts.
    2. **Histogram subtraction**: only the smaller child's histogram is
       built from rows; the larger child's is derived as
       ``parent - sibling``.  Parent histograms ride the frontier and
       are dropped as soon as both children own theirs.
    3. **In-place stable partition**: one shared set of row-major
       arrays (codes, grad, hess) is reordered in place at each split,
       so a node's rows are a contiguous slice -- no per-node
       ``binned[idx]`` row gathers.
    4. **Vectorized split search**: scores for every (feature, bin)
       candidate live in one 2-D array; a single argmax replaces the
       per-feature Python loop while reproducing its tie-breaking
       (first feature in sampled order, then lowest bin) exactly.

    Bit-identity with the reference is preserved by keeping every float
    that lands in the tree on the reference's exact computation path.
    Node G/H come from contiguous slice sums over rows in original
    order (stable partition).  Direct-built histograms accumulate
    per-cell in ascending row order, so their split scores equal the
    reference's bit for bit; selection then mirrors the reference's
    control flow -- per-feature bin by raw-score argmax, features
    compared on ``gain = score - base`` with first-wins ties (gain
    space matters: scores one ulp apart can round to equal gains).  A
    *derived* (parent - sibling) histogram carries ulp-level rounding
    noise, so its scores only nominate a near-tie band (everything
    within ``BAND_REL`` of the max -- orders of magnitude wider than
    the noise, so the reference's winner is always inside); every
    feature in the band is then re-scored with an exact single-feature
    pass and the same gain-space scan picks the winner.  Stored gains
    always come from the exact path.
    """

    #: Children smaller than this build their histograms directly:
    #: tiny nodes are cheap to histogram but dense in exactly-tied
    #: candidate splits, where derived-histogram noise would force wide
    #: exact re-scoring bands.
    SUBTRACT_MIN_ROWS = 256
    #: Relative half-width of the near-tie band re-scored exactly when
    #: selecting on a derived histogram.  Subtraction noise is
    #: O(depth * 2^-52) relative, ~1e5 times smaller.
    BAND_REL = 1e-8

    def __init__(self, tree: "HistogramTree", binned, grad, hess, rng,
                 n_bins=None):
        self.tree = tree
        p = tree.params
        self.k = tree.n_outputs
        # Own row-major copies: the engine reorders these in place.
        self.C = np.array(binned, order="C")
        self.G = np.array(grad, dtype=float, order="C")
        self.H = np.array(hess, dtype=float, order="C")
        self.n, self.d = self.C.shape
        if n_bins is not None and len(np.asarray(n_bins)):
            B = int(np.max(n_bins))
        else:
            B = int(self.C.max()) + 1 if self.n else 1
        #: Uniform per-feature bin stride; candidate bins beyond a
        #: feature's real range are empty and min_samples_leaf-invalid,
        #: so they can never win.  Floor of 2 keeps (B-1)-wide candidate
        #: grids non-degenerate when every feature is constant.
        self.B = max(B, 2)
        self.lam = max(p.reg_lambda, 1e-12)
        self.msl = p.min_samples_leaf
        self.rng = rng
        self.k_feat = tree._n_split_features(self.d)
        self.full = self.k_feat == self.d
        #: hess == 1 everywhere (regression trees, forests, quantile
        #: boosting): the hessian histogram equals the count histogram
        #: bit for bit (a bincount of ones is the count), so skip
        #: building it.
        self.unit_hess = bool(self.n == 0 or (self.H == 1.0).all())
        # Scratch buffers reused by every histogram build (flat codes
        # and repeated per-output weights), sliced per node.
        width = self.d if self.full else self.k_feat
        self._offsets = np.arange(width, dtype=np.intp) * self.B
        self._fbuf = np.empty((self.n, width), dtype=np.intp)
        self._wbuf = np.empty(self.n * width)

    # -- histogram construction -------------------------------------------- #

    def _build_hist(self, s: int, e: int, features) -> np.ndarray:
        """All-feature histogram for rows [s, e): shape (nf, B, 2k+1).

        Planes ``[..., :k]`` hold grad sums, ``[..., k:2k]`` hess sums,
        ``[..., 2k]`` counts (exact integers in float64, so histogram
        subtraction never loses a row).  Per-cell accumulation order is
        ascending row order -- identical to the reference grower's
        per-feature bincounts.
        """
        m = e - s
        k, B = self.k, self.B
        if features is None:
            codes, nf = self.C[s:e], self.d
        else:
            codes, nf = self.C[s:e][:, features], len(features)
        flat = self._fbuf[:m]  # (m, nf): nf always equals the buffer width
        np.add(codes, self._offsets, out=flat, casting="unsafe")
        fr = flat.ravel()
        total = nf * B
        hist = np.zeros((nf, B, 2 * k + 1))
        cnt = np.bincount(fr, minlength=total).reshape(nf, B)
        hist[:, :, 2 * k] = cnt
        wview = self._wbuf[: m * nf].reshape(m, nf)
        for j in range(k):
            wview[:] = self.G[s:e, j, None]
            hist[:, :, j] = np.bincount(
                fr, weights=wview.ravel(), minlength=total
            ).reshape(nf, B)
        if self.unit_hess:
            hist[:, :, k:2 * k] = cnt[:, :, None]
        else:
            for j in range(k):
                wview[:] = self.H[s:e, j, None]
                hist[:, :, j + k] = np.bincount(
                    fr, weights=wview.ravel(), minlength=total
                ).reshape(nf, B)
        obs.inc("tree.hist_built_total")
        return hist

    # -- split search ------------------------------------------------------- #

    def _scores(self, hist: np.ndarray, G: np.ndarray, H: np.ndarray,
                n_node: int) -> np.ndarray:
        """Scores for every (feature, bin) candidate in one sweep.

        One cumulative-sum pass over the histogram planes, then the
        split objective evaluated on the whole ``(n_features, B-1)``
        grid at once; invalid candidates (min_samples_leaf) are -inf.
        On a direct-built histogram every cell of the result is
        bit-identical to the reference grower's per-feature scores.
        """
        k, B = self.k, self.B
        GL = np.cumsum(hist[:, :, :k], axis=1)[:, : B - 1, :]
        HL = np.cumsum(hist[:, :, k:2 * k], axis=1)[:, : B - 1, :]
        NL = np.cumsum(hist[:, :, 2 * k], axis=1)[:, : B - 1]
        GR = G[None, None, :] - GL
        HR = H[None, None, :] - HL
        NR = n_node - NL
        valid = (NL >= self.msl) & (NR >= self.msl)
        score = ((GL * GL / (HL + self.lam)).sum(axis=2)
                 + (GR * GR / (HR + self.lam)).sum(axis=2))
        score[~valid] = -np.inf
        return score

    # -- exact single-feature score (reference arithmetic) ------------------ #

    def _exact_scores_1f(self, s: int, e: int, f: int,
                         G: np.ndarray, H: np.ndarray) -> np.ndarray:
        """Per-bin scores for one feature on the reference grower's exact
        float path (direct single-feature histogram + cumsum, -inf at
        min_samples_leaf-invalid bins), so derived-histogram rounding
        never reaches stored gains or tie-breaking."""
        k = self.k
        codes = self.C[s:e, f]
        nb = int(codes.max()) + 1
        if nb < 2:
            return np.full(max(nb - 1, 0), -np.inf)
        hist_g = np.empty((nb, k))
        hist_h = np.empty((nb, k))
        hist_n = np.bincount(codes, minlength=nb)
        for j in range(k):
            hist_g[:, j] = np.bincount(codes, weights=self.G[s:e, j],
                                       minlength=nb)
            hist_h[:, j] = np.bincount(codes, weights=self.H[s:e, j],
                                       minlength=nb)
        GL = np.cumsum(hist_g, axis=0)[:-1]
        HL = np.cumsum(hist_h, axis=0)[:-1]
        NL = np.cumsum(hist_n)[:-1]
        GR = G - GL
        HR = H - HL
        NR = (e - s) - NL
        score = (np.sum(GL * GL / (HL + self.lam), axis=1)
                 + np.sum(GR * GR / (HR + self.lam), axis=1))
        score[~((NL >= self.msl) & (NR >= self.msl))] = -np.inf
        return score

    def _select(self, score: np.ndarray, derived: bool, s: int, e: int,
                features, G: np.ndarray, H: np.ndarray, base: float):
        """Winning (feature-position, bin, gain) or None.

        The reference picks each feature's bin by raw-score argmax but
        compares *features* on ``gain = score[bin] - base`` with strict
        ``>`` -- and two scores one ulp apart can round to the same
        gain, so tie-breaking must happen in gain space, not score
        space.  Direct histograms: per-feature argmax + vectorized gain,
        first occurrence of the max gain.  Derived histograms: exact
        re-scoring of every feature in the near-tie band (see class
        docstring), same first-wins scan over exact gains.
        """
        if score.size == 0:
            return None
        if not derived:
            b_f = np.argmax(score, axis=1)  # first occurrence per feature
            sc_f = score[np.arange(score.shape[0]), b_f]
            gain_f = sc_f - base
            f_pos = int(np.argmax(gain_f))  # first occurrence of max gain
            gain = float(gain_f[f_pos])
            if not np.isfinite(gain):
                return None
            return f_pos, int(b_f[f_pos]), gain
        smax = float(score.max())
        if not np.isfinite(smax):
            return None
        delta = self.BAND_REL * (abs(smax) + 1.0)
        in_band = (score >= smax - delta).any(axis=1)
        best = None
        best_gain = -np.inf
        for f_pos in np.flatnonzero(in_band):  # ascending sample order
            f_pos = int(f_pos)
            f = f_pos if features is None else int(features[f_pos])
            exact = self._exact_scores_1f(s, e, f, G, H)
            if exact.size == 0:
                continue
            b = int(np.argmax(exact))
            gain = float(exact[b]) - base
            if np.isfinite(gain) and gain > best_gain:
                best = (f_pos, b)
                best_gain = gain
        if best is None:
            return None
        return best[0], best[1], best_gain

    # -- partition ---------------------------------------------------------- #

    def _partition(self, s: int, e: int, f: int, b: int) -> int:
        """Stable in-place partition of rows [s, e) on code <= b.

        Left-going rows keep their relative (original) order, as do
        right-going rows, so every node's slice stays in the exact row
        order the reference grower's ``idx[mask]`` chain would produce.
        """
        mask = self.C[s:e, f] <= b
        nl = int(np.count_nonzero(mask))
        if nl == 0 or nl == e - s:
            return nl
        perm = np.concatenate([np.flatnonzero(mask), np.flatnonzero(~mask)])
        self.C[s:e] = self.C[s:e][perm]
        self.G[s:e] = self.G[s:e][perm]
        self.H[s:e] = self.H[s:e][perm]
        return nl

    # -- main loop ---------------------------------------------------------- #

    def run(self) -> None:
        tree, p = self.tree, self.tree.params
        nodes = tree.nodes
        obs_on = obs.enabled()
        # Frontier entries:
        # (start, end, depth, hist, derived, parent_id, is_right).
        # LIFO with right pushed first reproduces the reference's
        # pre-order: parent, full left subtree, then right subtree --
        # node ids, rng draws and feature_gain_ accumulation all land in
        # the reference's order.
        stack = [(0, self.n, 0, None, False, -1, False)]
        while stack:
            s, e, depth, hist, derived, parent, is_right = stack.pop()
            t0 = time.perf_counter() if obs_on else 0.0
            nid = len(nodes)
            if parent >= 0:
                if is_right:
                    nodes[parent].right = nid
                else:
                    nodes[parent].left = nid
            m = e - s
            G = self.G[s:e].sum(axis=0)
            H = self.H[s:e].sum(axis=0)
            node = _Node(value=tree._leaf_value(G, H), n_samples=m)
            nodes.append(node)
            if depth >= p.max_depth or m < 2 * p.min_samples_leaf:
                continue
            features = (None if self.full
                        else self.rng.choice(self.d, size=self.k_feat,
                                             replace=False))
            if hist is None:
                hist = self._build_hist(s, e, features)
                derived = False
            base = float(np.sum(G * G / (H + self.lam)))
            score = self._scores(hist, G, H, m)
            sel = self._select(score, derived, s, e, features, G, H, base)
            if sel is None:
                continue
            f_pos, b, gain = sel
            f = f_pos if features is None else int(features[f_pos])
            if gain <= 0.0 or gain <= p.min_gain:
                continue
            nl = self._partition(s, e, f, b)
            node.feature = f
            node.threshold_bin = int(b)
            node.gain = gain
            tree.feature_gain_[f] += gain
            cdepth = depth + 1
            nr = m - nl
            lhist = rhist = None
            lder = rder = False
            if self.full:
                lneed = cdepth < p.max_depth and nl >= 2 * p.min_samples_leaf
                rneed = cdepth < p.max_depth and nr >= 2 * p.min_samples_leaf
                small_is_left = nl <= nr
                other_need = rneed if small_is_left else lneed
                other_size = nr if small_is_left else nl
                # Subtraction pays off only for a large derived child:
                # small ones are cheap to histogram directly and skip
                # the exact re-scoring band entirely.
                if other_need and other_size >= self.SUBTRACT_MIN_ROWS:
                    # Build the smaller child's histogram from its rows;
                    # its sibling is parent - sibling for free.
                    if small_is_left:
                        shist = self._build_hist(s, s + nl, None)
                    else:
                        shist = self._build_hist(s + nl, e, None)
                    ohist = hist - shist
                    obs.inc("tree.hist_subtracted_total")
                    small_need = lneed if small_is_left else rneed
                    if small_is_left:
                        lhist = shist if small_need else None
                        rhist, rder = ohist, True
                    else:
                        rhist = shist if small_need else None
                        lhist, lder = ohist, True
            stack.append((s + nl, e, cdepth, rhist, rder, nid, True))
            stack.append((s, s + nl, cdepth, lhist, lder, nid, False))
            if obs_on:
                obs.observe("tree.node_grow_s", time.perf_counter() - t0)


def _preorder_renumber(nodes: list[_Node]) -> list[_Node]:
    """Reorder a level-order node list into the engine's pre-order.

    The streaming grower creates nodes breadth-first; renumbering to
    pre-order (parent, full left subtree, right subtree) keeps
    serialized trees, node-id goldens and ``apply`` leaf ids on the same
    layout the in-memory engine produces.
    """
    if not nodes:
        return nodes
    order: list[int] = []
    stack = [0]
    while stack:
        i = stack.pop()
        order.append(i)
        node = nodes[i]
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
    remap = np.full(len(nodes), -1, dtype=np.int64)
    for new, old in enumerate(order):
        remap[old] = new
    out = []
    for old in order:
        node = nodes[old]
        if not node.is_leaf:
            node.left = int(remap[node.left])
            node.right = int(remap[node.right])
        out.append(node)
    return out


class _StreamingTreeGrower:
    """Level-order growth engine reading ``(binned, grad, hess)`` chunks.

    The out-of-core counterpart of :class:`_TreeGrower`: instead of
    owning row-major arrays it re-reads a chunk stream once per tree
    level.  Each pass advances every row's *slot* (the node it currently
    sits in, an int32 per row -- the only per-row state kept across
    passes) by applying the splits chosen at the previous level, then
    accumulates one combined histogram for the whole frontier with a
    single bincount per output plane over the key
    ``slot * (d * B) + feature * B + code``.  Frontiers wider than
    ``CELL_BUDGET`` histogram cells are swept in batches (extra passes,
    same bounded memory).

    Split search per node reuses the engine's direct-histogram math
    (cumsum scores, min_samples_leaf validity, per-feature argmax, gain
    compared in gain space with first-wins ties).  Differences from the
    in-memory engine, by design:

    * node G/H/count come from the histogram planes (feature 0's bins)
      and histograms accumulate chunk-partially, so values match the
      engine to summation-order (ulp-level) noise -- the seeded
      equivalence tests bound it.  Single-chunk streams never reach this
      class: :meth:`HistogramTree.fit_binned_chunks` routes them to the
      exact engine.
    * with ``max_features`` set, feature subsets draw per node in level
      order (root, then children left to right), not the engine's
      pre-order -- deterministic for a seed, but a different tree.

    After growth, nodes are renumbered to pre-order and
    ``feature_gain_`` is re-accumulated in that order, so downstream
    consumers see the engine's layout.
    """

    #: Max histogram cells (nodes x features x bins x planes) per sweep.
    CELL_BUDGET = 1 << 24

    def __init__(self, tree: "HistogramTree", chunks, d: int, rng,
                 n_bins=None):
        self.tree = tree
        self.chunks = chunks  # zero-arg callable -> fresh chunk iterator
        self.d = d
        self.rng = rng
        self.k = tree.n_outputs
        p = tree.params
        if n_bins is not None and len(np.asarray(n_bins)):
            self.B = max(int(np.max(n_bins)), 2)
        else:
            self.B = MAX_BINS  # codes are uint8; extra bins never win
        self.lam = max(p.reg_lambda, 1e-12)
        self.msl = p.min_samples_leaf
        self.k_feat = tree._n_split_features(d)
        self.full = self.k_feat == self.d
        self._offsets = np.arange(d, dtype=np.intp) * self.B
        #: Per-chunk int32 node-id per row (~4 bytes/row of driver state).
        self.slots: list[np.ndarray] = []

    # -- one stream pass ----------------------------------------------------- #

    def _sweep(self, batch: list[int], advance: bool) -> np.ndarray:
        """Histogram rows [all chunks] sitting in ``batch`` nodes.

        ``advance`` applies the previous level's splits to every row's
        slot first (done exactly once per level, on its first batch).
        Returns shape ``(len(batch), d, B, 2k+1)``; planes as in
        :meth:`_TreeGrower._build_hist`, accumulated in chunk order.
        """
        k, B, d = self.k, self.B, self.d
        nodes = self.tree.nodes
        feat = np.asarray([n.feature for n in nodes], dtype=np.int64)
        thr = np.asarray([n.threshold_bin for n in nodes], dtype=np.int64)
        left = np.asarray([n.left for n in nodes], dtype=np.int64)
        right = np.asarray([n.right for n in nodes], dtype=np.int64)
        slot_of = np.full(len(nodes), -1, dtype=np.int64)
        for i, nid in enumerate(batch):
            slot_of[nid] = i
        S = len(batch)
        total = S * d * B
        hist = np.zeros((S, d, B, 2 * k + 1))
        first_pass = not self.slots
        for ci, (binned, grad, hess) in enumerate(self.chunks()):
            binned = np.asarray(binned)
            grad = np.atleast_2d(np.asarray(grad, dtype=float).T).T
            m = len(binned)
            if first_pass:
                self.slots.append(np.zeros(m, dtype=np.int32))
            elif ci >= len(self.slots) or len(self.slots[ci]) != m:
                raise ValueError(
                    "chunk stream changed shape between passes; "
                    "fit_binned_chunks needs a stable re-iterable stream"
                )
            ids = self.slots[ci]
            if advance and not first_pass:
                act = np.flatnonzero(np.take(feat, ids) >= 0)
                if act.size:
                    nid = ids[act]
                    f = np.take(feat, nid)
                    goes = binned[act, f] <= np.take(thr, nid)
                    ids[act] = np.where(
                        goes, np.take(left, nid), np.take(right, nid)
                    ).astype(np.int32)
            rows = np.flatnonzero(np.take(slot_of, ids) >= 0)
            if rows.size == 0:
                continue
            slot_r = slot_of[ids[rows]]
            keys = binned[rows].astype(np.intp)
            keys += self._offsets
            keys += (slot_r * (d * B))[:, None]
            fr = keys.ravel()
            cnt = np.bincount(fr, minlength=total).reshape(S, d, B)
            hist[:, :, :, 2 * k] += cnt
            wbuf = np.empty((rows.size, d))
            for j in range(k):
                wbuf[:] = grad[rows, j, None]
                hist[:, :, :, j] += np.bincount(
                    fr, weights=wbuf.ravel(), minlength=total
                ).reshape(S, d, B)
            if hess is None:
                for j in range(k):
                    hist[:, :, :, k + j] += cnt
            else:
                hess = np.atleast_2d(np.asarray(hess, dtype=float).T).T
                for j in range(k):
                    wbuf[:] = hess[rows, j, None]
                    hist[:, :, :, k + j] += np.bincount(
                        fr, weights=wbuf.ravel(), minlength=total
                    ).reshape(S, d, B)
        obs.inc("tree.stream_sweeps_total")
        return hist

    # -- per-node split search (direct-histogram math) ----------------------- #

    def _node_split(self, h: np.ndarray, G: np.ndarray, H: np.ndarray,
                    m: int, features):
        """Winning (feature, bin, gain) for one node, or None."""
        k, B = self.k, self.B
        hf = h if features is None else h[features]
        GL = np.cumsum(hf[:, :, :k], axis=1)[:, : B - 1, :]
        HL = np.cumsum(hf[:, :, k:2 * k], axis=1)[:, : B - 1, :]
        NL = np.cumsum(hf[:, :, 2 * k], axis=1)[:, : B - 1]
        GR = G[None, None, :] - GL
        HR = H[None, None, :] - HL
        NR = m - NL
        valid = (NL >= self.msl) & (NR >= self.msl)
        score = ((GL * GL / (HL + self.lam)).sum(axis=2)
                 + (GR * GR / (HR + self.lam)).sum(axis=2))
        score[~valid] = -np.inf
        if score.size == 0:
            return None
        base = float(np.sum(G * G / (H + self.lam)))
        b_f = np.argmax(score, axis=1)
        sc_f = score[np.arange(score.shape[0]), b_f]
        gain_f = sc_f - base
        f_pos = int(np.argmax(gain_f))
        gain = float(gain_f[f_pos])
        if not np.isfinite(gain):
            return None
        f = f_pos if features is None else int(features[f_pos])
        return f, int(b_f[f_pos]), gain

    # -- main loop ----------------------------------------------------------- #

    def run(self) -> None:
        tree, p = self.tree, self.tree.params
        nodes = tree.nodes
        k = self.k
        nodes.append(_Node())
        frontier: list[int] = [0]
        depths = {0: 0}
        cells_per_node = self.d * self.B * (2 * k + 1)
        per_batch = max(1, self.CELL_BUDGET // cells_per_node)
        while frontier:
            new_frontier: list[int] = []
            for start in range(0, len(frontier), per_batch):
                batch = frontier[start:start + per_batch]
                hist = self._sweep(batch, advance=start == 0)
                for s_idx, nid in enumerate(batch):
                    h = hist[s_idx]
                    G = h[0, :, :k].sum(axis=0)
                    H = h[0, :, k:2 * k].sum(axis=0)
                    m = int(round(float(h[0, :, 2 * k].sum())))
                    node = nodes[nid]
                    node.value = tree._leaf_value(G, H)
                    node.n_samples = m
                    depth = depths.pop(nid)
                    if depth >= p.max_depth or m < 2 * p.min_samples_leaf:
                        continue
                    features = (None if self.full
                                else self.rng.choice(self.d, size=self.k_feat,
                                                     replace=False))
                    sel = self._node_split(h, G, H, m, features)
                    if sel is None:
                        continue
                    f, b, gain = sel
                    if gain <= 0.0 or gain <= p.min_gain:
                        continue
                    node.feature = f
                    node.threshold_bin = int(b)
                    node.gain = gain
                    node.left = len(nodes)
                    nodes.append(_Node())
                    node.right = len(nodes)
                    nodes.append(_Node())
                    depths[node.left] = depths[node.right] = depth + 1
                    new_frontier.extend((node.left, node.right))
            frontier = new_frontier
        tree.nodes = _preorder_renumber(nodes)
        tree.feature_gain_ = np.zeros(self.d)
        for node in tree.nodes:
            if not node.is_leaf:
                tree.feature_gain_[node.feature] += node.gain


class HistogramTree:
    """One grown tree over pre-binned features.

    Growth uses the iterative frontier engine (:class:`_TreeGrower`:
    offset-bincount histograms, histogram subtraction, in-place stable
    partition, vectorized split search); the original recursive grower
    survives as :meth:`fit_reference` because it is the ground truth the
    growth-equivalence property tests (and ``benchmarks/
    bench_gbdt_fit.py``) compare against, exactly as
    :meth:`predict_binned_slow` anchors the vectorized traversal.

    Prediction uses a vectorized level-order descent over flattened node
    arrays (see :meth:`predict_binned`); the original per-row/per-node
    loop survives as :meth:`predict_binned_slow` because it is the
    reference implementation the equivalence property tests (and the
    serving benchmark baseline) compare against.
    """

    def __init__(self, params: TreeParams):
        self.params = params
        self.nodes: list[_Node] = []
        self.n_outputs = 1
        #: Total split gain attributed to each feature (importance raw score).
        self.feature_gain_: np.ndarray | None = None
        #: Flattened node arrays for vectorized descent (built lazily).
        self._flat: tuple[np.ndarray, ...] | None = None

    # -- growing ------------------------------------------------------------ #

    def _prepare_fit(self, binned, grad, hess):
        binned = np.asarray(binned)
        grad = np.atleast_2d(np.asarray(grad, dtype=float).T).T
        hess = np.atleast_2d(np.asarray(hess, dtype=float).T).T
        if grad.shape != hess.shape or len(grad) != len(binned):
            raise ValueError("grad/hess/binned shape mismatch")
        self.n_outputs = grad.shape[1]
        self.feature_gain_ = np.zeros(binned.shape[1])
        self.nodes = []
        self._flat = None
        return binned, grad, hess

    def fit(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rng: np.random.Generator | None = None,
        n_bins: np.ndarray | None = None,
    ) -> "HistogramTree":
        """Grow on uint8-binned X; grad/hess are (n,) or (n, k).

        ``n_bins`` (per-feature bin counts, e.g.
        :attr:`FeatureBinner.n_bins_`) sizes the histogram grid without
        rescanning codes; when omitted the engine takes one max over
        ``binned``.  Codes must stay below the advertised bin counts.
        """
        binned, grad, hess = self._prepare_fit(binned, grad, hess)
        rng = rng or np.random.default_rng()
        _TreeGrower(self, binned, grad, hess, rng, n_bins=n_bins).run()
        return self

    def fit_reference(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rng: np.random.Generator | None = None,
        n_bins: np.ndarray | None = None,
    ) -> "HistogramTree":
        """Reference recursive grower (pre-engine implementation).

        Kept as ground truth for the growth-equivalence property tests
        and the baseline in ``benchmarks/bench_gbdt_fit.py``; the
        engine in :meth:`fit` must stay bit-for-bit identical to it.
        ``n_bins`` is accepted for signature compatibility and ignored
        (this grower rescans codes per node).
        """
        del n_bins
        binned, grad, hess = self._prepare_fit(binned, grad, hess)
        rng = rng or np.random.default_rng()
        idx_all = np.arange(len(binned))
        self._grow_reference(binned, grad, hess, idx_all, depth=0, rng=rng)
        return self

    def fit_binned_chunks(
        self,
        chunks,
        rng: np.random.Generator | None = None,
        n_bins: np.ndarray | None = None,
    ) -> "HistogramTree":
        """Grow out of core from a re-iterable ``(binned, grad, hess)`` stream.

        ``chunks`` is a zero-arg callable returning a fresh iterator
        over the *same* chunk sequence on every call (a colstore-backed
        generator function, typically); ``hess=None`` in a triple means
        unit hessians.  The stream is re-read once per tree level, so
        peak memory is one chunk plus the frontier histogram plus ~4
        bytes of slot state per row -- never the gathered matrix.

        A stream holding a single chunk is routed straight through
        :meth:`fit` and is bit-identical to the in-memory engine;
        multi-chunk growth matches it to chunk-partial summation (ulp
        level; see :class:`_StreamingTreeGrower` for the exact
        contract).
        """
        rng = rng or np.random.default_rng()
        it = chunks()
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("empty chunk stream") from None
        single = next(it, None) is None
        del it
        binned0, grad0, hess0 = first
        if single:
            if hess0 is None:
                hess0 = np.ones_like(np.atleast_2d(
                    np.asarray(grad0, dtype=float).T).T)
            return self.fit(binned0, grad0, hess0, rng=rng, n_bins=n_bins)
        grad0 = np.atleast_2d(np.asarray(grad0, dtype=float).T).T
        d = np.asarray(binned0).shape[1]
        del first, binned0, hess0
        self.n_outputs = grad0.shape[1]
        self.feature_gain_ = np.zeros(d)
        self.nodes = []
        self._flat = None
        _StreamingTreeGrower(self, chunks, d, rng, n_bins=n_bins).run()
        return self

    def _n_split_features(self, n_features: int) -> int:
        mf = self.params.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(mf), n_features))

    def _leaf_value(self, G: np.ndarray, H: np.ndarray) -> np.ndarray:
        return G / (H + max(self.params.reg_lambda, 1e-12))

    def _grow_reference(self, binned, grad, hess, idx, depth, rng) -> int:
        node_id = len(self.nodes)
        G = grad[idx].sum(axis=0)
        H = hess[idx].sum(axis=0)
        node = _Node(value=self._leaf_value(G, H), n_samples=len(idx))
        self.nodes.append(node)

        p = self.params
        if depth >= p.max_depth or len(idx) < 2 * p.min_samples_leaf:
            return node_id

        n_features = binned.shape[1]
        k_feat = self._n_split_features(n_features)
        features = (np.arange(n_features) if k_feat == n_features
                    else rng.choice(n_features, size=k_feat, replace=False))

        # Floor the regularizer so empty bins (H == 0) cannot divide by zero.
        lam = max(p.reg_lambda, 1e-12)
        base_score = float(np.sum(G * G / (H + lam)))
        best_gain, best_feature, best_bin = 0.0, -1, -1

        codes_node = binned[idx]
        for f in features:
            codes = codes_node[:, f]
            n_bins = int(codes.max()) + 1
            if n_bins < 2:
                continue
            # Per-bin gradient/hessian sums for every output.
            hist_g = np.empty((n_bins, self.n_outputs))
            hist_h = np.empty((n_bins, self.n_outputs))
            hist_n = np.bincount(codes, minlength=n_bins)
            for k in range(self.n_outputs):
                hist_g[:, k] = np.bincount(codes, weights=grad[idx, k],
                                           minlength=n_bins)
                hist_h[:, k] = np.bincount(codes, weights=hess[idx, k],
                                           minlength=n_bins)
            GL = np.cumsum(hist_g, axis=0)[:-1]
            HL = np.cumsum(hist_h, axis=0)[:-1]
            NL = np.cumsum(hist_n)[:-1]
            GR = G - GL
            HR = H - HL
            NR = len(idx) - NL
            valid = (NL >= p.min_samples_leaf) & (NR >= p.min_samples_leaf)
            if not valid.any():
                continue
            score = (np.sum(GL * GL / (HL + lam), axis=1)
                     + np.sum(GR * GR / (HR + lam), axis=1))
            score[~valid] = -np.inf
            b = int(np.argmax(score))
            gain = float(score[b]) - base_score
            if gain > best_gain:
                best_gain, best_feature, best_bin = gain, int(f), b

        if best_feature < 0 or best_gain <= p.min_gain:
            return node_id

        mask = codes_node[:, best_feature] <= best_bin
        left_idx, right_idx = idx[mask], idx[~mask]
        node.feature = best_feature
        node.threshold_bin = best_bin
        node.gain = best_gain
        self.feature_gain_[best_feature] += best_gain
        node.left = self._grow_reference(binned, grad, hess, left_idx,
                                         depth + 1, rng)
        node.right = self._grow_reference(binned, grad, hess, right_idx,
                                          depth + 1, rng)
        return node_id

    # -- prediction ---------------------------------------------------------- #

    def _ensure_flat(self) -> tuple[np.ndarray, ...]:
        """Flattened (feature, threshold, left, right, values) node arrays.

        Built once per grown/deserialized tree; every structure change
        goes through ``fit`` (which resets the cache), so staleness is
        impossible in normal use.
        """
        if self._flat is None or len(self._flat[0]) != len(self.nodes):
            nodes = self.nodes
            self._flat = (
                np.asarray([n.feature for n in nodes], dtype=np.int64),
                np.asarray([n.threshold_bin for n in nodes], dtype=np.int64),
                np.asarray([n.left for n in nodes], dtype=np.int64),
                np.asarray([n.right for n in nodes], dtype=np.int64),
                np.stack([np.asarray(n.value, dtype=float) for n in nodes]),
            )
        return self._flat

    def _descend(self, binned: np.ndarray) -> np.ndarray:
        """Vectorized level-order descent: the leaf node-id per row."""
        feature, threshold, left, right, _ = self._ensure_flat()
        n = len(binned)
        node_ids = np.zeros(n, dtype=np.int64)
        # Rows still sitting at an internal node, advanced one level per
        # iteration -- at most ``depth`` passes of O(n) numpy work.
        active = np.flatnonzero(np.take(feature, node_ids) >= 0)
        while active.size:
            nid = node_ids[active]
            f = np.take(feature, nid)
            goes_left = binned[active, f] <= np.take(threshold, nid)
            nxt = np.where(goes_left, np.take(left, nid), np.take(right, nid))
            node_ids[active] = nxt
            active = active[np.take(feature, nxt) >= 0]
        return node_ids

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for pre-binned samples; shape (n, k).

        Vectorized over the whole batch: rows descend level-by-level
        through flattened node arrays (``np.take`` gathers), so cost is
        O(depth) numpy passes instead of a Python loop per node group.
        """
        values = self._ensure_flat()[4]
        return np.take(values, self._descend(binned), axis=0)

    def apply(self, binned: np.ndarray) -> np.ndarray:
        """Leaf node-id each pre-binned sample lands in."""
        return self._descend(binned)

    # -- reference (per-row) prediction -------------------------------------- #

    def predict_binned_slow(self, binned: np.ndarray) -> np.ndarray:
        """Reference node-group-loop traversal (pre-vectorization).

        Kept as the ground truth for the equivalence property tests and
        the per-row baseline in ``benchmarks/bench_serve_latency.py``;
        must stay bit-for-bit identical to :meth:`predict_binned`.
        """
        n = len(binned)
        out = np.zeros((n, self.n_outputs))
        node_ids = np.zeros(n, dtype=int)
        active = np.arange(n)
        while len(active):
            nid = node_ids[active]
            # Group by current node to test leafness vectorized-ish.
            still = []
            for u in np.unique(nid):
                node = self.nodes[u]
                members = active[nid == u]
                if node.is_leaf:
                    out[members] = node.value
                else:
                    goes_left = binned[members, node.feature] <= node.threshold_bin
                    node_ids[members[goes_left]] = node.left
                    node_ids[members[~goes_left]] = node.right
                    still.append(members)
            active = np.concatenate(still) if still else np.empty(0, dtype=int)
        return out

    def apply_slow(self, binned: np.ndarray) -> np.ndarray:
        """Reference counterpart of :meth:`apply` (see predict_binned_slow)."""
        n = len(binned)
        node_ids = np.zeros(n, dtype=int)
        active = np.arange(n)
        while len(active):
            nid = node_ids[active]
            still = []
            for u in np.unique(nid):
                node = self.nodes[u]
                members = active[nid == u]
                if node.is_leaf:
                    continue
                goes_left = binned[members, node.feature] <= node.threshold_bin
                node_ids[members[goes_left]] = node.left
                node_ids[members[~goes_left]] = node.right
                still.append(members)
            active = np.concatenate(still) if still else np.empty(0, dtype=int)
        return node_ids

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.nodes if n.is_leaf)

    @property
    def depth(self) -> int:
        def walk(i: int) -> int:
            node = self.nodes[i]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(0) if self.nodes else 0


class DecisionTreeRegressor:
    """Standalone CART-style regressor over the histogram core."""

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 max_bins: int = MAX_BINS):
        self.params = TreeParams(max_depth=max_depth,
                                 min_samples_leaf=min_samples_leaf,
                                 reg_lambda=0.0)
        self.max_bins = max_bins
        self._binner: FeatureBinner | None = None
        self._tree: HistogramTree | None = None

    def fit(self, X, y, rng: np.random.Generator | None = None):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self._tree = HistogramTree(self.params)
        self._tree.fit(binned, y, np.ones_like(np.atleast_2d(y.T).T),
                       rng=rng, n_bins=self._binner.n_bins_)
        return self

    def predict(self, X) -> np.ndarray:
        if self._tree is None:
            raise RuntimeError("model is not fitted")
        binned = self._binner.transform(np.asarray(X, dtype=float))
        pred = self._tree.predict_binned(binned)
        return pred[:, 0] if pred.shape[1] == 1 else pred
