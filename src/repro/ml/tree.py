"""Histogram-based decision trees (the shared core of GBDT and forests).

Features are quantized once into at most 256 quantile bins; split search
then reduces to per-bin gradient/hessian histograms (the LightGBM-style
construction).  One builder covers every tree use in the repo:

* plain regression trees fit targets with ``grad=y, hess=1`` (leaf = mean);
* gradient boosting fits Newton steps with arbitrary grad/hess;
* classification forests fit one-hot targets as multi-output regression.

Trees support multi-output targets: a leaf stores a k-vector and the split
gain sums over outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MAX_BINS = 256


class FeatureBinner:
    """Quantile binning of a float feature matrix into uint8 codes."""

    def __init__(self, max_bins: int = MAX_BINS):
        if not 2 <= max_bins <= MAX_BINS:
            raise ValueError(f"max_bins must be in [2, {MAX_BINS}]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.edges_ = []
        qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            col = col[np.isfinite(col)]
            if len(col) == 0 or col.min() == col.max():
                # Missing or constant feature: one bin, never splittable.
                self.edges_.append(np.empty(0))
                continue
            edges = np.unique(np.quantile(col, qs))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.zeros(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            col = X[:, j]
            codes = np.searchsorted(edges, col, side="right")
            codes[~np.isfinite(col)] = 0  # missing values go to bin 0
            out[:, j] = codes.astype(np.uint8)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        return len(self.edges_[feature]) + 1


@dataclass
class TreeParams:
    """Growth limits shared by all tree consumers."""

    max_depth: int = 6
    min_samples_leaf: int = 5
    min_gain: float = 1e-12
    reg_lambda: float = 1.0
    #: Number of features considered per split; None = all ("sqrt" for RF).
    max_features: int | str | None = None


@dataclass
class _Node:
    feature: int = -1
    threshold_bin: int = 0
    left: int = -1
    right: int = -1
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    n_samples: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class HistogramTree:
    """One grown tree over pre-binned features.

    Prediction uses a vectorized level-order descent over flattened node
    arrays (see :meth:`predict_binned`); the original per-row/per-node
    loop survives as :meth:`predict_binned_slow` because it is the
    reference implementation the equivalence property tests (and the
    serving benchmark baseline) compare against.
    """

    def __init__(self, params: TreeParams):
        self.params = params
        self.nodes: list[_Node] = []
        self.n_outputs = 1
        #: Total split gain attributed to each feature (importance raw score).
        self.feature_gain_: np.ndarray | None = None
        #: Flattened node arrays for vectorized descent (built lazily).
        self._flat: tuple[np.ndarray, ...] | None = None

    # -- growing ------------------------------------------------------------ #

    def fit(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "HistogramTree":
        """Grow on uint8-binned X; grad/hess are (n,) or (n, k)."""
        grad = np.atleast_2d(np.asarray(grad, dtype=float).T).T
        hess = np.atleast_2d(np.asarray(hess, dtype=float).T).T
        if grad.shape != hess.shape or len(grad) != len(binned):
            raise ValueError("grad/hess/binned shape mismatch")
        self.n_outputs = grad.shape[1]
        n_features = binned.shape[1]
        self.feature_gain_ = np.zeros(n_features)
        self.nodes = []
        self._flat = None
        rng = rng or np.random.default_rng()
        idx_all = np.arange(len(binned))
        self._grow(binned, grad, hess, idx_all, depth=0, rng=rng)
        return self

    def _n_split_features(self, n_features: int) -> int:
        mf = self.params.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(mf), n_features))

    def _leaf_value(self, G: np.ndarray, H: np.ndarray) -> np.ndarray:
        return G / (H + max(self.params.reg_lambda, 1e-12))

    def _grow(self, binned, grad, hess, idx, depth, rng) -> int:
        node_id = len(self.nodes)
        G = grad[idx].sum(axis=0)
        H = hess[idx].sum(axis=0)
        node = _Node(value=self._leaf_value(G, H), n_samples=len(idx))
        self.nodes.append(node)

        p = self.params
        if depth >= p.max_depth or len(idx) < 2 * p.min_samples_leaf:
            return node_id

        n_features = binned.shape[1]
        k_feat = self._n_split_features(n_features)
        features = (np.arange(n_features) if k_feat == n_features
                    else rng.choice(n_features, size=k_feat, replace=False))

        # Floor the regularizer so empty bins (H == 0) cannot divide by zero.
        lam = max(p.reg_lambda, 1e-12)
        base_score = float(np.sum(G * G / (H + lam)))
        best_gain, best_feature, best_bin = 0.0, -1, -1

        codes_node = binned[idx]
        for f in features:
            codes = codes_node[:, f]
            n_bins = int(codes.max()) + 1
            if n_bins < 2:
                continue
            # Per-bin gradient/hessian sums for every output.
            hist_g = np.empty((n_bins, self.n_outputs))
            hist_h = np.empty((n_bins, self.n_outputs))
            hist_n = np.bincount(codes, minlength=n_bins)
            for k in range(self.n_outputs):
                hist_g[:, k] = np.bincount(codes, weights=grad[idx, k],
                                           minlength=n_bins)
                hist_h[:, k] = np.bincount(codes, weights=hess[idx, k],
                                           minlength=n_bins)
            GL = np.cumsum(hist_g, axis=0)[:-1]
            HL = np.cumsum(hist_h, axis=0)[:-1]
            NL = np.cumsum(hist_n)[:-1]
            GR = G - GL
            HR = H - HL
            NR = len(idx) - NL
            valid = (NL >= p.min_samples_leaf) & (NR >= p.min_samples_leaf)
            if not valid.any():
                continue
            score = (np.sum(GL * GL / (HL + lam), axis=1)
                     + np.sum(GR * GR / (HR + lam), axis=1))
            score[~valid] = -np.inf
            b = int(np.argmax(score))
            gain = float(score[b]) - base_score
            if gain > best_gain:
                best_gain, best_feature, best_bin = gain, int(f), b

        if best_feature < 0 or best_gain <= p.min_gain:
            return node_id

        mask = codes_node[:, best_feature] <= best_bin
        left_idx, right_idx = idx[mask], idx[~mask]
        node.feature = best_feature
        node.threshold_bin = best_bin
        node.gain = best_gain
        self.feature_gain_[best_feature] += best_gain
        node.left = self._grow(binned, grad, hess, left_idx, depth + 1, rng)
        node.right = self._grow(binned, grad, hess, right_idx, depth + 1, rng)
        return node_id

    # -- prediction ---------------------------------------------------------- #

    def _ensure_flat(self) -> tuple[np.ndarray, ...]:
        """Flattened (feature, threshold, left, right, values) node arrays.

        Built once per grown/deserialized tree; every structure change
        goes through ``fit`` (which resets the cache), so staleness is
        impossible in normal use.
        """
        if self._flat is None or len(self._flat[0]) != len(self.nodes):
            nodes = self.nodes
            self._flat = (
                np.asarray([n.feature for n in nodes], dtype=np.int64),
                np.asarray([n.threshold_bin for n in nodes], dtype=np.int64),
                np.asarray([n.left for n in nodes], dtype=np.int64),
                np.asarray([n.right for n in nodes], dtype=np.int64),
                np.stack([np.asarray(n.value, dtype=float) for n in nodes]),
            )
        return self._flat

    def _descend(self, binned: np.ndarray) -> np.ndarray:
        """Vectorized level-order descent: the leaf node-id per row."""
        feature, threshold, left, right, _ = self._ensure_flat()
        n = len(binned)
        node_ids = np.zeros(n, dtype=np.int64)
        # Rows still sitting at an internal node, advanced one level per
        # iteration -- at most ``depth`` passes of O(n) numpy work.
        active = np.flatnonzero(np.take(feature, node_ids) >= 0)
        while active.size:
            nid = node_ids[active]
            f = np.take(feature, nid)
            goes_left = binned[active, f] <= np.take(threshold, nid)
            nxt = np.where(goes_left, np.take(left, nid), np.take(right, nid))
            node_ids[active] = nxt
            active = active[np.take(feature, nxt) >= 0]
        return node_ids

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Leaf values for pre-binned samples; shape (n, k).

        Vectorized over the whole batch: rows descend level-by-level
        through flattened node arrays (``np.take`` gathers), so cost is
        O(depth) numpy passes instead of a Python loop per node group.
        """
        values = self._ensure_flat()[4]
        return np.take(values, self._descend(binned), axis=0)

    def apply(self, binned: np.ndarray) -> np.ndarray:
        """Leaf node-id each pre-binned sample lands in."""
        return self._descend(binned)

    # -- reference (per-row) prediction -------------------------------------- #

    def predict_binned_slow(self, binned: np.ndarray) -> np.ndarray:
        """Reference node-group-loop traversal (pre-vectorization).

        Kept as the ground truth for the equivalence property tests and
        the per-row baseline in ``benchmarks/bench_serve_latency.py``;
        must stay bit-for-bit identical to :meth:`predict_binned`.
        """
        n = len(binned)
        out = np.zeros((n, self.n_outputs))
        node_ids = np.zeros(n, dtype=int)
        active = np.arange(n)
        while len(active):
            nid = node_ids[active]
            # Group by current node to test leafness vectorized-ish.
            still = []
            for u in np.unique(nid):
                node = self.nodes[u]
                members = active[nid == u]
                if node.is_leaf:
                    out[members] = node.value
                else:
                    goes_left = binned[members, node.feature] <= node.threshold_bin
                    node_ids[members[goes_left]] = node.left
                    node_ids[members[~goes_left]] = node.right
                    still.append(members)
            active = np.concatenate(still) if still else np.empty(0, dtype=int)
        return out

    def apply_slow(self, binned: np.ndarray) -> np.ndarray:
        """Reference counterpart of :meth:`apply` (see predict_binned_slow)."""
        n = len(binned)
        node_ids = np.zeros(n, dtype=int)
        active = np.arange(n)
        while len(active):
            nid = node_ids[active]
            still = []
            for u in np.unique(nid):
                node = self.nodes[u]
                members = active[nid == u]
                if node.is_leaf:
                    continue
                goes_left = binned[members, node.feature] <= node.threshold_bin
                node_ids[members[goes_left]] = node.left
                node_ids[members[~goes_left]] = node.right
                still.append(members)
            active = np.concatenate(still) if still else np.empty(0, dtype=int)
        return node_ids

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.nodes if n.is_leaf)

    @property
    def depth(self) -> int:
        def walk(i: int) -> int:
            node = self.nodes[i]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(0) if self.nodes else 0


class DecisionTreeRegressor:
    """Standalone CART-style regressor over the histogram core."""

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 max_bins: int = MAX_BINS):
        self.params = TreeParams(max_depth=max_depth,
                                 min_samples_leaf=min_samples_leaf,
                                 reg_lambda=0.0)
        self.max_bins = max_bins
        self._binner: FeatureBinner | None = None
        self._tree: HistogramTree | None = None

    def fit(self, X, y, rng: np.random.Generator | None = None):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self._tree = HistogramTree(self.params)
        self._tree.fit(binned, y, np.ones_like(np.atleast_2d(y.T).T), rng=rng)
        return self

    def predict(self, X) -> np.ndarray:
        if self._tree is None:
            raise RuntimeError("model is not fitted")
        binned = self._binner.transform(np.asarray(X, dtype=float))
        pred = self._tree.predict_binned(binned)
        return pred[:, 0] if pred.shape[1] == 1 else pred
