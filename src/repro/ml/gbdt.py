"""Gradient boosted decision trees -- the paper's "GDBT" models.

The paper trains a gradient boosting regressor and classifier (8000
estimators, depth 8, learning rate 0.01 in scikit-learn) and values GDBT
for being light-weight, composable, usable for classification *and*
regression, and interpretable via global feature importance.  This module
provides all four properties from scratch on the histogram-tree core:

* :class:`GBDTRegressor` -- squared-error boosting.
* :class:`GBDTClassifier` -- multi-class softmax boosting with Newton leaf
  values.
* both expose ``feature_importances_`` (normalized total split gain, the
  construction behind Fig. 22).

Defaults are scaled to laptop-size data (hundreds of trees rather than
8000); DESIGN.md documents this substitution.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.ml.preprocessing import LabelEncoder, one_hot
from repro.ml.tree import FeatureBinner, HistogramTree, TreeParams


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _pinball_loss(residual: np.ndarray, alpha: float) -> float:
    return float(np.mean(
        np.where(residual >= 0.0, alpha * residual, (alpha - 1.0) * residual)
    ))


class _GBDTBase:
    def __init__(
        self,
        n_estimators: int = 300,
        learning_rate: float = 0.05,
        max_depth: int = 6,
        min_samples_leaf: int = 10,
        subsample: float = 1.0,
        reg_lambda: float = 1.0,
        max_bins: int = 256,
        random_state: int | None = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins
        self.random_state = random_state
        self._binner: FeatureBinner | None = None
        self._trees: list[HistogramTree] = []
        self.n_features_: int | None = None
        #: Filled by ``fit``: wall clock, rounds completed, final train
        #: loss.  Serialized with the model (see repro.ml.serialize).
        self.fit_telemetry_: dict | None = None

    def _tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=self.reg_lambda,
        )

    def _check_fitted(self) -> None:
        if self._binner is None:
            raise RuntimeError("model is not fitted")

    @property
    def feature_importances_(self) -> np.ndarray:
        """Split-gain importance normalized to sum to 1 (Fig. 22)."""
        self._check_fitted()
        total = np.zeros(self.n_features_)
        for tree in self._trees:
            total += tree.feature_gain_
        s = total.sum()
        return total / s if s > 0 else total

    def staged_errors(self, X, y, metric) -> list[float]:
        """Metric after each boosting stage (for learning-curve ablations)."""
        raise NotImplementedError


class GBDTRegressor(_GBDTBase):
    """Least-squares gradient boosting."""

    def fit(self, X, y) -> "GBDTRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self.base_score_ = float(y.mean())
        self._trees = []
        current = np.full(len(y), self.base_score_)
        ones = np.ones((len(y), 1))
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()
        for _ in range(self.n_estimators):
            round_t0 = time.perf_counter() if obs_on else 0.0
            residual = (y - current)[:, None]
            if self.subsample < 1.0:
                rows = rng.random(len(y)) < self.subsample
                sub_binned, sub_g, sub_h = (
                    binned[rows], residual[rows], ones[rows]
                )
            else:
                sub_binned, sub_g, sub_h = binned, residual, ones
            tree = HistogramTree(params).fit(sub_binned, sub_g, sub_h, rng=rng,
                                             n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            current += self.learning_rate * tree.predict_binned(binned)[:, 0]
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss",
                              float(np.mean((y - current) ** 2)))
        self.fit_telemetry_ = {
            "model": "gbdt_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": float(np.mean((y - current) ** 2)),
        }
        return self

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "GBDTRegressor":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream.

        ``chunks`` is a zero-arg callable returning a fresh iterator
        over identical (uint8-binned X, y) chunk pairs each call (the
        colstore pipeline's ``bin_store`` produces one); ``binner`` is
        the fitted :class:`FeatureBinner` behind the codes.  Driver
        state is one float64 prediction per row (~8 bytes); gradients
        are recomputed per chunk as ``y_chunk - pred_chunk``, so no
        gathered matrix ever exists.  A single-chunk stream reproduces
        :meth:`fit` bit for bit; multi-chunk matches it to summation
        order (docs/colstore.md).  ``subsample < 1`` needs row gathers
        and is not supported out of core.
        """
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        if binner.edges_ is None:
            raise RuntimeError("binner is not fitted")
        rng = np.random.default_rng(self.random_state)
        lens, sums, d = [], [], None
        for binned, y in chunks():
            y = np.asarray(y, dtype=float).ravel()
            lens.append(len(y))
            sums.append(y.sum())
            d = np.asarray(binned).shape[1]
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        self.n_features_ = d
        self._binner = binner
        self.base_score_ = float(np.sum(sums) / n)
        current = [np.full(m, self.base_score_) for m in lens]
        self._trees = []
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def grad_chunks():
            for i, (binned, y) in enumerate(chunks()):
                y = np.asarray(y, dtype=float).ravel()
                yield binned, (y - current[i])[:, None], None

        sq_err = 0.0
        for _ in range(self.n_estimators):
            round_t0 = time.perf_counter() if obs_on else 0.0
            tree = HistogramTree(params).fit_binned_chunks(
                grad_chunks, rng=rng, n_bins=binner.n_bins_)
            self._trees.append(tree)
            sq_err = 0.0
            for i, (binned, y) in enumerate(chunks()):
                y = np.asarray(y, dtype=float).ravel()
                current[i] += (self.learning_rate
                               * tree.predict_binned(binned)[:, 0])
                sq_err += float(np.sum((y - current[i]) ** 2))
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", sq_err / n)
        self.fit_telemetry_ = {
            "model": "gbdt_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": sq_err / n,
            "out_of_core": True,
            "n_train": n,
        }
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        out = np.full(len(binned), self.base_score_)
        for tree in self._trees:
            out += self.learning_rate * tree.predict_binned(binned)[:, 0]
        return out

    def staged_errors(self, X, y, metric) -> list[float]:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        out = []
        current = np.full(len(binned), self.base_score_)
        for tree in self._trees:
            current += self.learning_rate * tree.predict_binned(binned)[:, 0]
            out.append(metric(y, current))
        return out


class GBDTQuantileRegressor(_GBDTBase):
    """Gradient boosting for conditional quantiles (pinball loss).

    Each round fits a tree to the pinball pseudo-residuals
    ``alpha - 1{y < F}`` and then refits every leaf to the alpha-quantile
    of its residuals (the classical GBM quantile recipe).  Quantile
    predictions are what risk-aware consumers need -- e.g. an ABR policy
    that wants "throughput I can count on 90% of the time" rather than
    the conditional mean.
    """

    def __init__(self, quantile: float = 0.5, **kwargs):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        super().__init__(**kwargs)
        self.quantile = quantile

    def fit(self, X, y) -> "GBDTQuantileRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self.base_score_ = float(np.quantile(y, self.quantile))
        current = np.full(len(y), self.base_score_)
        ones = np.ones((len(y), 1))
        params = self._tree_params()
        self._trees = []
        #: Per tree: refit alpha-quantile leaf values indexed by node id
        #: (zero at internal nodes), so prediction is one array gather.
        self._leaf_values: list[np.ndarray] = []
        alpha = self.quantile
        obs_on = obs.enabled()
        t_start = time.perf_counter()
        for _ in range(self.n_estimators):
            round_t0 = time.perf_counter() if obs_on else 0.0
            residual = y - current
            pseudo = np.where(residual >= 0.0, alpha, alpha - 1.0)[:, None]
            if self.subsample < 1.0:
                # Stochastic boosting: grow and leaf-refit on the in-bag
                # rows only; the update still applies to every row.
                rows = rng.random(len(y)) < self.subsample
                tree = HistogramTree(params).fit(
                    binned[rows], pseudo[rows], ones[rows], rng=rng,
                    n_bins=self._binner.n_bins_,
                )
                fit_leaves = tree.apply(binned[rows])
                fit_residual = residual[rows]
                leaves = tree.apply(binned)
            else:
                tree = HistogramTree(params).fit(binned, pseudo, ones,
                                                 rng=rng,
                                                 n_bins=self._binner.n_bins_)
                leaves = tree.apply(binned)
                fit_leaves, fit_residual = leaves, residual
            # Every tree leaf holds in-bag rows by construction, so the
            # refit quantile is defined wherever out-of-bag rows land.
            leaf_vals = np.zeros(len(tree.nodes))
            for leaf in np.unique(fit_leaves):
                leaf_vals[leaf] = np.quantile(
                    fit_residual[fit_leaves == leaf], alpha
                )
            self._trees.append(tree)
            self._leaf_values.append(leaf_vals)
            current += self.learning_rate * leaf_vals[leaves]
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss",
                              _pinball_loss(y - current, alpha))
        self.fit_telemetry_ = {
            "model": "gbdt_quantile_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _pinball_loss(y - current, alpha),
        }
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        out = np.full(len(binned), self.base_score_)
        for tree, leaf_vals in zip(self._trees, self._leaf_values):
            out += self.learning_rate * leaf_vals[tree.apply(binned)]
        return out


class GBDTClassifier(_GBDTBase):
    """Multi-class softmax boosting with Newton leaf values.

    Each boosting round grows one multi-output tree on the per-class
    gradients ``p - y`` with hessians ``p (1 - p)``; predictions are the
    argmax of the accumulated logits.
    """

    def fit(self, X, y) -> "GBDTClassifier":
        X = np.asarray(X, dtype=float)
        rng = np.random.default_rng(self.random_state)
        self.encoder_ = LabelEncoder()
        codes = self.encoder_.fit_transform(y)
        k = len(self.encoder_.classes_)
        if k < 2:
            raise ValueError("need at least two classes")
        Y = one_hot(codes, k)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        # Log-prior initial logits.
        priors = np.clip(Y.mean(axis=0), 1e-9, 1.0)
        self.base_logits_ = np.log(priors)
        logits = np.tile(self.base_logits_, (len(X), 1))
        self._trees = []
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def _logloss() -> float:
            p_now = softmax(logits)
            picked = np.clip(p_now[np.arange(len(codes)), codes], 1e-12, 1.0)
            return float(-np.mean(np.log(picked)))

        for _ in range(self.n_estimators):
            round_t0 = time.perf_counter() if obs_on else 0.0
            p = softmax(logits)
            grad = Y - p
            hess = np.clip(p * (1.0 - p), 1e-6, None)
            if self.subsample < 1.0:
                rows = rng.random(len(X)) < self.subsample
                tree = HistogramTree(params).fit(
                    binned[rows], grad[rows], hess[rows], rng=rng,
                    n_bins=self._binner.n_bins_,
                )
            else:
                tree = HistogramTree(params).fit(binned, grad, hess, rng=rng,
                                                 n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            logits += self.learning_rate * tree.predict_binned(binned)
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", _logloss())
        self.fit_telemetry_ = {
            "model": "gbdt_classifier",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _logloss(),
        }
        return self

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "GBDTClassifier":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream.

        Same contract as :meth:`GBDTRegressor.fit_binned_stream`; the
        per-row driver state is the k-class logit matrix (8k bytes per
        row), from which per-chunk softmax gradients and hessians are
        recomputed every round.  Classes are the sorted union of labels
        seen across the stream -- identical to the in-memory encoder.
        """
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        if binner.edges_ is None:
            raise RuntimeError("binner is not fitted")
        rng = np.random.default_rng(self.random_state)
        lens, d = [], None
        classes = None
        for binned, y in chunks():
            y = np.asarray(y)
            lens.append(len(y))
            d = np.asarray(binned).shape[1]
            u = np.unique(y)
            classes = u if classes is None else np.union1d(classes, u)
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        self.encoder_ = LabelEncoder()
        self.encoder_.classes_ = classes
        k = len(classes)
        if k < 2:
            raise ValueError("need at least two classes")
        self.n_features_ = d
        self._binner = binner
        counts = np.zeros(k)
        for _, y in chunks():
            codes = self.encoder_.transform(np.asarray(y))
            counts += np.bincount(codes, minlength=k)
        priors = np.clip(counts / n, 1e-9, 1.0)
        self.base_logits_ = np.log(priors)
        logits = [np.tile(self.base_logits_, (m, 1)) for m in lens]
        self._trees = []
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def grad_chunks():
            for i, (binned, y) in enumerate(chunks()):
                codes = self.encoder_.transform(np.asarray(y))
                Y = one_hot(codes, k)
                p = softmax(logits[i])
                yield binned, Y - p, np.clip(p * (1.0 - p), 1e-6, None)

        def _logloss() -> float:
            acc = 0.0
            for i, (_, y) in enumerate(chunks()):
                codes = self.encoder_.transform(np.asarray(y))
                p_now = softmax(logits[i])
                picked = np.clip(p_now[np.arange(len(codes)), codes],
                                 1e-12, 1.0)
                acc += float(np.sum(-np.log(picked)))
            return acc / n

        for _ in range(self.n_estimators):
            round_t0 = time.perf_counter() if obs_on else 0.0
            tree = HistogramTree(params).fit_binned_chunks(
                grad_chunks, rng=rng, n_bins=binner.n_bins_)
            self._trees.append(tree)
            for i, (binned, _) in enumerate(chunks()):
                logits[i] += self.learning_rate * tree.predict_binned(binned)
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", _logloss())
        self.fit_telemetry_ = {
            "model": "gbdt_classifier",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _logloss(),
            "out_of_core": True,
            "n_train": n,
        }
        return self

    def _logits(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        logits = np.tile(self.base_logits_, (len(binned), 1))
        for tree in self._trees:
            logits += self.learning_rate * tree.predict_binned(binned)
        return logits

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self._logits(X))

    def predict(self, X) -> np.ndarray:
        codes = np.argmax(self._logits(X), axis=1)
        return self.encoder_.inverse_transform(codes)

    def staged_errors(self, X, y, metric) -> list[float]:
        """Metric on decoded labels after each boosting stage."""
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        y = np.asarray(y)
        logits = np.tile(self.base_logits_, (len(binned), 1))
        out = []
        for tree in self._trees:
            logits += self.learning_rate * tree.predict_binned(binned)
            pred = self.encoder_.inverse_transform(np.argmax(logits, axis=1))
            out.append(metric(y, pred))
        return out

    @property
    def classes_(self) -> np.ndarray:
        return self.encoder_.classes_
