"""Gradient boosted decision trees -- the paper's "GDBT" models.

The paper trains a gradient boosting regressor and classifier (8000
estimators, depth 8, learning rate 0.01 in scikit-learn) and values GDBT
for being light-weight, composable, usable for classification *and*
regression, and interpretable via global feature importance.  This module
provides all four properties from scratch on the histogram-tree core:

* :class:`GBDTRegressor` -- squared-error boosting.
* :class:`GBDTClassifier` -- multi-class softmax boosting with Newton leaf
  values.
* both expose ``feature_importances_`` (normalized total split gain, the
  construction behind Fig. 22).

Defaults are scaled to laptop-size data (hundreds of trees rather than
8000); DESIGN.md documents this substitution.

Warm starts (docs/continuous_learning.md): every family supports
``fit_more(n_rounds, X, y)`` -- append boosting rounds on fresh data while
reusing the existing trees, binner, and base score.  The per-round loop is
shared between ``fit`` and ``fit_more`` and the boosting generator is kept
on the model, so ``fit(k)`` followed by ``fit_more(n - k)`` on identical
data is bit-identical to a single ``fit(n)``
(tests/ml/test_warm_start.py).  Constructing with ``warm_start=True``
makes repeated ``fit`` calls append rounds instead of refitting from
scratch.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.ml.preprocessing import LabelEncoder, one_hot
from repro.ml.tree import FeatureBinner, HistogramTree, TreeParams


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _pinball_loss(residual: np.ndarray, alpha: float) -> float:
    return float(np.mean(
        np.where(residual >= 0.0, alpha * residual, (alpha - 1.0) * residual)
    ))


class _GBDTBase:
    def __init__(
        self,
        n_estimators: int = 300,
        learning_rate: float = 0.05,
        max_depth: int = 6,
        min_samples_leaf: int = 10,
        subsample: float = 1.0,
        reg_lambda: float = 1.0,
        max_bins: int = 256,
        random_state: int | None = 0,
        warm_start: bool = False,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins
        self.random_state = random_state
        self.warm_start = warm_start
        self._binner: FeatureBinner | None = None
        self._trees: list[HistogramTree] = []
        self.n_features_: int | None = None
        #: Boosting generator; survives across ``fit_more`` calls so a
        #: warm continuation draws the same subsample/feature streams a
        #: single longer fit would have.
        self._rng: np.random.Generator | None = None
        #: Filled by ``fit``: wall clock, rounds completed, final train
        #: loss.  Serialized with the model (see repro.ml.serialize).
        self.fit_telemetry_: dict | None = None

    def _tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=self.reg_lambda,
        )

    def _check_fitted(self) -> None:
        if self._binner is None:
            raise RuntimeError("model is not fitted")

    def _warm_rng(self) -> np.random.Generator:
        """Deterministic generator for warm-starting a deserialized model.

        An in-process ``fit_more`` continues the generator ``fit`` left
        behind (bit-identical to one long fit); a serialize round trip
        drops that stream, so reseed deterministically from the model's
        ``random_state`` and the number of trees already grown.
        """
        seed = 0 if self.random_state is None else int(self.random_state)
        return np.random.default_rng((seed, len(self._trees)))

    def _check_fit_more(self, n_rounds: int, n_features: int) -> None:
        self._check_fitted()
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if n_features != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {n_features}"
            )

    @property
    def feature_importances_(self) -> np.ndarray:
        """Split-gain importance normalized to sum to 1 (Fig. 22)."""
        self._check_fitted()
        total = np.zeros(self.n_features_)
        for tree in self._trees:
            total += tree.feature_gain_
        s = total.sum()
        return total / s if s > 0 else total

    def staged_errors(self, X, y, metric) -> list[float]:
        """Metric after each boosting stage (for learning-curve ablations)."""
        raise NotImplementedError


class GBDTRegressor(_GBDTBase):
    """Least-squares gradient boosting."""

    def fit(self, X, y) -> "GBDTRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        if self.warm_start and self._binner is not None:
            return self.fit_more(self.n_estimators, X, y)
        self._rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self.base_score_ = float(y.mean())
        self._trees = []
        current = np.full(len(y), self.base_score_)
        self._boost(self.n_estimators, binned, y, current)
        return self

    def fit_more(self, n_rounds: int, X, y) -> "GBDTRegressor":
        """Warm start: append ``n_rounds`` trees fitted on fresh data.

        The binner and base score stay frozen from the original fit;
        per-row boosting state is rebuilt by replaying the existing
        trees in the exact float-op order ``fit`` used, so
        ``fit(k); fit_more(n - k)`` on identical data reproduces a
        single ``fit(n)`` bit for bit.
        """
        n_rounds = int(n_rounds)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        self._check_fit_more(n_rounds, X.shape[1])
        if self._rng is None:
            self._rng = self._warm_rng()
        binned = self._binner.transform(X)
        current = np.full(len(y), self.base_score_)
        for tree in self._trees:
            current += self.learning_rate * tree.predict_binned(binned)[:, 0]
        self._boost(n_rounds, binned, y, current)
        return self

    def _boost(self, n_rounds: int, binned, y, current) -> None:
        rng = self._rng
        ones = np.ones((len(y), 1))
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()
        for _ in range(n_rounds):
            round_t0 = time.perf_counter() if obs_on else 0.0
            residual = (y - current)[:, None]
            if self.subsample < 1.0:
                rows = rng.random(len(y)) < self.subsample
                sub_binned, sub_g, sub_h = (
                    binned[rows], residual[rows], ones[rows]
                )
            else:
                sub_binned, sub_g, sub_h = binned, residual, ones
            tree = HistogramTree(params).fit(sub_binned, sub_g, sub_h, rng=rng,
                                             n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            current += self.learning_rate * tree.predict_binned(binned)[:, 0]
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss",
                              float(np.mean((y - current) ** 2)))
        self.fit_telemetry_ = {
            "model": "gbdt_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": float(np.mean((y - current) ** 2)),
        }

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "GBDTRegressor":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream.

        ``chunks`` is a zero-arg callable returning a fresh iterator
        over identical (uint8-binned X, y) chunk pairs each call (the
        colstore pipeline's ``bin_store`` produces one); ``binner`` is
        the fitted :class:`FeatureBinner` behind the codes.  Driver
        state is one float64 prediction per row (~8 bytes); gradients
        are recomputed per chunk as ``y_chunk - pred_chunk``, so no
        gathered matrix ever exists.  A single-chunk stream reproduces
        :meth:`fit` bit for bit; multi-chunk matches it to summation
        order (docs/colstore.md).  ``subsample < 1`` needs row gathers
        and is not supported out of core.
        """
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        if binner.edges_ is None:
            raise RuntimeError("binner is not fitted")
        self._rng = np.random.default_rng(self.random_state)
        lens, sums, d = [], [], None
        for binned, y in chunks():
            y = np.asarray(y, dtype=float).ravel()
            lens.append(len(y))
            sums.append(y.sum())
            d = np.asarray(binned).shape[1]
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        self.n_features_ = d
        self._binner = binner
        self.base_score_ = float(np.sum(sums) / n)
        current = [np.full(m, self.base_score_) for m in lens]
        self._trees = []
        self._boost_stream(self.n_estimators, chunks, current, n)
        return self

    def fit_more_binned_stream(self, n_rounds: int, chunks
                               ) -> "GBDTRegressor":
        """Warm-start the out-of-core path: append rounds from a stream.

        ``chunks`` must be binned with the model's own (frozen) binner.
        Per-row state is rebuilt by replaying the existing trees, so a
        cold ``fit_binned_stream(n)`` equals ``fit_binned_stream(k)``
        plus ``fit_more_binned_stream(n - k)`` over the same stream bit
        for bit.  The refit data is only ever seen one chunk at a time.
        """
        n_rounds = int(n_rounds)
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        lens, d = [], None
        for binned, y in chunks():
            y = np.asarray(y, dtype=float).ravel()
            lens.append(len(y))
            d = np.asarray(binned).shape[1]
        self._check_fit_more(n_rounds, d)
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        current = [np.full(m, self.base_score_) for m in lens]
        for tree in self._trees:
            for i, (binned, _) in enumerate(chunks()):
                current[i] += (self.learning_rate
                               * tree.predict_binned(binned)[:, 0])
        if self._rng is None:
            self._rng = self._warm_rng()
        self._boost_stream(n_rounds, chunks, current, n)
        return self

    def _boost_stream(self, n_rounds: int, chunks, current, n: int) -> None:
        rng = self._rng
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def grad_chunks():
            for i, (binned, y) in enumerate(chunks()):
                y = np.asarray(y, dtype=float).ravel()
                yield binned, (y - current[i])[:, None], None

        sq_err = 0.0
        for _ in range(n_rounds):
            round_t0 = time.perf_counter() if obs_on else 0.0
            tree = HistogramTree(params).fit_binned_chunks(
                grad_chunks, rng=rng, n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            sq_err = 0.0
            for i, (binned, y) in enumerate(chunks()):
                y = np.asarray(y, dtype=float).ravel()
                current[i] += (self.learning_rate
                               * tree.predict_binned(binned)[:, 0])
                sq_err += float(np.sum((y - current[i]) ** 2))
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", sq_err / n)
        self.fit_telemetry_ = {
            "model": "gbdt_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": sq_err / n,
            "out_of_core": True,
            "n_train": n,
        }

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        out = np.full(len(binned), self.base_score_)
        for tree in self._trees:
            out += self.learning_rate * tree.predict_binned(binned)[:, 0]
        return out

    def staged_errors(self, X, y, metric) -> list[float]:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float)
        out = []
        current = np.full(len(binned), self.base_score_)
        for tree in self._trees:
            current += self.learning_rate * tree.predict_binned(binned)[:, 0]
            out.append(metric(y, current))
        return out


class GBDTQuantileRegressor(_GBDTBase):
    """Gradient boosting for conditional quantiles (pinball loss).

    Each round fits a tree to the pinball pseudo-residuals
    ``alpha - 1{y < F}`` and then refits every leaf to the alpha-quantile
    of its residuals (the classical GBM quantile recipe).  Quantile
    predictions are what risk-aware consumers need -- e.g. an ABR policy
    that wants "throughput I can count on 90% of the time" rather than
    the conditional mean.
    """

    def __init__(self, quantile: float = 0.5, **kwargs):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        super().__init__(**kwargs)
        self.quantile = quantile

    def fit(self, X, y) -> "GBDTQuantileRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        if self.warm_start and self._binner is not None:
            return self.fit_more(self.n_estimators, X, y)
        self._rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        self.base_score_ = float(np.quantile(y, self.quantile))
        current = np.full(len(y), self.base_score_)
        self._trees = []
        #: Per tree: refit alpha-quantile leaf values indexed by node id
        #: (zero at internal nodes), so prediction is one array gather.
        self._leaf_values: list[np.ndarray] = []
        self._boost(self.n_estimators, binned, y, current)
        return self

    def fit_more(self, n_rounds: int, X, y) -> "GBDTQuantileRegressor":
        """Warm start: append ``n_rounds`` quantile trees on fresh data.

        Same contract as :meth:`GBDTRegressor.fit_more` -- frozen binner
        and base quantile, state replayed tree by tree, bit-identical to
        one longer ``fit`` on identical data.
        """
        n_rounds = int(n_rounds)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        self._check_fit_more(n_rounds, X.shape[1])
        if self._rng is None:
            self._rng = self._warm_rng()
        binned = self._binner.transform(X)
        current = np.full(len(y), self.base_score_)
        for tree, leaf_vals in zip(self._trees, self._leaf_values):
            current += self.learning_rate * leaf_vals[tree.apply(binned)]
        self._boost(n_rounds, binned, y, current)
        return self

    def _boost(self, n_rounds: int, binned, y, current) -> None:
        rng = self._rng
        ones = np.ones((len(y), 1))
        params = self._tree_params()
        alpha = self.quantile
        obs_on = obs.enabled()
        t_start = time.perf_counter()
        for _ in range(n_rounds):
            round_t0 = time.perf_counter() if obs_on else 0.0
            residual = y - current
            pseudo = np.where(residual >= 0.0, alpha, alpha - 1.0)[:, None]
            if self.subsample < 1.0:
                # Stochastic boosting: grow and leaf-refit on the in-bag
                # rows only; the update still applies to every row.
                rows = rng.random(len(y)) < self.subsample
                tree = HistogramTree(params).fit(
                    binned[rows], pseudo[rows], ones[rows], rng=rng,
                    n_bins=self._binner.n_bins_,
                )
                fit_leaves = tree.apply(binned[rows])
                fit_residual = residual[rows]
                leaves = tree.apply(binned)
            else:
                tree = HistogramTree(params).fit(binned, pseudo, ones,
                                                 rng=rng,
                                                 n_bins=self._binner.n_bins_)
                leaves = tree.apply(binned)
                fit_leaves, fit_residual = leaves, residual
            # Every tree leaf holds in-bag rows by construction, so the
            # refit quantile is defined wherever out-of-bag rows land.
            leaf_vals = np.zeros(len(tree.nodes))
            for leaf in np.unique(fit_leaves):
                leaf_vals[leaf] = np.quantile(
                    fit_residual[fit_leaves == leaf], alpha
                )
            self._trees.append(tree)
            self._leaf_values.append(leaf_vals)
            current += self.learning_rate * leaf_vals[leaves]
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss",
                              _pinball_loss(y - current, alpha))
        self.fit_telemetry_ = {
            "model": "gbdt_quantile_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _pinball_loss(y - current, alpha),
        }

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        out = np.full(len(binned), self.base_score_)
        for tree, leaf_vals in zip(self._trees, self._leaf_values):
            out += self.learning_rate * leaf_vals[tree.apply(binned)]
        return out


class GBDTClassifier(_GBDTBase):
    """Multi-class softmax boosting with Newton leaf values.

    Each boosting round grows one multi-output tree on the per-class
    gradients ``p - y`` with hessians ``p (1 - p)``; predictions are the
    argmax of the accumulated logits.
    """

    def fit(self, X, y) -> "GBDTClassifier":
        X = np.asarray(X, dtype=float)
        if self.warm_start and self._binner is not None:
            return self.fit_more(self.n_estimators, X, y)
        self._rng = np.random.default_rng(self.random_state)
        self.encoder_ = LabelEncoder()
        codes = self.encoder_.fit_transform(y)
        k = len(self.encoder_.classes_)
        if k < 2:
            raise ValueError("need at least two classes")
        Y = one_hot(codes, k)
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        # Log-prior initial logits.
        priors = np.clip(Y.mean(axis=0), 1e-9, 1.0)
        self.base_logits_ = np.log(priors)
        logits = np.tile(self.base_logits_, (len(X), 1))
        self._trees = []
        self._boost(self.n_estimators, binned, codes, logits)
        return self

    def fit_more(self, n_rounds: int, X, y) -> "GBDTClassifier":
        """Warm start: append ``n_rounds`` trees on fresh labeled data.

        The class set is frozen at the original fit; labels outside it
        raise ``ValueError``.  Logits are replayed tree by tree so the
        continuation is bit-identical to one longer ``fit`` on
        identical data.
        """
        n_rounds = int(n_rounds)
        X = np.asarray(X, dtype=float)
        self._check_fit_more(n_rounds, X.shape[1])
        codes = self.encoder_.transform(np.asarray(y))
        if len(X) != len(codes):
            raise ValueError("X/y length mismatch")
        if self._rng is None:
            self._rng = self._warm_rng()
        binned = self._binner.transform(X)
        logits = np.tile(self.base_logits_, (len(binned), 1))
        for tree in self._trees:
            logits += self.learning_rate * tree.predict_binned(binned)
        self._boost(n_rounds, binned, codes, logits)
        return self

    def _boost(self, n_rounds: int, binned, codes, logits) -> None:
        rng = self._rng
        k = len(self.encoder_.classes_)
        Y = one_hot(codes, k)
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def _logloss() -> float:
            p_now = softmax(logits)
            picked = np.clip(p_now[np.arange(len(codes)), codes], 1e-12, 1.0)
            return float(-np.mean(np.log(picked)))

        for _ in range(n_rounds):
            round_t0 = time.perf_counter() if obs_on else 0.0
            p = softmax(logits)
            grad = Y - p
            hess = np.clip(p * (1.0 - p), 1e-6, None)
            if self.subsample < 1.0:
                rows = rng.random(len(binned)) < self.subsample
                tree = HistogramTree(params).fit(
                    binned[rows], grad[rows], hess[rows], rng=rng,
                    n_bins=self._binner.n_bins_,
                )
            else:
                tree = HistogramTree(params).fit(binned, grad, hess, rng=rng,
                                                 n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            logits += self.learning_rate * tree.predict_binned(binned)
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", _logloss())
        self.fit_telemetry_ = {
            "model": "gbdt_classifier",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _logloss(),
        }

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "GBDTClassifier":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream.

        Same contract as :meth:`GBDTRegressor.fit_binned_stream`; the
        per-row driver state is the k-class logit matrix (8k bytes per
        row), from which per-chunk softmax gradients and hessians are
        recomputed every round.  Classes are the sorted union of labels
        seen across the stream -- identical to the in-memory encoder.
        """
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        if binner.edges_ is None:
            raise RuntimeError("binner is not fitted")
        self._rng = np.random.default_rng(self.random_state)
        lens, d = [], None
        classes = None
        for binned, y in chunks():
            y = np.asarray(y)
            lens.append(len(y))
            d = np.asarray(binned).shape[1]
            u = np.unique(y)
            classes = u if classes is None else np.union1d(classes, u)
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        self.encoder_ = LabelEncoder()
        self.encoder_.classes_ = classes
        k = len(classes)
        if k < 2:
            raise ValueError("need at least two classes")
        self.n_features_ = d
        self._binner = binner
        counts = np.zeros(k)
        for _, y in chunks():
            codes = self.encoder_.transform(np.asarray(y))
            counts += np.bincount(codes, minlength=k)
        priors = np.clip(counts / n, 1e-9, 1.0)
        self.base_logits_ = np.log(priors)
        logits = [np.tile(self.base_logits_, (m, 1)) for m in lens]
        self._trees = []
        self._boost_stream(self.n_estimators, chunks, logits, n)
        return self

    def fit_more_binned_stream(self, n_rounds: int, chunks
                               ) -> "GBDTClassifier":
        """Warm-start the out-of-core path: append rounds from a stream.

        Frozen class set and binner; labels outside the known classes
        raise ``ValueError``.  Same bit-identity contract as
        :meth:`GBDTRegressor.fit_more_binned_stream`.
        """
        n_rounds = int(n_rounds)
        if self.subsample < 1.0:
            raise NotImplementedError(
                "subsample < 1.0 requires the in-memory fit")
        lens, d = [], None
        for binned, y in chunks():
            # Transform eagerly so unseen labels fail before any tree
            # is grown.
            self.encoder_.transform(np.asarray(y))
            lens.append(len(np.asarray(y)))
            d = np.asarray(binned).shape[1]
        self._check_fit_more(n_rounds, d)
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        logits = [np.tile(self.base_logits_, (m, 1)) for m in lens]
        for tree in self._trees:
            for i, (binned, _) in enumerate(chunks()):
                logits[i] += self.learning_rate * tree.predict_binned(binned)
        if self._rng is None:
            self._rng = self._warm_rng()
        self._boost_stream(n_rounds, chunks, logits, n)
        return self

    def _boost_stream(self, n_rounds: int, chunks, logits, n: int) -> None:
        rng = self._rng
        k = len(self.encoder_.classes_)
        params = self._tree_params()
        obs_on = obs.enabled()
        t_start = time.perf_counter()

        def grad_chunks():
            for i, (binned, y) in enumerate(chunks()):
                codes = self.encoder_.transform(np.asarray(y))
                Y = one_hot(codes, k)
                p = softmax(logits[i])
                yield binned, Y - p, np.clip(p * (1.0 - p), 1e-6, None)

        def _logloss() -> float:
            acc = 0.0
            for i, (_, y) in enumerate(chunks()):
                codes = self.encoder_.transform(np.asarray(y))
                p_now = softmax(logits[i])
                picked = np.clip(p_now[np.arange(len(codes)), codes],
                                 1e-12, 1.0)
                acc += float(np.sum(-np.log(picked)))
            return acc / n

        for _ in range(n_rounds):
            round_t0 = time.perf_counter() if obs_on else 0.0
            tree = HistogramTree(params).fit_binned_chunks(
                grad_chunks, rng=rng, n_bins=self._binner.n_bins_)
            self._trees.append(tree)
            for i, (binned, _) in enumerate(chunks()):
                logits[i] += self.learning_rate * tree.predict_binned(binned)
            if obs_on:
                obs.inc("gbdt.rounds_total")
                obs.observe("gbdt.round_s", time.perf_counter() - round_t0)
                obs.set_gauge("gbdt.train_loss", _logloss())
        self.fit_telemetry_ = {
            "model": "gbdt_classifier",
            "fit_wall_s": time.perf_counter() - t_start,
            "rounds_completed": len(self._trees),
            "final_train_loss": _logloss(),
            "out_of_core": True,
            "n_train": n,
        }

    def _logits(self, X) -> np.ndarray:
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        logits = np.tile(self.base_logits_, (len(binned), 1))
        for tree in self._trees:
            logits += self.learning_rate * tree.predict_binned(binned)
        return logits

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self._logits(X))

    def predict(self, X) -> np.ndarray:
        codes = np.argmax(self._logits(X), axis=1)
        return self.encoder_.inverse_transform(codes)

    def staged_errors(self, X, y, metric) -> list[float]:
        """Metric on decoded labels after each boosting stage."""
        self._check_fitted()
        binned = self._binner.transform(np.asarray(X, dtype=float))
        y = np.asarray(y)
        logits = np.tile(self.base_logits_, (len(binned), 1))
        out = []
        for tree in self._trees:
            logits += self.learning_rate * tree.predict_binned(binned)
            pred = self.encoder_.inverse_transform(np.argmax(logits, axis=1))
            out.append(metric(y, pred))
        return out

    @property
    def classes_(self) -> np.ndarray:
        return self.encoder_.classes_
