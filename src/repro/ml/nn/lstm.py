"""LSTM layer with full backpropagation-through-time, in numpy.

A single weight matrix ``W`` of shape (input_dim + hidden, 4 * hidden)
holds the input/forget/cell/output gate weights (in that column order);
forward caches per-step activations so ``backward`` can run exact BPTT.
Weights use orthogonal recurrent / Glorot input initialization with the
standard forget-gate bias of 1.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    a = rng.normal(size=shape)
    q, _ = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    return q if shape[0] >= shape[1] else q.T


class LSTMLayer:
    """Batch-first LSTM: input (B, T, D) -> hidden states (B, T, H)."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = np.sqrt(2.0 / (input_dim + hidden_dim))
        Wx = rng.normal(0.0, scale, size=(input_dim, 4 * hidden_dim))
        Wh = np.concatenate(
            [_orthogonal((hidden_dim, hidden_dim), rng) for _ in range(4)],
            axis=1,
        )
        self.W = np.concatenate([Wx, Wh], axis=0)
        self.b = np.zeros(4 * hidden_dim)
        self.b[hidden_dim:2 * hidden_dim] = 1.0  # forget-gate bias
        self._cache = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def forward(
        self,
        x: np.ndarray,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the sequence; returns (H_all, h_T, c_T)."""
        B, T, D = x.shape
        if D != self.input_dim:
            raise ValueError(f"expected input dim {self.input_dim}, got {D}")
        Hd = self.hidden_dim
        h = np.zeros((B, Hd)) if h0 is None else h0.copy()
        c = np.zeros((B, Hd)) if c0 is None else c0.copy()
        H_all = np.empty((B, T, Hd))
        cache = {"x": x, "h_prev": np.empty((B, T, Hd)),
                 "c_prev": np.empty((B, T, Hd)),
                 "i": np.empty((B, T, Hd)), "f": np.empty((B, T, Hd)),
                 "g": np.empty((B, T, Hd)), "o": np.empty((B, T, Hd)),
                 "c": np.empty((B, T, Hd)), "tanh_c": np.empty((B, T, Hd)),
                 "h0": h.copy(), "c0": c.copy()}
        for t in range(T):
            cache["h_prev"][:, t] = h
            cache["c_prev"][:, t] = c
            z = np.concatenate([x[:, t], h], axis=1) @ self.W + self.b
            i = sigmoid(z[:, :Hd])
            f = sigmoid(z[:, Hd:2 * Hd])
            g = np.tanh(z[:, 2 * Hd:3 * Hd])
            o = sigmoid(z[:, 3 * Hd:])
            c = f * c + i * g
            tc = np.tanh(c)
            h = o * tc
            H_all[:, t] = h
            for key, val in (("i", i), ("f", f), ("g", g), ("o", o),
                             ("c", c), ("tanh_c", tc)):
                cache[key][:, t] = val
        self._cache = cache
        return H_all, h, c

    def backward(
        self,
        dH_all: np.ndarray | None,
        dh_last: np.ndarray | None = None,
        dc_last: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[np.ndarray], np.ndarray, np.ndarray]:
        """BPTT given upstream grads.

        ``dH_all`` is the gradient w.r.t. every hidden state (may be None),
        ``dh_last``/``dc_last`` w.r.t. the final states only.  Returns
        ``(dx, [dW, db], dh0, dc0)``.
        """
        cache = self._cache
        if cache is None:
            raise RuntimeError("forward must run before backward")
        x = cache["x"]
        B, T, _ = x.shape
        Hd = self.hidden_dim
        dW = np.zeros_like(self.W)
        db = np.zeros_like(self.b)
        dx = np.zeros_like(x)
        dh = np.zeros((B, Hd)) if dh_last is None else dh_last.copy()
        dc = np.zeros((B, Hd)) if dc_last is None else dc_last.copy()
        for t in range(T - 1, -1, -1):
            if dH_all is not None:
                dh = dh + dH_all[:, t]
            i, f, g, o = (cache["i"][:, t], cache["f"][:, t],
                          cache["g"][:, t], cache["o"][:, t])
            tc = cache["tanh_c"][:, t]
            c_prev = cache["c_prev"][:, t]
            do = dh * tc
            dc = dc + dh * o * (1.0 - tc * tc)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_prev = dc * f
            dz = np.concatenate([
                di * i * (1 - i),
                df * f * (1 - f),
                dg * (1 - g * g),
                do * o * (1 - o),
            ], axis=1)
            inp = np.concatenate([x[:, t], cache["h_prev"][:, t]], axis=1)
            dW += inp.T @ dz
            db += dz.sum(axis=0)
            dinp = dz @ self.W.T
            dx[:, t] = dinp[:, :self.input_dim]
            dh = dinp[:, self.input_dim:]
            dc = dc_prev
        return dx, [dW, db], dh, dc


class DenseLayer:
    """Affine map applied to the trailing dimension."""

    def __init__(self, input_dim: int, output_dim: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / (input_dim + output_dim))
        self.W = rng.normal(0.0, scale, size=(input_dim, output_dim))
        self.b = np.zeros(output_dim)
        self._x: np.ndarray | None = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, dout: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        x = self._x
        if x is None:
            raise RuntimeError("forward must run before backward")
        flat_x = x.reshape(-1, x.shape[-1])
        flat_d = dout.reshape(-1, dout.shape[-1])
        dW = flat_x.T @ flat_d
        db = flat_d.sum(axis=0)
        dx = dout @ self.W.T
        return dx, [dW, db]
