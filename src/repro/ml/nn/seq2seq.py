"""Seq2Seq encoder-decoder for multi-step throughput regression (Fig. 15).

Architecture follows the paper: an LSTM encoder consumes the input feature
sequence (length 20 in the paper); its final state conditions an LSTM
decoder that emits the next-k throughput values.  We use the standard
repeat-vector decoding (the encoder context is fed to the decoder at every
output step) with a dense readout per step -- the classic Keras
encoder-decoder for time-series, trained with MSE and Adam.

``Seq2SeqRegressor`` wraps the network in an sklearn-like interface over
pre-windowed tensors: ``X`` of shape (n, T, D) and ``y`` of shape (n, k)
(or (n,) for single-step prediction).  Inputs and targets are standardized
internally.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.ml.nn.gru import GRULayer
from repro.ml.nn.lstm import DenseLayer, LSTMLayer
from repro.ml.nn.optim import Adam, clip_gradients

_CELLS = {"lstm": LSTMLayer, "gru": GRULayer}


class Seq2SeqNetwork:
    """Encoder (1-2 recurrent layers) -> repeated context -> decoder -> dense.

    ``cell`` selects the recurrent unit ("lstm", the paper's choice, or
    "gru" for the standard ablation).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 64,
        output_steps: int = 1,
        encoder_layers: int = 2,
        cell: str = "lstm",
        rng: np.random.Generator | None = None,
    ):
        if encoder_layers not in (1, 2):
            raise ValueError("encoder_layers must be 1 or 2")
        try:
            layer_cls = _CELLS[cell]
        except KeyError:
            raise ValueError(
                f"unknown cell {cell!r}; expected one of {sorted(_CELLS)}"
            ) from None
        rng = rng or np.random.default_rng(0)
        self.output_steps = output_steps
        self.encoders = [layer_cls(input_dim, hidden_dim, rng)]
        if encoder_layers == 2:
            self.encoders.append(layer_cls(hidden_dim, hidden_dim, rng))
        self.decoder = layer_cls(hidden_dim, hidden_dim, rng)
        self.readout = DenseLayer(hidden_dim, 1, rng)

    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for enc in self.encoders:
            out.extend(enc.params)
        out.extend(self.decoder.params)
        out.extend(self.readout.params)
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        """x: (B, T, D) -> predictions (B, k)."""
        h_seq = x
        context = None
        for enc in self.encoders:
            h_seq, context, _ = enc.forward(h_seq)
        dec_in = np.repeat(context[:, None, :], self.output_steps, axis=1)
        self._dec_in_shape = dec_in.shape
        dec_seq, _, _ = self.decoder.forward(dec_in)
        out = self.readout.forward(dec_seq)  # (B, k, 1)
        return out[:, :, 0]

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        """dout: (B, k) gradient of the loss w.r.t. predictions."""
        grads_readout_input, g_read = self.readout.backward(dout[:, :, None])
        d_dec_in, g_dec, _, _ = self.decoder.backward(grads_readout_input)
        d_context = d_dec_in.sum(axis=1)  # repeat-vector fan-in

        grads: list[np.ndarray] = []
        # Encoder layers backward, deepest first; only the final hidden
        # state of the last encoder receives gradient directly.
        d_h_seq = None
        dh_last = d_context
        for enc in reversed(self.encoders):
            d_x, g_enc, _, _ = enc.backward(d_h_seq, dh_last=dh_last)
            grads = g_enc + grads
            d_h_seq, dh_last = d_x, None
        return grads + g_dec + g_read


class Seq2SeqRegressor:
    """sklearn-style wrapper: fit/predict on windowed sequences."""

    def __init__(
        self,
        hidden_dim: int = 64,
        encoder_layers: int = 2,
        cell: str = "lstm",
        epochs: int = 30,
        batch_size: int = 256,
        learning_rate: float = 3e-3,
        max_grad_norm: float = 5.0,
        min_updates: int = 300,
        random_state: int | None = 0,
        verbose: bool = False,
    ):
        self.hidden_dim = hidden_dim
        self.encoder_layers = encoder_layers
        self.cell = cell
        self.epochs = epochs
        self.min_updates = min_updates
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_grad_norm = max_grad_norm
        self.random_state = random_state
        self.verbose = verbose
        self._net: Seq2SeqNetwork | None = None
        self.loss_history_: list[float] = []
        #: Filled by ``fit``: wall clock, epochs completed, final train
        #: loss (mirrors the GBDT models' telemetry block).
        self.fit_telemetry_: dict | None = None

    def _standardize_fit(self, X: np.ndarray, Y: np.ndarray) -> None:
        self._x_mean = X.mean(axis=(0, 1))
        self._x_std = X.std(axis=(0, 1))
        self._x_std[self._x_std == 0.0] = 1.0
        self._y_mean = float(Y.mean())
        self._y_std = float(Y.std()) or 1.0

    def _scale_x(self, X: np.ndarray) -> np.ndarray:
        return (X - self._x_mean) / self._x_std

    def fit(self, X, y) -> "Seq2SeqRegressor":
        X = np.asarray(X, dtype=float)
        if X.ndim != 3:
            raise ValueError("X must be (n, T, D) windows")
        Y = np.asarray(y, dtype=float)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError("X/y length mismatch")
        rng = np.random.default_rng(self.random_state)
        self._standardize_fit(X, Y)
        Xs = self._scale_x(X)
        Ys = (Y - self._y_mean) / self._y_std

        self._net = Seq2SeqNetwork(
            input_dim=X.shape[2],
            hidden_dim=self.hidden_dim,
            output_steps=Y.shape[1],
            encoder_layers=self.encoder_layers,
            cell=self.cell,
            rng=rng,
        )
        optimizer = Adam(self._net.params, lr=self.learning_rate)
        n = len(Xs)
        # Small datasets yield few batches per epoch; stretch the epoch
        # count so every fit gets a floor of optimizer updates.
        batches_per_epoch = max(1, -(-n // self.batch_size))
        epochs = max(self.epochs,
                     -(-self.min_updates // batches_per_epoch))
        self.loss_history_ = []
        log = obs.get_logger("ml.seq2seq")
        obs_on = obs.enabled()
        t_start = time.perf_counter()
        for epoch in range(epochs):
            epoch_t0 = time.perf_counter()
            perm = rng.permutation(n)
            epoch_loss, n_batches = 0.0, 0
            for start in range(0, n, self.batch_size):
                idx = perm[start:start + self.batch_size]
                xb, yb = Xs[idx], Ys[idx]
                pred = self._net.forward(xb)
                diff = pred - yb
                loss = float((diff * diff).mean())
                dout = 2.0 * diff / diff.size
                grads = self._net.backward(dout)
                clip_gradients(grads, self.max_grad_norm)
                optimizer.step(grads)
                epoch_loss += loss
                n_batches += 1
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
            if obs_on:
                obs.inc("seq2seq.epochs_total")
                obs.observe("seq2seq.epoch_s",
                            time.perf_counter() - epoch_t0)
                obs.set_gauge("seq2seq.train_loss", self.loss_history_[-1])
            if self.verbose:
                log.warning("epoch", epoch=epoch + 1, of=epochs,
                            mse=self.loss_history_[-1])
        self.fit_telemetry_ = {
            "model": "seq2seq_regressor",
            "fit_wall_s": time.perf_counter() - t_start,
            "epochs_completed": len(self.loss_history_),
            "final_train_loss": (self.loss_history_[-1]
                                 if self.loss_history_ else float("nan")),
        }
        return self

    def predict(self, X) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        preds = []
        for start in range(0, len(X), 4096):
            xb = self._scale_x(X[start:start + 4096])
            preds.append(self._net.forward(xb))
        out = np.concatenate(preds) * self._y_std + self._y_mean
        return out[:, 0] if out.shape[1] == 1 else out
