"""Numpy neural nets: LSTM with BPTT, Adam, Seq2Seq encoder-decoder."""

from repro.ml.nn.gru import GRULayer
from repro.ml.nn.lstm import DenseLayer, LSTMLayer, sigmoid
from repro.ml.nn.optim import Adam, clip_gradients
from repro.ml.nn.seq2seq import Seq2SeqNetwork, Seq2SeqRegressor

__all__ = [
    "Adam",
    "DenseLayer",
    "GRULayer",
    "LSTMLayer",
    "Seq2SeqNetwork",
    "Seq2SeqRegressor",
    "clip_gradients",
    "sigmoid",
]
