"""GRU layer with full backpropagation-through-time, in numpy.

A lighter recurrent cell than the LSTM (no separate cell state, 3 gates
instead of 4); offered as an alternative Seq2Seq encoder for the
standard LSTM-vs-GRU ablation.  Weight layout: ``W`` of shape
(input_dim + hidden, 3 * hidden) holding the reset / update / candidate
blocks in that column order, with the candidate block applied to the
*reset-gated* hidden state.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn.lstm import _orthogonal, sigmoid


class GRULayer:
    """Batch-first GRU: input (B, T, D) -> hidden states (B, T, H)."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = np.sqrt(2.0 / (input_dim + hidden_dim))
        Wx = rng.normal(0.0, scale, size=(input_dim, 3 * hidden_dim))
        Wh = np.concatenate(
            [_orthogonal((hidden_dim, hidden_dim), rng) for _ in range(3)],
            axis=1,
        )
        self.W = np.concatenate([Wx, Wh], axis=0)
        self.b = np.zeros(3 * hidden_dim)
        self._cache = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def forward(
        self, x: np.ndarray, h0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, None]:
        """Run the sequence; returns (H_all, h_T, None).

        The trailing ``None`` keeps the return signature interchangeable
        with :class:`~repro.ml.nn.lstm.LSTMLayer` (which returns c_T).
        """
        B, T, D = x.shape
        if D != self.input_dim:
            raise ValueError(f"expected input dim {self.input_dim}, got {D}")
        Hd = self.hidden_dim
        h = np.zeros((B, Hd)) if h0 is None else h0.copy()
        H_all = np.empty((B, T, Hd))
        cache = {
            "x": x, "h_prev": np.empty((B, T, Hd)),
            "r": np.empty((B, T, Hd)), "z": np.empty((B, T, Hd)),
            "n": np.empty((B, T, Hd)),
        }
        Wx = self.W[:D]
        Wh = self.W[D:]
        for t in range(T):
            cache["h_prev"][:, t] = h
            gates_x = x[:, t] @ Wx + self.b
            gates_h = h @ Wh
            r = sigmoid(gates_x[:, :Hd] + gates_h[:, :Hd])
            z = sigmoid(gates_x[:, Hd:2 * Hd] + gates_h[:, Hd:2 * Hd])
            n = np.tanh(gates_x[:, 2 * Hd:] + r * gates_h[:, 2 * Hd:])
            h = (1.0 - z) * n + z * h
            H_all[:, t] = h
            cache["r"][:, t] = r
            cache["z"][:, t] = z
            cache["n"][:, t] = n
        self._cache = cache
        return H_all, h, None

    def backward(
        self,
        dH_all: np.ndarray | None,
        dh_last: np.ndarray | None = None,
        dc_last=None,  # ignored; signature parity with LSTMLayer
    ) -> tuple[np.ndarray, list[np.ndarray], np.ndarray, None]:
        """Exact BPTT; returns (dx, [dW, db], dh0, None)."""
        cache = self._cache
        if cache is None:
            raise RuntimeError("forward must run before backward")
        x = cache["x"]
        B, T, D = x.shape
        Hd = self.hidden_dim
        Wx = self.W[:D]
        Wh = self.W[D:]
        dWx = np.zeros_like(Wx)
        dWh = np.zeros_like(Wh)
        db = np.zeros_like(self.b)
        dx = np.zeros_like(x)
        dh = np.zeros((B, Hd)) if dh_last is None else dh_last.copy()
        for t in range(T - 1, -1, -1):
            if dH_all is not None:
                dh = dh + dH_all[:, t]
            r, z, n = cache["r"][:, t], cache["z"][:, t], cache["n"][:, t]
            h_prev = cache["h_prev"][:, t]
            dn = dh * (1.0 - z)
            dz = dh * (h_prev - n)
            dh_prev = dh * z

            da_n = dn * (1.0 - n * n)  # pre-activation of candidate
            gh_n = h_prev @ Wh[:, 2 * Hd:]
            dr = da_n * gh_n
            da_r = dr * r * (1.0 - r)
            da_z = dz * z * (1.0 - z)

            da = np.concatenate([da_r, da_z, da_n], axis=1)
            dWx += x[:, t].T @ da
            db += da.sum(axis=0)
            dx[:, t] = da @ Wx.T

            # Hidden-side contributions: r and z blocks see h_prev
            # directly; the candidate block sees r * h_prev.
            dgh = np.concatenate([da_r, da_z, da_n * r], axis=1)
            dWh += h_prev.T @ dgh
            dh_prev = dh_prev + dgh @ Wh.T
            dh = dh_prev
        dW = np.concatenate([dWx, dWh], axis=0)
        return dx, [dW, db], dh, None
