"""Optimizers for the numpy neural nets."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimizer over a flat list of parameter arrays (in-place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient list length mismatch")
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_gradients(grads: list[np.ndarray], max_norm: float = 5.0) -> float:
    """Global-norm gradient clipping (in place); returns the pre-clip norm."""
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
