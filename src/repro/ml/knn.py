"""k-nearest-neighbour baselines.

KNN is the simplest location-lookup predictor evaluated by the paper
(Tables 4, 9, 10): find the k most similar feature vectors in the training
set and average (regression) or vote (classification).  Features are
standardized internally so that distances are meaningful across mixed
units (pixels, m/s, degrees).
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import LabelEncoder, StandardScaler


class _KNNBase:
    def __init__(self, n_neighbors: int = 5, chunk_size: int = 512):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size
        self._scaler: StandardScaler | None = None
        self._X: np.ndarray | None = None

    def _fit_features(self, X) -> None:
        X = np.asarray(X, dtype=float)
        if len(X) == 0:
            raise ValueError("empty training set")
        self._scaler = StandardScaler()
        self._X = self._scaler.fit_transform(np.nan_to_num(X))

    def _neighbor_indices(self, X) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model is not fitted")
        Xq = self._scaler.transform(np.nan_to_num(np.asarray(X, dtype=float)))
        k = min(self.n_neighbors, len(self._X))
        out = np.empty((len(Xq), k), dtype=int)
        train_sq = np.einsum("ij,ij->i", self._X, self._X)
        for start in range(0, len(Xq), self.chunk_size):
            chunk = Xq[start:start + self.chunk_size]
            d2 = (
                train_sq[None, :]
                - 2.0 * chunk @ self._X.T
                + np.einsum("ij,ij->i", chunk, chunk)[:, None]
            )
            out[start:start + len(chunk)] = np.argpartition(
                d2, kth=k - 1, axis=1
            )[:, :k]
        return out


class KNNRegressor(_KNNBase):
    """Mean of the k nearest targets."""

    def fit(self, X, y) -> "KNNRegressor":
        self._fit_features(X)
        self._y = np.asarray(y, dtype=float).ravel()
        if len(self._y) != len(self._X):
            raise ValueError("X/y length mismatch")
        return self

    def predict(self, X) -> np.ndarray:
        idx = self._neighbor_indices(X)
        return self._y[idx].mean(axis=1)


class KNNClassifier(_KNNBase):
    """Majority vote among the k nearest labels."""

    def fit(self, X, y) -> "KNNClassifier":
        self._fit_features(X)
        self.encoder_ = LabelEncoder()
        self._codes = self.encoder_.fit_transform(y)
        if len(self._codes) != len(self._X):
            raise ValueError("X/y length mismatch")
        return self

    def predict_proba(self, X) -> np.ndarray:
        idx = self._neighbor_indices(X)
        k_classes = len(self.encoder_.classes_)
        votes = np.zeros((len(idx), k_classes))
        for c in range(k_classes):
            votes[:, c] = (self._codes[idx] == c).mean(axis=1)
        return votes

    def predict(self, X) -> np.ndarray:
        codes = np.argmax(self.predict_proba(X), axis=1)
        return self.encoder_.inverse_transform(codes)

    @property
    def classes_(self) -> np.ndarray:
        return self.encoder_.classes_
