"""Preprocessing: scaling, splits, encodings.

Small, sklearn-shaped utilities: ``StandardScaler`` for the neural models,
``train_test_split`` with the paper's 70/30 random split, cyclic encoding
for compass/angle features (so 359 deg sits next to 1 deg), and a simple
integer label encoder.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance feature scaling."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns pass through centered
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


def train_test_split(
    *arrays,
    test_size: float = 0.3,
    rng: np.random.Generator | int | None = None,
):
    """Random split of parallel arrays; paper uses a 70/30 ratio.

    Returns ``a_train, a_test, b_train, b_test, ...`` in sklearn order.
    """
    if not arrays:
        raise ValueError("nothing to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(arrays[0])
    for arr in arrays:
        if len(arr) != n:
            raise ValueError("arrays must share their first dimension")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_size)))
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    out = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.extend([arr[train_idx], arr[test_idx]])
    return tuple(out)


def split_by_run(
    run_ids, test_size: float = 0.3,
    rng: np.random.Generator | int | None = None,
    strata=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean (train_mask, test_mask) keeping whole runs together.

    Sequence models must not see fragments of a test run during training;
    splitting at run granularity prevents that leakage.

    ``strata`` (optional, per-row labels such as trajectory x mobility
    mode) stratifies the split: each stratum contributes its own ~30% of
    runs, so a small campaign cannot end up with, say, every southbound
    walk in the test set.  Strata with a single run stay in training.
    """
    run_ids = np.asarray(run_ids)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    if strata is None:
        run_groups = {None: np.unique(run_ids)}
    else:
        strata = np.asarray(strata)
        if len(strata) != len(run_ids):
            raise ValueError("strata length mismatch")
        run_groups = {}
        for run in np.unique(run_ids):
            label = strata[run_ids == run][0]
            run_groups.setdefault(label, []).append(run)
        run_groups = {k: np.asarray(v) for k, v in run_groups.items()}

    test_runs: set = set()
    for runs in run_groups.values():
        if strata is not None and len(runs) < 2:
            continue
        perm = rng.permutation(len(runs))
        n_test = max(1, int(round(len(runs) * test_size)))
        test_runs.update(np.asarray(runs)[perm[:n_test]].tolist())
    test_mask = np.asarray([r in test_runs for r in run_ids])
    if not test_mask.any():  # degenerate: everything single-run strata
        return split_by_run(run_ids, test_size, rng, strata=None)
    return ~test_mask, test_mask


def cyclic_encode(angles_deg) -> np.ndarray:
    """Map angles in degrees to (sin, cos) columns.

    Compass direction and the two UE-panel angles are circular quantities;
    feeding raw degrees makes 0 and 360 maximally distant.  Angles are
    normalized mod 360 first so coterminal inputs (0 and 360, -90 and
    270) encode to bit-identical pairs -- in particular exactly
    ``(0.0, 1.0)`` at 0/360 deg, where the raw ``sin(radians(360.0))``
    would be ~-2.45e-16.  Inputs already in [0, 360) pass through the
    ``mod`` untouched, so encodings of in-range data are unchanged.  NaN
    angles (e.g. Loop T-features) propagate as NaN in both columns.
    """
    a = np.mod(np.asarray(angles_deg, dtype=float), 360.0)
    # mod of a tiny negative (-1e-69) rounds up to exactly 360.0; fold it
    # back so the residue really lives in [0, 360).
    a = np.where(a == 360.0, 0.0, a)
    a = np.radians(a)
    return np.column_stack([np.sin(a), np.cos(a)])


class LabelEncoder:
    """Map arbitrary labels to contiguous integers 0..k-1."""

    def __init__(self):
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        y = np.asarray(y)
        index = {label: i for i, label in enumerate(self.classes_.tolist())}
        try:
            return np.asarray([index[v] for v in y.tolist()])
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted")
        return self.classes_[np.asarray(codes, dtype=int)]


class PredictionPipeline:
    """An optional :class:`StandardScaler` in front of any estimator.

    The deployable unit the serving layer ships: models that were trained
    on scaled features (KNN, the neural baselines) carry their scaler so
    a request's raw feature vector is transformed exactly as training
    data was.  ``scaler=None`` passes features through untouched (the
    tree models bin raw values and need no scaling).
    """

    def __init__(self, model, scaler: StandardScaler | None = None):
        self.model = model
        self.scaler = scaler

    def _transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return self.scaler.transform(X) if self.scaler is not None else X

    def fit(self, X, y) -> "PredictionPipeline":
        X = np.asarray(X, dtype=float)
        if self.scaler is not None:
            X = self.scaler.fit_transform(X)
        self.model.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        return self.model.predict(self._transform(X))

    def predict_row(self, row) -> float:
        """Predict from one raw telemetry row (a plain dict).

        Requires a feature-view stamp (``repro.fstore.attach_view``,
        applied by ``Lumos5G.publish``) so the pipeline knows which
        features to compute; the online path never allocates a table.
        """
        from repro import fstore

        view = fstore.view_of(self)
        if view is None:
            raise RuntimeError(
                "pipeline has no feature_view_ stamp; publish it through "
                "repro.fstore.attach_view to enable row predictions"
            )
        x = fstore.view_from_dict(view["view"]).transform_row(row)
        return float(self.predict(x[None, :])[0])

    def predict_proba(self, X) -> np.ndarray:
        return self.model.predict_proba(self._transform(X))

    @property
    def classes_(self) -> np.ndarray:
        return self.model.classes_

    @property
    def n_features_(self) -> int | None:
        return getattr(self.model, "n_features_", None)


def one_hot(codes, n_classes: int | None = None) -> np.ndarray:
    """Integer codes -> one-hot float matrix."""
    codes = np.asarray(codes, dtype=int)
    if n_classes is None:
        n_classes = int(codes.max()) + 1 if len(codes) else 0
    out = np.zeros((len(codes), n_classes))
    out[np.arange(len(codes)), codes] = 1.0
    return out
