"""A k-d tree for exact nearest-neighbour queries.

Brute-force KNN is O(n) per query; the k-d tree gives expected
O(log n) for the low-dimensional feature spaces of the L/L+M groups.
Used by :class:`~repro.ml.knn.KNNRegressor`/``KNNClassifier`` when the
dimensionality makes it worthwhile; also usable standalone.

Implementation: median-split construction over the widest-spread axis,
array-based nodes, iterative best-first query with a bounded max-heap of
candidates.
"""

from __future__ import annotations

import heapq

import numpy as np


class KDTree:
    """Static k-d tree over an (n, d) float matrix."""

    def __init__(self, points: np.ndarray, leaf_size: int = 16):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty 2-D array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = leaf_size
        # Node arrays: axis < 0 marks a leaf holding indices [start, end).
        self._axis: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._start: list[int] = []
        self._end: list[int] = []
        self._index = np.arange(len(points))
        self._build(0, len(points))

    def _new_node(self) -> int:
        for arr in (self._axis, self._threshold, self._left, self._right,
                    self._start, self._end):
            arr.append(-1)
        return len(self._axis) - 1

    def _build(self, start: int, end: int) -> int:
        node = self._new_node()
        n = end - start
        if n <= self.leaf_size:
            self._axis[node] = -1
            self._start[node] = start
            self._end[node] = end
            return node
        subset = self.points[self._index[start:end]]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        axis = int(np.argmax(spreads))
        order = np.argsort(subset[:, axis], kind="stable")
        self._index[start:end] = self._index[start:end][order]
        mid = start + n // 2
        self._axis[node] = axis
        self._threshold[node] = float(
            self.points[self._index[mid], axis]
        )
        self._left[node] = self._build(start, mid)
        self._right[node] = self._build(mid, end)
        return node

    def query(self, q: np.ndarray, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """(distances, indices) of the k nearest points to ``q``."""
        q = np.asarray(q, dtype=float)
        if q.ndim != 1 or len(q) != self.points.shape[1]:
            raise ValueError("query dimensionality mismatch")
        k = min(k, len(self.points))
        # Max-heap of (-dist2, index) for the current best k.
        best: list[tuple[float, int]] = []

        def visit(node: int) -> None:
            axis = self._axis[node]
            if axis < 0:
                for i in self._index[self._start[node]:self._end[node]]:
                    d2 = float(((self.points[i] - q) ** 2).sum())
                    if len(best) < k:
                        heapq.heappush(best, (-d2, int(i)))
                    elif d2 < -best[0][0]:
                        heapq.heapreplace(best, (-d2, int(i)))
                return
            diff = q[axis] - self._threshold[node]
            near, far = ((self._left[node], self._right[node]) if diff < 0
                         else (self._right[node], self._left[node]))
            visit(near)
            if len(best) < k or diff * diff < -best[0][0]:
                visit(far)

        visit(0)
        order = sorted(best, key=lambda t: -t[0])
        dists = np.sqrt(np.asarray([-d2 for d2, _ in order]))
        idx = np.asarray([i for _, i in order], dtype=int)
        return dists, idx

    def query_many(
        self, Q: np.ndarray, k: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`query`; returns (n_q, k) distance/index arrays."""
        Q = np.asarray(Q, dtype=float)
        n = len(Q)
        k_eff = min(k, len(self.points))
        dists = np.empty((n, k_eff))
        idx = np.empty((n, k_eff), dtype=int)
        for i in range(n):
            dists[i], idx[i] = self.query(Q[i], k_eff)
        return dists, idx
