"""Ordinary Kriging -- the geospatial-interpolation baseline [26].

Kriging predicts the value at a query location as a weighted sum of
observed values, with weights from a fitted variogram under the unbiased
constraint (weights sum to 1).  It models *spatial correlation only*, which
is exactly why the paper uses it as the canary: mmWave throughput has weak
spatial correlation, so OK performs poorly on 5G traces (Table 9, A.4).
It applies only to the L feature group (2-D coordinates).

Implementation notes: duplicate coordinates are aggregated to their mean
(Kriging needs distinct support points), the support is optionally
subsampled for tractability, a spherical variogram is fitted to the
empirical semivariogram by least squares, and the (n+1) kriging system is
factorized once and reused for every prediction.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg


def spherical_variogram(h: np.ndarray, nugget: float, sill: float,
                        range_: float) -> np.ndarray:
    """Classic spherical model: rises to ``sill`` at distance ``range_``."""
    h = np.asarray(h, dtype=float)
    ratio = np.clip(h / max(range_, 1e-9), 0.0, 1.0)
    gamma = nugget + (sill - nugget) * (1.5 * ratio - 0.5 * ratio**3)
    return np.where(h <= 0.0, 0.0, gamma)


def fit_spherical_variogram(
    coords: np.ndarray, values: np.ndarray, n_lags: int = 15
) -> tuple[float, float, float]:
    """Least-squares (nugget, sill, range) fit to the empirical variogram."""
    n = len(coords)
    if n < 3:
        raise ValueError("need at least 3 points to fit a variogram")
    d = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    g = 0.5 * (values[:, None] - values[None, :]) ** 2
    iu = np.triu_indices(n, k=1)
    dists, gammas = d[iu], g[iu]
    max_d = dists.max()
    if max_d <= 0:
        raise ValueError("all points are co-located")
    edges = np.linspace(0.0, max_d, n_lags + 1)
    lag_d, lag_g = [], []
    for i in range(n_lags):
        sel = (dists > edges[i]) & (dists <= edges[i + 1])
        if sel.sum() >= 3:
            lag_d.append(dists[sel].mean())
            lag_g.append(gammas[sel].mean())
    lag_d, lag_g = np.asarray(lag_d), np.asarray(lag_g)
    if len(lag_d) < 3:
        sill = float(values.var()) or 1.0
        return 0.1 * sill, sill, max_d / 2.0

    best, best_err = None, np.inf
    sill0 = max(lag_g.max(), 1e-9)
    for range_ in np.linspace(max_d * 0.1, max_d, 12):
        for nugget_frac in (0.0, 0.1, 0.3, 0.5):
            nugget = nugget_frac * sill0
            pred = spherical_variogram(lag_d, nugget, sill0, range_)
            err = float(((pred - lag_g) ** 2).mean())
            if err < best_err:
                best, best_err = (nugget, sill0, range_), err
    return best


class OrdinaryKriging:
    """Ordinary Kriging regressor over 2-D coordinates."""

    def __init__(self, max_points: int = 600, n_lags: int = 15,
                 random_state: int | None = 0):
        self.max_points = max_points
        self.n_lags = n_lags
        self.random_state = random_state
        self._coords: np.ndarray | None = None

    def fit(self, X, y) -> "OrdinaryKriging":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[1] != 2:
            raise ValueError(
                "Ordinary Kriging applies to 2-D coordinates only "
                "(the L feature group)"
            )
        # Aggregate duplicate coordinates to their mean value.
        uniq, inverse = np.unique(X, axis=0, return_inverse=True)
        sums = np.bincount(inverse, weights=y)
        counts = np.bincount(inverse)
        coords, values = uniq, sums / counts
        if len(coords) > self.max_points:
            rng = np.random.default_rng(self.random_state)
            keep = rng.choice(len(coords), self.max_points, replace=False)
            coords, values = coords[keep], values[keep]
        if len(coords) < 3:
            raise ValueError("need at least 3 distinct locations")

        self.nugget_, self.sill_, self.range_ = fit_spherical_variogram(
            coords, values, self.n_lags
        )
        n = len(coords)
        d = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
        K = np.empty((n + 1, n + 1))
        K[:n, :n] = spherical_variogram(d, self.nugget_, self.sill_,
                                        self.range_)
        K[:n, n] = 1.0
        K[n, :n] = 1.0
        K[n, n] = 0.0
        # Tiny jitter keeps the saddle-point system factorizable.
        K[:n, :n] += np.eye(n) * 1e-8
        self._lu = linalg.lu_factor(K)
        self._coords = coords
        self._values = values
        self._mean = float(values.mean())
        return self

    def predict(self, X) -> np.ndarray:
        if self._coords is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        n = len(self._coords)
        d = np.sqrt(
            ((X[:, None, :] - self._coords[None, :, :]) ** 2).sum(-1)
        )
        B = np.empty((n + 1, len(X)))
        B[:n] = spherical_variogram(d, self.nugget_, self.sill_,
                                    self.range_).T
        B[n] = 1.0
        weights = linalg.lu_solve(self._lu, B)[:n]
        return weights.T @ self._values
