"""Random forests -- the RF baseline of Alimpertis et al. [20].

Bagged histogram trees with per-split feature subsampling.  The regressor
averages leaf means; the classifier averages per-class scores of trees fit
on one-hot targets (probability forests), matching scikit-learn's
``predict_proba``-averaging behaviour closely enough for baseline duty.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np

from repro.ml.preprocessing import LabelEncoder, one_hot
from repro.ml.tree import FeatureBinner, HistogramTree, TreeParams
from repro.par import pmap, spawn_seeds


def _fit_one_tree(
    binned: np.ndarray,
    targets: np.ndarray,
    hess: np.ndarray,
    params: TreeParams,
    bootstrap: bool,
    n_bins: np.ndarray,
    seed: np.random.SeedSequence,
) -> HistogramTree:
    """Pure per-tree task: bootstrap + grow from the tree's own seed."""
    rng = np.random.default_rng(seed)
    n = len(binned)
    idx = rng.integers(0, n, size=n) if bootstrap else np.arange(n)
    return HistogramTree(params).fit(
        binned[idx], targets[idx], hess[idx], rng=rng, n_bins=n_bins
    )


class _ForestBase:
    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        max_bins: int = 256,
        random_state: int | None = 0,
        workers: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_bins = max_bins
        self.random_state = random_state
        #: Process-pool size for tree fitting (None = REPRO_WORKERS).
        #: Predictions are invariant to this: tree i always grows from
        #: the i-th child of ``random_state``'s seed sequence.
        self.workers = workers
        self._binner: FeatureBinner | None = None
        self._trees: list[HistogramTree] = []
        self.n_features_: int | None = None
        #: Training provenance (wall clock, sizes); travels with the
        #: serialized model like the GBDT family's telemetry does.
        self.fit_telemetry_: dict | None = None

    def _params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=0.0,
            max_features=self.max_features,
        )

    def _fit_trees(self, X: np.ndarray, targets: np.ndarray) -> None:
        t_start = time.perf_counter()
        self.n_features_ = X.shape[1]
        self._binner = FeatureBinner(self.max_bins)
        binned = self._binner.fit_transform(X)
        hess = np.ones_like(targets)
        seeds = spawn_seeds(self.random_state, self.n_estimators)
        self._trees = pmap(
            partial(_fit_one_tree, binned, targets, hess,
                    self._params(), self.bootstrap, self._binner.n_bins_),
            seeds,
            workers=self.workers,
            label="forest.fit",
        )
        self.fit_telemetry_ = {
            "model": self._MODEL_TAG,
            "fit_wall_s": time.perf_counter() - t_start,
            "n_trees": len(self._trees),
            "n_train": len(X),
        }

    def _fit_trees_stream(self, chunks, binner: FeatureBinner,
                          targets_of) -> None:
        """Out-of-core tree fitting from a re-iterable ``(binned, y)`` stream.

        Bootstrap resampling becomes *row weighting*: tree ``i`` draws
        its multinomial bootstrap counts from the same index-keyed seed
        the in-memory path uses, then grows with ``grad = w * target``
        and ``hess = w`` -- the weighted leaf mean equals the
        duplicated-row mean, but ``min_samples_leaf`` counts distinct
        rows (not draw multiplicity) and trees grow serially (``workers``
        is unused out of core), so a multi-chunk streamed forest is
        deterministic for a seed yet not identical to the in-memory
        forest.  A single-chunk stream gathers and reproduces the
        in-memory per-tree fit exactly.

        ``targets_of(y_chunk)`` maps a raw target chunk to the (m, k)
        regression target (identity column for regression, one-hot for
        classification).
        """
        if binner.edges_ is None:
            raise RuntimeError("binner is not fitted")
        t_start = time.perf_counter()
        lens, d = [], None
        for binned, _ in chunks():
            lens.append(len(binned))
            d = np.asarray(binned).shape[1]
        n = int(np.sum(lens))
        if n == 0:
            raise ValueError("empty chunk stream")
        self.n_features_ = d
        self._binner = binner
        seeds = spawn_seeds(self.random_state, self.n_estimators)
        params = self._params()
        offsets = np.concatenate([[0], np.cumsum(lens)])
        if len(lens) == 1:
            (binned0, y0), = chunks()
            targets = targets_of(y0)
            hess = np.ones_like(targets)
            self._trees = [
                _fit_one_tree(np.asarray(binned0), targets, hess, params,
                              self.bootstrap, binner.n_bins_, seed)
                for seed in seeds
            ]
        else:
            self._trees = []
            for seed in seeds:
                rng = np.random.default_rng(seed)
                if self.bootstrap:
                    counts = np.bincount(rng.integers(0, n, size=n),
                                         minlength=n).astype(float)
                else:
                    counts = None

                def tree_chunks():
                    for i, (binned, y) in enumerate(chunks()):
                        targets = targets_of(y)
                        if counts is None:
                            yield binned, targets, None
                        else:
                            # Rows never drawn by this tree's bootstrap
                            # drop out, as they do in-memory; drawn rows
                            # carry their draw count as the weight.
                            w = counts[offsets[i]:offsets[i + 1]]
                            keep = w > 0.0
                            wk = w[keep][:, None]
                            yield (np.asarray(binned)[keep],
                                   targets[keep] * wk,
                                   wk * np.ones((1, targets.shape[1])))

                self._trees.append(HistogramTree(params).fit_binned_chunks(
                    tree_chunks, rng=rng, n_bins=binner.n_bins_))
        self.fit_telemetry_ = {
            "model": self._MODEL_TAG,
            "fit_wall_s": time.perf_counter() - t_start,
            "n_trees": len(self._trees),
            "n_train": n,
            "out_of_core": True,
        }

    def _mean_prediction(self, X) -> np.ndarray:
        if self._binner is None:
            raise RuntimeError("model is not fitted")
        binned = self._binner.transform(np.asarray(X, dtype=float))
        acc = np.zeros((len(binned), self._trees[0].n_outputs))
        for tree in self._trees:
            acc += tree.predict_binned(binned)
        return acc / len(self._trees)

    @property
    def feature_importances_(self) -> np.ndarray:
        if self._binner is None:
            raise RuntimeError("model is not fitted")
        total = np.zeros(self.n_features_)
        for tree in self._trees:
            total += tree.feature_gain_
        s = total.sum()
        return total / s if s > 0 else total


class RandomForestRegressor(_ForestBase):
    """Bagging + feature-subsampled regression trees."""

    _MODEL_TAG = "rf_regressor"

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        self._fit_trees(X, y)
        return self

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "RandomForestRegressor":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream
        (see :meth:`_ForestBase._fit_trees_stream` for the contract)."""
        self._fit_trees_stream(
            chunks, binner,
            lambda y: np.asarray(y, dtype=float).reshape(-1, 1),
        )
        return self

    def predict(self, X) -> np.ndarray:
        return self._mean_prediction(X)[:, 0]


class RandomForestClassifier(_ForestBase):
    """Probability forest over one-hot targets."""

    _MODEL_TAG = "rf_classifier"

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        self.encoder_ = LabelEncoder()
        codes = self.encoder_.fit_transform(y)
        Y = one_hot(codes, len(self.encoder_.classes_))
        self._fit_trees(X, Y)
        return self

    def fit_binned_stream(self, chunks, binner: FeatureBinner
                          ) -> "RandomForestClassifier":
        """Out-of-core fit from a re-iterable ``(binned, y)`` chunk stream
        (see :meth:`_ForestBase._fit_trees_stream` for the contract).
        Classes are the sorted union of labels across the stream."""
        classes = None
        for _, y in chunks():
            u = np.unique(np.asarray(y))
            classes = u if classes is None else np.union1d(classes, u)
        if classes is None:
            raise ValueError("empty chunk stream")
        self.encoder_ = LabelEncoder()
        self.encoder_.classes_ = classes
        k = len(classes)
        self._fit_trees_stream(
            chunks, binner,
            lambda y: one_hot(self.encoder_.transform(np.asarray(y)), k),
        )
        return self

    def predict_proba(self, X) -> np.ndarray:
        scores = np.clip(self._mean_prediction(X), 0.0, None)
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, X) -> np.ndarray:
        codes = np.argmax(self._mean_prediction(X), axis=1)
        return self.encoder_.inverse_transform(codes)

    @property
    def classes_(self) -> np.ndarray:
        return self.encoder_.classes_
