"""Linear baselines: ridge regression and multinomial logistic regression.

Simple, strong-floor baselines used throughout the wireless-prediction
literature.  Both standardize features internally (so regularization acts
uniformly) and tolerate NaN features by mean imputation, matching the
tolerance of the tree models.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gbdt import softmax
from repro.ml.preprocessing import LabelEncoder, StandardScaler, one_hot


def _impute(X: np.ndarray) -> np.ndarray:
    if not np.isnan(X).any():
        return X
    col_mean = np.nanmean(X, axis=0)
    col_mean = np.where(np.isfinite(col_mean), col_mean, 0.0)
    return np.where(np.isnan(X), col_mean[None, :], X)


class RidgeRegressor:
    """L2-regularized least squares with intercept (closed form)."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._scaler: StandardScaler | None = None

    def fit(self, X, y) -> "RidgeRegressor":
        X = _impute(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X/y length mismatch")
        self._scaler = StandardScaler()
        Z = self._scaler.fit_transform(X)
        self._y_mean = float(y.mean())
        yc = y - self._y_mean
        d = Z.shape[1]
        A = Z.T @ Z + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(A, Z.T @ yc)
        return self

    def predict(self, X) -> np.ndarray:
        if self._scaler is None:
            raise RuntimeError("model is not fitted")
        Z = self._scaler.transform(_impute(np.asarray(X, dtype=float)))
        return Z @ self.coef_ + self._y_mean


class LogisticRegression:
    """Multinomial logistic regression trained by full-batch Newton-free
    gradient descent with L2 regularization."""

    def __init__(self, alpha: float = 1e-3, max_iter: int = 300,
                 learning_rate: float = 0.5, tol: float = 1e-7):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol
        self._scaler: StandardScaler | None = None

    def fit(self, X, y) -> "LogisticRegression":
        X = _impute(np.asarray(X, dtype=float))
        self.encoder_ = LabelEncoder()
        codes = self.encoder_.fit_transform(y)
        k = len(self.encoder_.classes_)
        if k < 2:
            raise ValueError("need at least two classes")
        Y = one_hot(codes, k)
        self._scaler = StandardScaler()
        Z = self._scaler.fit_transform(X)
        Z = np.column_stack([Z, np.ones(len(Z))])  # intercept column
        n, d = Z.shape
        W = np.zeros((d, k))
        prev_loss = np.inf
        for _ in range(self.max_iter):
            P = softmax(Z @ W)
            grad = Z.T @ (P - Y) / n + self.alpha * W
            W -= self.learning_rate * grad
            loss = (-np.sum(Y * np.log(np.clip(P, 1e-12, None))) / n
                    + 0.5 * self.alpha * float((W * W).sum()))
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.W_ = W
        return self

    def _logits(self, X) -> np.ndarray:
        if self._scaler is None:
            raise RuntimeError("model is not fitted")
        Z = self._scaler.transform(_impute(np.asarray(X, dtype=float)))
        Z = np.column_stack([Z, np.ones(len(Z))])
        return Z @ self.W_

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self._logits(X))

    def predict(self, X) -> np.ndarray:
        codes = np.argmax(self._logits(X), axis=1)
        return self.encoder_.inverse_transform(codes)

    @property
    def classes_(self) -> np.ndarray:
        return self.encoder_.classes_
