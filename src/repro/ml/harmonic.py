"""Harmonic-mean throughput predictor -- the history baseline [38, 64].

FESTIVE/MPC-style ABR algorithms predict the next throughput as the
harmonic mean of the last ``window`` observed throughputs; the harmonic
mean damps the effect of transient spikes.  It needs no training and no
features beyond the session's own past throughput, which is why the paper
lists it under the C (connection) information only.
"""

from __future__ import annotations

import numpy as np


def harmonic_mean(values: np.ndarray) -> float:
    """Harmonic mean, treating non-positive samples as a small floor.

    mmWave traces genuinely hit 0 Mbps (handoff outages); a literal
    harmonic mean would be destroyed by a single zero, so ABR
    implementations floor the samples.
    """
    values = np.maximum(np.asarray(values, dtype=float), 1e-3)
    return float(len(values) / np.sum(1.0 / values))


class HarmonicMeanPredictor:
    """Per-session sliding-window harmonic-mean forecaster."""

    def __init__(self, window: int = 5):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def predict_trace(self, throughput: np.ndarray) -> np.ndarray:
        """One-step-ahead predictions along a single session trace.

        ``pred[t]`` forecasts ``throughput[t]`` from samples before ``t``;
        the first prediction (no history) repeats the first observation.
        """
        x = np.asarray(throughput, dtype=float)
        if len(x) == 0:
            return np.empty(0)
        preds = np.empty(len(x))
        preds[0] = x[0]
        for t in range(1, len(x)):
            lo = max(0, t - self.window)
            preds[t] = harmonic_mean(x[lo:t])
        return preds

    def predict_sessions(
        self, throughput: np.ndarray, session_ids: np.ndarray
    ) -> np.ndarray:
        """One-step-ahead predictions, restarting at session boundaries."""
        throughput = np.asarray(throughput, dtype=float)
        session_ids = np.asarray(session_ids)
        if len(throughput) != len(session_ids):
            raise ValueError("length mismatch")
        preds = np.empty(len(throughput))
        for sid in np.unique(session_ids):
            mask = session_ids == sid
            preds[mask] = self.predict_trace(throughput[mask])
        return preds
