"""Model selection: k-fold cross-validation and grid search.

The paper tunes GDBT and Seq2Seq hyperparameters by grid search on a
held-out area (data from neither train nor test).  ``GridSearch`` mirrors
that: it scores each parameter combination on a validation set (or via
k-fold CV) and keeps the best estimator.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.par import pmap


def kfold_indices(
    n: int, n_splits: int = 5, rng: np.random.Generator | int | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_idx, val_idx) pairs."""
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    if n < n_splits:
        raise ValueError("more folds than samples")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_splits)
    out = []
    for i in range(n_splits):
        val = folds[i]
        train = np.concatenate([folds[j] for j in range(n_splits) if j != i])
        out.append((train, val))
    return out


def parameter_grid(grid: Mapping[str, Sequence]) -> list[dict]:
    """Expand ``{param: [values]}`` into the list of combinations."""
    if not grid:
        return [{}]
    keys = list(grid)
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(grid[k] for k in keys))]


@dataclass
class GridSearchResult:
    params: dict
    score: float


class GridSearch:
    """Exhaustive search over a parameter grid.

    Parameters
    ----------
    estimator_factory:
        Callable mapping a parameter dict to an unfitted estimator with
        ``fit``/``predict``.
    score_fn:
        Callable ``(y_true, y_pred) -> float``; *lower is better* when
        ``minimize`` is True (e.g. MAE), higher otherwise (e.g. F1).
    """

    def __init__(
        self,
        estimator_factory: Callable[[dict], object],
        param_grid: Mapping[str, Sequence],
        score_fn: Callable,
        minimize: bool = True,
    ):
        self.estimator_factory = estimator_factory
        self.param_grid = param_grid
        self.score_fn = score_fn
        self.minimize = minimize
        self.results_: list[GridSearchResult] = []
        self.best_params_: dict | None = None
        self.best_score_: float | None = None
        self.best_estimator_ = None

    def _better(self, a: float, b: float) -> bool:
        return a < b if self.minimize else a > b

    def fit_validation(self, X_train, y_train, X_val, y_val) -> "GridSearch":
        """Score every combination on one fixed validation set."""
        self.results_ = []
        for params in parameter_grid(self.param_grid):
            model = self.estimator_factory(params)
            model.fit(X_train, y_train)
            score = float(self.score_fn(y_val, model.predict(X_val)))
            self.results_.append(GridSearchResult(params, score))
            if self.best_score_ is None or self._better(score, self.best_score_):
                self.best_score_ = score
                self.best_params_ = params
                self.best_estimator_ = model
        return self

    def fit_cv(
        self, X, y, n_splits: int = 3,
        rng: np.random.Generator | int | None = 0,
        workers: int | None = None,
    ) -> "GridSearch":
        """Score every combination by k-fold cross-validation.

        ``workers`` fans the ``len(grid) x n_splits`` fit/score cells out
        over a process pool (factories/score functions that don't pickle
        -- e.g. lambdas -- fall back to serial).  Folds are drawn once up
        front and each cell is a pure function of (params, fold), so the
        scores, ``best_params_`` and tie-breaking (first grid entry on
        equal score) are identical parallel or serial.
        """
        X = np.asarray(X)
        y = np.asarray(y)
        folds = kfold_indices(len(X), n_splits, rng)
        grid = parameter_grid(self.param_grid)
        cells = [(pi, fi) for pi in range(len(grid))
                 for fi in range(len(folds))]
        scores = pmap(
            partial(_fit_score_cell, self.estimator_factory, self.score_fn,
                    X, y, grid, folds),
            cells,
            workers=workers,
            label="gridsearch.cv",
        )
        per_param = np.asarray(scores, dtype=float).reshape(
            len(grid), len(folds)
        )
        self.results_ = []
        self.best_score_ = self.best_params_ = self.best_estimator_ = None
        for params, fold_scores in zip(grid, per_param):
            score = float(fold_scores.mean())
            self.results_.append(GridSearchResult(params, score))
            if self.best_score_ is None or self._better(score, self.best_score_):
                self.best_score_ = score
                self.best_params_ = params
        if self.best_params_ is not None:
            self.best_estimator_ = self.estimator_factory(self.best_params_)
            self.best_estimator_.fit(X, y)
        return self


def _fit_score_cell(
    factory: Callable[[dict], object],
    score_fn: Callable,
    X: np.ndarray,
    y: np.ndarray,
    grid: list[dict],
    folds: list[tuple[np.ndarray, np.ndarray]],
    cell: tuple[int, int],
) -> float:
    """Pure (param index, fold index) -> validation score task."""
    pi, fi = cell
    train_idx, val_idx = folds[fi]
    model = factory(grid[pi])
    model.fit(X[train_idx], y[train_idx])
    return float(score_fn(y[val_idx], model.predict(X[val_idx])))
