"""From-scratch ML stack: GBDT, forests, KNN, kriging, Seq2Seq, metrics."""

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import (
    GBDTClassifier,
    GBDTQuantileRegressor,
    GBDTRegressor,
    softmax,
)
from repro.ml.harmonic import HarmonicMeanPredictor, harmonic_mean
from repro.ml.kdtree import KDTree
from repro.ml.knn import KNNClassifier, KNNRegressor
from repro.ml.linear import LogisticRegression, RidgeRegressor
from repro.ml.kriging import (
    OrdinaryKriging,
    fit_spherical_variogram,
    spherical_variogram,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    error_reduction_factor,
    macro_f1,
    mae,
    mse,
    precision_recall_f1,
    recall_of_class,
    rmse,
    weighted_f1,
)
from repro.ml.model_selection import (
    GridSearch,
    kfold_indices,
    parameter_grid,
)
from repro.ml.nn import Seq2SeqRegressor
from repro.ml.serialize import (
    gbdt_from_dict,
    gbdt_from_json,
    gbdt_to_dict,
    gbdt_to_json,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    cyclic_encode,
    one_hot,
    split_by_run,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor, FeatureBinner, HistogramTree

__all__ = [
    "DecisionTreeRegressor",
    "FeatureBinner",
    "GBDTClassifier",
    "GBDTQuantileRegressor",
    "GBDTRegressor",
    "GridSearch",
    "HarmonicMeanPredictor",
    "HistogramTree",
    "KDTree",
    "KNNClassifier",
    "KNNRegressor",
    "LabelEncoder",
    "LogisticRegression",
    "OrdinaryKriging",
    "RandomForestClassifier",
    "RidgeRegressor",
    "RandomForestRegressor",
    "Seq2SeqRegressor",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "cyclic_encode",
    "error_reduction_factor",
    "fit_spherical_variogram",
    "gbdt_from_dict",
    "gbdt_from_json",
    "gbdt_to_dict",
    "gbdt_to_json",
    "harmonic_mean",
    "kfold_indices",
    "macro_f1",
    "mae",
    "mse",
    "one_hot",
    "parameter_grid",
    "precision_recall_f1",
    "recall_of_class",
    "rmse",
    "softmax",
    "spherical_variogram",
    "split_by_run",
    "train_test_split",
    "weighted_f1",
]
