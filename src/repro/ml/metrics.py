"""Evaluation metrics used throughout the paper.

Regression: MAE and RMSE (Tables 4, 8, 9, 10).  Classification: weighted
average F1 score (the paper's headline metric), per-class recall (reported
for the low-throughput class), accuracy, and confusion matrices.
"""

from __future__ import annotations

import numpy as np


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("metrics need at least one sample")


def mae(y_true, y_pred) -> float:
    """Mean absolute error (the paper's "MAE"/"Mean Average Error")."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_same_length(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_same_length(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mse(y_true, y_pred) -> float:
    """Mean squared error (the training loss of both model families)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_same_length(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts[i, j] = samples with true label i predicted as label j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _check_same_length(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(
    y_true, y_pred, labels=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (precision, recall, f1, support) arrays.

    Empty classes get 0 for all three scores (sklearn's zero_division=0).
    """
    if labels is None:
        labels = np.unique(np.concatenate([np.asarray(y_true),
                                           np.asarray(y_pred)]))
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    tp = np.diag(cm).astype(float)
    predicted = cm.sum(axis=0).astype(float)
    actual = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1, actual.astype(int)


def weighted_f1(y_true, y_pred, labels=None) -> float:
    """Support-weighted average F1 (the paper's "weighted average F1")."""
    _, _, f1, support = precision_recall_f1(y_true, y_pred, labels=labels)
    total = support.sum()
    if total == 0:
        raise ValueError("no samples")
    return float(np.sum(f1 * support) / total)


def macro_f1(y_true, y_pred, labels=None) -> float:
    """Unweighted mean of per-class F1 scores."""
    _, _, f1, _ = precision_recall_f1(y_true, y_pred, labels=labels)
    return float(f1.mean())


def recall_of_class(y_true, y_pred, target_label) -> float:
    """Recall of one class (the paper tracks the low-throughput class).

    Returns NaN when the class never occurs in ``y_true``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _check_same_length(y_true, y_pred)
    actual = y_true == target_label
    if not actual.any():
        return float("nan")
    return float(np.mean(y_pred[actual] == target_label))


def accuracy(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _check_same_length(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def error_reduction_factor(baseline_error: float, model_error: float) -> float:
    """How many times smaller the model's error is vs a baseline.

    The paper's "1.37x to 4.84x reduction in prediction error".
    """
    if model_error <= 0:
        raise ValueError("model error must be positive")
    return baseline_error / model_error
