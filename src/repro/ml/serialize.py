"""JSON-serializable persistence for the tree-based models.

The paper envisions UEs *downloading* throughput maps "augmented with the
ML models" (Sec. 1).  That needs models that serialize compactly without
pickle: this module round-trips :class:`~repro.ml.gbdt.GBDTRegressor` and
:class:`~repro.ml.gbdt.GBDTClassifier` (binner edges + tree node arrays +
boosting metadata) through plain dicts / JSON strings.
"""

from __future__ import annotations

import json

import numpy as np

from repro.ml.gbdt import GBDTClassifier, GBDTRegressor
from repro.ml.preprocessing import LabelEncoder
from repro.ml.tree import FeatureBinner, HistogramTree, TreeParams, _Node

FORMAT_VERSION = 1


def _tree_to_dict(tree: HistogramTree) -> dict:
    return {
        "n_outputs": tree.n_outputs,
        "feature_gain": tree.feature_gain_.tolist(),
        "nodes": [
            {
                "f": n.feature,
                "t": n.threshold_bin,
                "l": n.left,
                "r": n.right,
                "v": np.asarray(n.value).tolist(),
                "n": n.n_samples,
            }
            for n in tree.nodes
        ],
    }


def _tree_from_dict(data: dict, params: TreeParams) -> HistogramTree:
    tree = HistogramTree(params)
    tree.n_outputs = int(data["n_outputs"])
    tree.feature_gain_ = np.asarray(data["feature_gain"], dtype=float)
    tree.nodes = [
        _Node(
            feature=int(n["f"]),
            threshold_bin=int(n["t"]),
            left=int(n["l"]),
            right=int(n["r"]),
            value=np.asarray(n["v"], dtype=float),
            n_samples=int(n["n"]),
        )
        for n in data["nodes"]
    ]
    return tree


def _binner_to_dict(binner: FeatureBinner) -> dict:
    return {
        "max_bins": binner.max_bins,
        "edges": [e.tolist() for e in binner.edges_],
    }


def _binner_from_dict(data: dict) -> FeatureBinner:
    binner = FeatureBinner(max_bins=int(data["max_bins"]))
    binner.edges_ = [np.asarray(e, dtype=float) for e in data["edges"]]
    return binner


_COMMON_HYPERPARAMS = (
    "n_estimators", "learning_rate", "max_depth", "min_samples_leaf",
    "subsample", "reg_lambda", "max_bins", "random_state",
)


def gbdt_to_dict(model: GBDTRegressor | GBDTClassifier) -> dict:
    """Serialize a fitted GBDT model to a JSON-safe dict."""
    if model._binner is None:
        raise ValueError("model must be fitted before serialization")
    out = {
        "format_version": FORMAT_VERSION,
        "kind": ("classifier" if isinstance(model, GBDTClassifier)
                 else "regressor"),
        "hyperparams": {k: getattr(model, k) for k in _COMMON_HYPERPARAMS},
        "n_features": model.n_features_,
        "binner": _binner_to_dict(model._binner),
        "trees": [_tree_to_dict(t) for t in model._trees],
    }
    if isinstance(model, GBDTClassifier):
        out["classes"] = model.encoder_.classes_.tolist()
        out["base_logits"] = model.base_logits_.tolist()
    else:
        out["base_score"] = model.base_score_
    telemetry = getattr(model, "fit_telemetry_", None)
    if telemetry is not None:
        # Training telemetry (fit wall clock, rounds completed, final
        # train loss) travels with the model so deployed bundles stay
        # attributable to their training run.
        out["telemetry"] = dict(telemetry)
    return out


def gbdt_from_dict(data: dict) -> GBDTRegressor | GBDTClassifier:
    """Reconstruct a fitted GBDT model from :func:`gbdt_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    cls = GBDTClassifier if data["kind"] == "classifier" else GBDTRegressor
    model = cls(**data["hyperparams"])
    model.n_features_ = int(data["n_features"])
    model._binner = _binner_from_dict(data["binner"])
    params = model._tree_params()
    model._trees = [_tree_from_dict(t, params) for t in data["trees"]]
    if data["kind"] == "classifier":
        model.encoder_ = LabelEncoder()
        model.encoder_.classes_ = np.asarray(data["classes"])
        model.base_logits_ = np.asarray(data["base_logits"], dtype=float)
    else:
        model.base_score_ = float(data["base_score"])
    if "telemetry" in data:
        model.fit_telemetry_ = dict(data["telemetry"])
    return model


def gbdt_to_json(model, **json_kwargs) -> str:
    return json.dumps(gbdt_to_dict(model), **json_kwargs)


def gbdt_from_json(payload: str):
    return gbdt_from_dict(json.loads(payload))
