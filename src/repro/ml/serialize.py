"""JSON-serializable persistence for the tree-based models.

The paper envisions UEs *downloading* throughput maps "augmented with the
ML models" (Sec. 1).  That needs models that serialize compactly without
pickle: this module round-trips the GBDT family
(:class:`~repro.ml.gbdt.GBDTRegressor` / ``GBDTClassifier``), the random
forests (:class:`~repro.ml.forest.RandomForestRegressor` /
``RandomForestClassifier``), :class:`~repro.ml.preprocessing.StandardScaler`
and :class:`~repro.ml.preprocessing.PredictionPipeline` (scaler + model)
through plain dicts / JSON strings.

:func:`model_to_dict` / :func:`model_from_dict` (and their ``_json``
twins) dispatch on the concrete type / the payload's ``kind`` tag; the
older ``gbdt_*`` entry points remain for existing callers.  The serving
layer (``repro.serve``) builds its on-disk model registry on these.
"""

from __future__ import annotations

import json

import numpy as np

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import (
    GBDTClassifier,
    GBDTQuantileRegressor,
    GBDTRegressor,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    PredictionPipeline,
    StandardScaler,
)
from repro.ml.tree import FeatureBinner, HistogramTree, TreeParams, _Node

FORMAT_VERSION = 1


def _tree_to_dict(tree: HistogramTree) -> dict:
    return {
        "n_outputs": tree.n_outputs,
        "feature_gain": tree.feature_gain_.tolist(),
        "nodes": [
            {
                "f": n.feature,
                "t": n.threshold_bin,
                "l": n.left,
                "r": n.right,
                "v": np.asarray(n.value).tolist(),
                "n": n.n_samples,
            }
            for n in tree.nodes
        ],
    }


def _tree_from_dict(data: dict, params: TreeParams) -> HistogramTree:
    tree = HistogramTree(params)
    tree.n_outputs = int(data["n_outputs"])
    tree.feature_gain_ = np.asarray(data["feature_gain"], dtype=float)
    tree.nodes = [
        _Node(
            feature=int(n["f"]),
            threshold_bin=int(n["t"]),
            left=int(n["l"]),
            right=int(n["r"]),
            value=np.asarray(n["v"], dtype=float),
            n_samples=int(n["n"]),
        )
        for n in data["nodes"]
    ]
    return tree


def _binner_to_dict(binner: FeatureBinner) -> dict:
    return {
        "max_bins": binner.max_bins,
        "edges": [e.tolist() for e in binner.edges_],
    }


def _binner_from_dict(data: dict) -> FeatureBinner:
    binner = FeatureBinner(max_bins=int(data["max_bins"]))
    binner.edges_ = [np.asarray(e, dtype=float) for e in data["edges"]]
    return binner


_COMMON_HYPERPARAMS = (
    "n_estimators", "learning_rate", "max_depth", "min_samples_leaf",
    "subsample", "reg_lambda", "max_bins", "random_state",
)


def gbdt_to_dict(model) -> dict:
    """Serialize a fitted GBDT model to a JSON-safe dict."""
    if model._binner is None:
        raise ValueError("model must be fitted before serialization")
    if isinstance(model, GBDTClassifier):
        kind = "classifier"
    elif isinstance(model, GBDTQuantileRegressor):
        kind = "quantile_regressor"
    else:
        kind = "regressor"
    out = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "hyperparams": {k: getattr(model, k) for k in _COMMON_HYPERPARAMS},
        "n_features": model.n_features_,
        "binner": _binner_to_dict(model._binner),
        "trees": [_tree_to_dict(t) for t in model._trees],
    }
    if isinstance(model, GBDTClassifier):
        out["classes"] = model.encoder_.classes_.tolist()
        out["base_logits"] = model.base_logits_.tolist()
    else:
        out["base_score"] = model.base_score_
    if isinstance(model, GBDTQuantileRegressor):
        out["hyperparams"]["quantile"] = model.quantile
        # Per-tree refit leaf values (indexed by node id); the trees'
        # own leaf values only carry the split structure.
        out["leaf_values"] = [lv.tolist() for lv in model._leaf_values]
    telemetry = getattr(model, "fit_telemetry_", None)
    if telemetry is not None:
        # Training telemetry (fit wall clock, rounds completed, final
        # train loss) travels with the model so deployed bundles stay
        # attributable to their training run.
        out["telemetry"] = dict(telemetry)
    baseline = getattr(model, "drift_baseline_", None)
    if baseline is not None:
        # Frozen training-time prediction statistics; the serving drift
        # monitor compares its live window against these.
        out["drift_baseline"] = dict(baseline)
    view = getattr(model, "feature_view_", None)
    if view is not None:
        # The feature-view stamp (repro.fstore.attach_view): which view,
        # version and fingerprint the model was trained against, so the
        # registry can reject a model/feature-version mismatch at load.
        out["feature_view"] = dict(view)
    return out


def gbdt_from_dict(data: dict) -> GBDTRegressor | GBDTClassifier:
    """Reconstruct a fitted GBDT model from :func:`gbdt_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    cls = {"classifier": GBDTClassifier,
           "quantile_regressor": GBDTQuantileRegressor}.get(
        data["kind"], GBDTRegressor)
    model = cls(**data["hyperparams"])
    model.n_features_ = int(data["n_features"])
    model._binner = _binner_from_dict(data["binner"])
    params = model._tree_params()
    model._trees = [_tree_from_dict(t, params) for t in data["trees"]]
    if data["kind"] == "classifier":
        model.encoder_ = LabelEncoder()
        model.encoder_.classes_ = np.asarray(data["classes"])
        model.base_logits_ = np.asarray(data["base_logits"], dtype=float)
    else:
        model.base_score_ = float(data["base_score"])
    if data["kind"] == "quantile_regressor":
        model._leaf_values = [np.asarray(lv, dtype=float)
                              for lv in data["leaf_values"]]
    if "telemetry" in data:
        model.fit_telemetry_ = dict(data["telemetry"])
    if "drift_baseline" in data:
        model.drift_baseline_ = dict(data["drift_baseline"])
    if "feature_view" in data:
        model.feature_view_ = dict(data["feature_view"])
    return model


def gbdt_to_json(model, **json_kwargs) -> str:
    return json.dumps(gbdt_to_dict(model), **json_kwargs)


def gbdt_from_json(payload: str):
    return gbdt_from_dict(json.loads(payload))


# --------------------------------------------------------------------------- #
# Random forests
# --------------------------------------------------------------------------- #

_FOREST_HYPERPARAMS = (
    "n_estimators", "max_depth", "min_samples_leaf", "max_features",
    "bootstrap", "max_bins", "random_state",
)


def forest_to_dict(
    model: RandomForestRegressor | RandomForestClassifier,
) -> dict:
    """Serialize a fitted random forest to a JSON-safe dict."""
    if model._binner is None:
        raise ValueError("model must be fitted before serialization")
    out = {
        "format_version": FORMAT_VERSION,
        "kind": ("rf_classifier"
                 if isinstance(model, RandomForestClassifier)
                 else "rf_regressor"),
        "hyperparams": {k: getattr(model, k) for k in _FOREST_HYPERPARAMS},
        "n_features": model.n_features_,
        "binner": _binner_to_dict(model._binner),
        "trees": [_tree_to_dict(t) for t in model._trees],
    }
    if isinstance(model, RandomForestClassifier):
        out["classes"] = model.encoder_.classes_.tolist()
    telemetry = getattr(model, "fit_telemetry_", None)
    if telemetry is not None:
        out["telemetry"] = dict(telemetry)
    baseline = getattr(model, "drift_baseline_", None)
    if baseline is not None:
        out["drift_baseline"] = dict(baseline)
    view = getattr(model, "feature_view_", None)
    if view is not None:
        out["feature_view"] = dict(view)
    return out


def forest_from_dict(
    data: dict,
) -> RandomForestRegressor | RandomForestClassifier:
    """Reconstruct a fitted forest from :func:`forest_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    cls = (RandomForestClassifier if data["kind"] == "rf_classifier"
           else RandomForestRegressor)
    model = cls(**data["hyperparams"])
    model.n_features_ = int(data["n_features"])
    model._binner = _binner_from_dict(data["binner"])
    params = model._params()
    model._trees = [_tree_from_dict(t, params) for t in data["trees"]]
    if data["kind"] == "rf_classifier":
        model.encoder_ = LabelEncoder()
        model.encoder_.classes_ = np.asarray(data["classes"])
    if "telemetry" in data:
        model.fit_telemetry_ = dict(data["telemetry"])
    if "drift_baseline" in data:
        model.drift_baseline_ = dict(data["drift_baseline"])
    if "feature_view" in data:
        model.feature_view_ = dict(data["feature_view"])
    return model


# --------------------------------------------------------------------------- #
# Preprocessing: scaler and pipeline
# --------------------------------------------------------------------------- #


def scaler_to_dict(scaler: StandardScaler) -> dict:
    if scaler.mean_ is None:
        raise ValueError("scaler must be fitted before serialization")
    return {
        "format_version": FORMAT_VERSION,
        "kind": "standard_scaler",
        "mean": scaler.mean_.tolist(),
        "scale": scaler.scale_.tolist(),
    }


def scaler_from_dict(data: dict) -> StandardScaler:
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(data["mean"], dtype=float)
    scaler.scale_ = np.asarray(data["scale"], dtype=float)
    return scaler


def pipeline_to_dict(pipeline: PredictionPipeline) -> dict:
    out = {
        "format_version": FORMAT_VERSION,
        "kind": "pipeline",
        "scaler": (scaler_to_dict(pipeline.scaler)
                   if pipeline.scaler is not None else None),
        "model": model_to_dict(pipeline.model),
    }
    view = getattr(pipeline, "feature_view_", None)
    if view is not None:
        out["feature_view"] = dict(view)
    return out


def pipeline_from_dict(data: dict) -> PredictionPipeline:
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {data.get('format_version')!r}"
        )
    scaler = (scaler_from_dict(data["scaler"])
              if data.get("scaler") is not None else None)
    pipeline = PredictionPipeline(model_from_dict(data["model"]),
                                  scaler=scaler)
    if "feature_view" in data:
        pipeline.feature_view_ = dict(data["feature_view"])
    return pipeline


# --------------------------------------------------------------------------- #
# Generic dispatch (what the model registry speaks)
# --------------------------------------------------------------------------- #

#: ``kind`` tag -> loader.  "regressor"/"classifier" are the original
#: GBDT tags, kept verbatim so pre-existing payloads stay loadable.
_LOADERS = {
    "regressor": gbdt_from_dict,
    "classifier": gbdt_from_dict,
    "quantile_regressor": gbdt_from_dict,
    "rf_regressor": forest_from_dict,
    "rf_classifier": forest_from_dict,
    "standard_scaler": scaler_from_dict,
    "pipeline": pipeline_from_dict,
}


def model_to_dict(model) -> dict:
    """Serialize any supported model/preprocessor to a tagged dict."""
    if isinstance(model, (GBDTRegressor, GBDTClassifier,
                          GBDTQuantileRegressor)):
        return gbdt_to_dict(model)
    if isinstance(model, (RandomForestRegressor, RandomForestClassifier)):
        return forest_to_dict(model)
    if isinstance(model, StandardScaler):
        return scaler_to_dict(model)
    if isinstance(model, PredictionPipeline):
        return pipeline_to_dict(model)
    raise TypeError(
        f"cannot serialize {type(model).__name__}; supported: GBDT, "
        "RandomForest, StandardScaler, PredictionPipeline"
    )


def model_from_dict(data: dict):
    """Reconstruct any :func:`model_to_dict` payload via its ``kind`` tag."""
    kind = data.get("kind")
    loader = _LOADERS.get(kind)
    if loader is None:
        raise ValueError(
            f"unknown model kind {kind!r}; expected one of "
            f"{sorted(_LOADERS)}"
        )
    return loader(data)


def model_to_json(model, **json_kwargs) -> str:
    return json.dumps(model_to_dict(model), **json_kwargs)


def model_from_json(payload: str):
    return model_from_dict(json.loads(payload))
