"""Continuous-learning loop costs: warm-start refit and shadow mirroring.

Two claims from docs/continuous_learning.md, measured and asserted:

* **Warm-start refit is >= 3x faster than a cold retrain at equal
  final rounds.**  A 100k-row drifted stream arrives; the incumbent
  (68 rounds) appends 12 warm rounds vs a from-scratch 80-round fit of
  the same family on the same stream.  Both paths are timed end to end
  over what they would actually run in the pipeline: the warm path
  re-bins with the incumbent's frozen binner and pays the
  initial-residual pass over the existing trees; the cold path re-fits
  a binner and every round.
* **Shadow mirroring costs < 10% p99 latency at sub-saturation load.**
  Open-loop steady arrivals against a 4-shard gateway, with and
  without a mirror of the same model installed; the mirror batches big
  and slow (``shadow_max_wait_ms``) and settles comparisons at drain,
  so the candidate steals almost no scheduler time from the serving
  path.  Each arm's statistic is the best p99 across interleaved
  trials: co-tenant interference inflates tails on both arms at
  random, and the per-trial minimum is the estimator that cancels it.

Gauges land in ``benchmarks/results/obs_metrics.json``:
``rollout.bench.warm_refit_s`` / ``.cold_retrain_s`` /
``.refit_speedup`` / ``.warm_mae`` / ``.cold_mae`` /
``.shadow_p99_off_ms`` / ``.shadow_p99_on_ms`` / ``.shadow_p99_ratio``.
"""

import asyncio
import json
import time

import numpy as np

from repro import obs
from repro.gateway import (
    AsyncGateway,
    GatewayConfig,
    ScheduledRequests,
    steady,
)
from repro.ml.gbdt import GBDTRegressor
from repro.ml.serialize import model_from_dict, model_to_dict
from repro.ml.tree import FeatureBinner

from _bench_utils import emit, format_table

# -- warm vs cold refit ----------------------------------------------------- #

N_ROWS = 100_000
N_FEATURES = 8
CHUNK = 8_192
BASE_ROUNDS = 68
REFIT_ROUNDS = 12
FINAL_ROUNDS = BASE_ROUNDS + REFIT_ROUNDS
MIN_SPEEDUP = 3.0

# -- shadow mirroring ------------------------------------------------------- #

N_SHARDS = 4
RATE_HZ = 250.0
HORIZON_S = 3.0
TRIALS = 5
MAX_P99_RATIO = 1.10
SERVE_TREES = 15


def _throughput(X: np.ndarray, rng, *, drifted: bool) -> np.ndarray:
    """Synthetic mmWave-ish throughput; drift is a seasonal attenuation
    (level drop + a steeper obstruction penalty), the shift the loop's
    refit path exists to absorb."""
    base = 400.0 + 120.0 * np.sin(X[:, 0]) + 60.0 * X[:, 1] \
        - 45.0 * (X[:, 2] > 0.5)
    if drifted:
        base = base - 80.0 - 25.0 * (X[:, 3] > 0.0)
    return base + rng.normal(0.0, 30.0, len(X))


def _chunks(X, y, binner):
    return [(binner.transform(X[i:i + CHUNK]), y[i:i + CHUNK])
            for i in range(0, len(y), CHUNK)]


def _regressor(n_estimators: int) -> GBDTRegressor:
    return GBDTRegressor(n_estimators=n_estimators, max_depth=4,
                         learning_rate=0.1, random_state=0)


def test_warm_start_refit_speedup(capsys):
    rng = np.random.default_rng(2020)
    X_base = rng.normal(size=(N_ROWS, N_FEATURES))
    y_base = _throughput(X_base, rng, drifted=False)
    X_drift = rng.normal(size=(N_ROWS, N_FEATURES))
    y_drift = _throughput(X_drift, rng, drifted=True)
    X_hold = rng.normal(size=(20_000, N_FEATURES))
    y_hold = _throughput(X_hold, rng, drifted=True)

    # The incumbent: trained before the drift, binner frozen at fit.
    binner = FeatureBinner(256).fit(X_base[:20_000])
    incumbent = _regressor(BASE_ROUNDS)
    incumbent.fit_binned_stream(
        lambda: iter(_chunks(X_base, y_base, binner)), binner)

    # Warm path: what refit_from_store runs -- re-bin the drifted
    # stream with the *frozen* binner, append REFIT_ROUNDS rounds.
    warm = model_from_dict(model_to_dict(incumbent))
    t0 = time.perf_counter()
    warm_chunks = _chunks(X_drift, y_drift, binner)
    warm.fit_more_binned_stream(REFIT_ROUNDS, lambda: iter(warm_chunks))
    warm_s = time.perf_counter() - t0

    # Cold path: the escalation fallback -- new binner, full rounds.
    t0 = time.perf_counter()
    cold_binner = FeatureBinner(256).fit(X_drift[:20_000])
    cold_chunks = _chunks(X_drift, y_drift, cold_binner)
    cold = _regressor(FINAL_ROUNDS)
    cold.fit_binned_stream(lambda: iter(cold_chunks), cold_binner)
    cold_s = time.perf_counter() - t0

    assert len(warm._trees) == len(cold._trees) == FINAL_ROUNDS
    speedup = cold_s / warm_s
    warm_mae = float(np.mean(np.abs(warm.predict(X_hold) - y_hold)))
    cold_mae = float(np.mean(np.abs(cold.predict(X_hold) - y_hold)))

    obs.set_gauge("rollout.bench.warm_refit_s", round(warm_s, 3))
    obs.set_gauge("rollout.bench.cold_retrain_s", round(cold_s, 3))
    obs.set_gauge("rollout.bench.refit_speedup", round(speedup, 2))
    obs.set_gauge("rollout.bench.warm_mae", round(warm_mae, 2))
    obs.set_gauge("rollout.bench.cold_mae", round(cold_mae, 2))

    table = format_table(
        ["path", "rounds trained", "wall s", "drifted MAE"],
        [["warm (fit_more)", f"{REFIT_ROUNDS}", f"{warm_s:.2f}",
          f"{warm_mae:.1f}"],
         ["cold (refit all)", f"{FINAL_ROUNDS}", f"{cold_s:.2f}",
          f"{cold_mae:.1f}"]],
    )
    emit("rollout_refit",
         table + f"\n{N_ROWS} drifted rows streamed in {CHUNK}-row "
         f"chunks; speedup {speedup:.1f}x (gate: >= {MIN_SPEEDUP:.0f}x)",
         capsys)

    assert speedup >= MIN_SPEEDUP, (
        f"warm-start refit only {speedup:.2f}x faster than cold retrain"
    )
    # The cheap path must also actually absorb the drift.
    assert warm_mae <= 1.5 * cold_mae


def _serve_p99_ms(model, shadow_model, lines) -> float:
    config = GatewayConfig(shards=N_SHARDS, queue_depth=512,
                           max_batch_size=64, max_wait_ms=0.5,
                           telemetry=False)
    gateway = AsyncGateway(model, version=1, config=config)
    if shadow_model is not None:
        gateway.set_shadow(shadow_model, 2)
    schedule = steady(RATE_HZ, HORIZON_S, seed=2020)
    sent = lines[:len(schedule)]
    latencies: list[float] = []

    async def main():
        loop = asyncio.get_running_loop()
        arrivals: list[float] = []

        async def line_gen():
            async for _t_due, line in ScheduledRequests(schedule, sent):
                arrivals.append(loop.time())
                yield line

        responses: list[str] = []

        async def write(text):
            done = loop.time()
            latencies.append(done - arrivals[len(responses)])
            responses.append(text)

        await gateway.handle_connection(line_gen(), write)
        assert len(responses) == len(sent)

    try:
        asyncio.run(main())
        if shadow_model is not None:
            report = gateway.shadow_report()
            assert report["compared"] == len(sent)  # mirror kept up
    finally:
        gateway.close()
    return float(np.quantile(1e3 * np.asarray(latencies), 0.99))


def test_shadow_mirroring_p99_overhead(capsys):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(4_000, N_FEATURES))
    y = _throughput(X, rng, drifted=False)
    model = GBDTRegressor(n_estimators=SERVE_TREES, max_depth=4,
                          random_state=0).fit(X, y)
    shadow = model_from_dict(model_to_dict(model))
    lines = [json.dumps({"id": i, "key": f"ue-{i % 23}",
                         "features": list(map(float, X[i % len(X)]))})
             for i in range(int(RATE_HZ * HORIZON_S) + 64)]

    # Warm both paths, then interleave trials so machine noise lands on
    # both arms evenly.  The per-arm statistic is the *minimum* p99
    # across trials: a short window's p99 is one-sided noisy (container
    # jitter only ever inflates it), so min-of-trials estimates each
    # arm's inherent tail.
    _serve_p99_ms(model, None, lines)
    _serve_p99_ms(model, shadow, lines)
    off, on = [], []
    for _ in range(TRIALS):
        off.append(_serve_p99_ms(model, None, lines))
        on.append(_serve_p99_ms(model, shadow, lines))
    p99_off = float(min(off))
    p99_on = float(min(on))
    ratio = p99_on / p99_off if p99_off > 0 else float("inf")

    obs.set_gauge("rollout.bench.shadow_p99_off_ms", round(p99_off, 3))
    obs.set_gauge("rollout.bench.shadow_p99_on_ms", round(p99_on, 3))
    obs.set_gauge("rollout.bench.shadow_p99_ratio", round(ratio, 3))

    table = format_table(
        ["configuration", "p99 ms (best of trials)", "ratio"],
        [["shadow off", f"{p99_off:.2f}", "1.00"],
         ["shadow mirroring on", f"{p99_on:.2f}", f"{ratio:.2f}"]],
    )
    emit("rollout_shadow_overhead",
         table + f"\n{N_SHARDS} shards, steady open-loop "
         f"{RATE_HZ:.0f} Hz x {HORIZON_S:.0f}s, {TRIALS} interleaved "
         f"trials per arm (gate: ratio < {MAX_P99_RATIO:.2f})",
         capsys)

    assert ratio < MAX_P99_RATIO, (
        f"shadow mirroring p99 overhead {100 * (ratio - 1):.1f}% "
        f"exceeds the {100 * (MAX_P99_RATIO - 1):.0f}% budget"
    )
