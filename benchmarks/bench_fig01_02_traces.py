"""Figs. 1-2: sample 5G throughput traces under walking and driving.

Regenerates the paper's motivating traces: per-second throughput while
walking (Fig. 1) and driving (Fig. 2), showing swings between ~0 and
~2 Gbps with handoff-induced collapses.
"""

import numpy as np

from repro.env.areas import build_loop
from repro.mobility.models import DrivingModel, WalkingModel
from repro.sim.simulator import simulate_pass

from _bench_utils import emit, format_table


def _trace(model, duration, seed, mode):
    env = build_loop()
    rng = np.random.default_rng(seed)
    recs = simulate_pass(env, env.trajectories["LOOP-CW"], model,
                         run_id=0, rng=rng, mobility_mode=mode,
                         duration_s=duration)
    return np.asarray([r.throughput_mbps for r in recs]), recs


def test_fig01_02_sample_traces(benchmark, capsys):
    walking, _ = benchmark.pedantic(
        lambda: _trace(WalkingModel(), 600, 1, "walking"),
        rounds=1, iterations=1,
    )
    driving, drecs = _trace(
        DrivingModel(traffic_lights=(0.0, 400.0, 650.0, 1050.0)),
        240, 2, "driving",
    )

    rows = []
    for name, t in (("walking (Fig.1)", walking), ("driving (Fig.2)", driving)):
        rows.append([
            name, len(t), float(t.max()), float(np.median(t)),
            float(np.percentile(t, 10)), float((t < 10.0).mean() * 100),
        ])
    table = format_table(
        ["trace", "seconds", "peak Mbps", "median", "p10", "% near-zero"],
        rows,
    )
    # Downsampled series for eyeballing the swings.
    series = "\nwalking trace (every 20 s): " + " ".join(
        f"{v:.0f}" for v in walking[::20]
    )
    series += "\ndriving trace (every 10 s): " + " ".join(
        f"{v:.0f}" for v in driving[::10]
    )
    emit("fig01_02_traces", table + series, capsys)

    # Paper shape: swings from ~2 Gbps to near zero within one trace.
    assert walking.max() > 1200.0
    assert (walking < 10.0).any()
    assert driving.max() > 800.0
    assert (driving < 10.0).any()
    # Handoffs punctuate the traces.
    assert sum(r.vertical_handoff for r in drecs) >= 2
