"""Figs. 9-10: mobility direction.

Fig. 9: NB and SB throughput maps over the same Airport corridor are
highly different.  Fig. 10: Spearman coefficients between repeated traces
jump when grouped by direction (paper: NB 0.61, SB 0.74, cross 0.021).
"""

import numpy as np

from repro.analysis.stats import direction_spearman_analysis
from repro.core.maps import directional_throughput_map, map_divergence

from _bench_utils import emit, format_table


def _traces_by_direction(table):
    moving = table.filter(np.asarray(
        [m == "walking" for m in table["mobility_mode"]]
    ))
    out = {}
    for key, sub in moving.groupby("trajectory").items():
        traces = [
            np.asarray(run.sort_by("timestamp_s")["throughput_mbps"],
                       dtype=float)
            for run in sub.groupby("run_id").values()
        ]
        out[str(key[0])] = [t for t in traces if len(t) >= 50]
    return out


def test_fig9_direction_maps(benchmark, capsys, datasets):
    table = datasets["Airport"]
    nb = benchmark.pedantic(
        lambda: directional_throughput_map(table, 0.0, cell_size=2.0),
        rounds=1, iterations=1,
    )
    sb = directional_throughput_map(table, 180.0, cell_size=2.0)
    divergence = map_divergence(nb, sb)
    nb_mean = float(np.mean([c.value for c in nb]))

    text = (f"NB cells: {len(nb)}  SB cells: {len(sb)}\n"
            f"mean |NB - SB| over shared cells: {divergence:.0f} Mbps\n"
            f"NB mean cell throughput: {nb_mean:.0f} Mbps")
    emit("fig09_direction_maps", text, capsys)

    # The two directional maps must differ substantially (Fig. 9).
    assert divergence > 0.3 * nb_mean


def test_fig10_direction_spearman(benchmark, capsys, datasets):
    traces = _traces_by_direction(datasets["Airport"])
    result = benchmark.pedantic(
        lambda: direction_spearman_analysis(traces), rounds=1, iterations=1
    )
    rows = [[k, f"{v:.3f}"] for k, v in sorted(result.items())]
    table = format_table(["group", "mean Spearman"], rows)
    table += "\n(paper: NB 0.61, SB 0.74, cross-direction 0.021)"
    emit("fig10_direction_spearman", table, capsys)

    # Same-direction traces track each other; cross-direction do not.
    assert result["NB"] > 0.5
    assert result["SB"] > 0.5
    assert result["cross"] < min(result["NB"], result["SB"]) - 0.3
