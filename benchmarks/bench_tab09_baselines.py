"""Table 9: Lumos5G vs baselines (KNN, RF, OK, HM) on the Global dataset.

Regression (MAE|RMSE) and classification (weighted F1) per feature group,
plus the history-based Harmonic Mean row and the paper's headline
error-reduction factor.
"""

import numpy as np

from repro.ml.metrics import error_reduction_factor

from _bench_utils import emit, format_table

SPECS = ["L", "L+M", "T+M", "L+M+C", "T+M+C"]
MODELS = ["knn", "rf", "ok", "gdbt", "seq2seq"]


def test_table9_baseline_comparison(benchmark, capsys, framework, results):
    benchmark.pedantic(
        lambda: framework.evaluate_regression("Global", "L", "knn"),
        rounds=1, iterations=1,
    )

    reg_rows, clf_rows = [], []
    reg = {}
    for spec in SPECS:
        reg_row, clf_row = [spec], [spec]
        for model in MODELS:
            if model == "ok" and spec != "L":
                reg_row.append("NA")
                clf_row.append("NA")
                continue
            r = results.regression("Global", spec, model)
            c = results.classification("Global", spec, model)
            reg[(spec, model)] = r
            reg_row.append(f"{r.mae:.0f}|{r.rmse:.0f}")
            clf_row.append(f"{c.weighted_f1:.2f}")
        reg_rows.append(reg_row)
        clf_rows.append(clf_row)

    hm = results.regression("Global", "L", "hm")
    hm_clf = results.classification("Global", "L", "hm")

    text = ("Regression (MAE|RMSE, Mbps)\n"
            + format_table(["features"] + MODELS, reg_rows)
            + "\n\nClassification (weighted F1)\n"
            + format_table(["features"] + MODELS, clf_rows)
            + f"\n\nHarmonic Mean (history-only): "
              f"MAE|RMSE = {hm.mae:.0f}|{hm.rmse:.0f}, "
              f"F1 = {hm_clf.weighted_f1:.2f}")

    # Headline: error reduction of the best framework model vs baselines.
    factors = []
    for spec in SPECS:
        best = min(reg[(spec, "gdbt")].mae, reg[(spec, "seq2seq")].mae)
        for baseline in ("knn", "rf"):
            factors.append(
                error_reduction_factor(reg[(spec, baseline)].mae, best)
            )
    factors.append(error_reduction_factor(reg[("L", "ok")].mae,
                                          min(reg[("L", "gdbt")].mae,
                                              reg[("L", "seq2seq")].mae)))
    text += (f"\nerror-reduction factors vs baselines: "
             f"{min(factors):.2f}x to {max(factors):.2f}x "
             f"(paper: 1.37x to 4.84x)")
    emit("tab09_baselines", text, capsys)

    # Paper shape: the framework's best model beats KNN and OK on every
    # feature group; overall reduction spans a >1.2x .. >2x band.
    for spec in SPECS:
        best = min(reg[(spec, "gdbt")].mae, reg[(spec, "seq2seq")].mae)
        assert best < reg[(spec, "knn")].mae
        assert best <= reg[(spec, "rf")].mae * 1.05
    assert max(factors) > 1.8
    assert min(factors) > 0.95
    # History alone (HM) cannot cope with mmWave swings.
    assert hm.rmse > reg[("L+M+C", "gdbt")].rmse
