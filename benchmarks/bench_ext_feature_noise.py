"""Extension (Sec. 8.1): sensitivity of the models to input inaccuracy.

The paper leaves "sensitivity of the models to inaccuracies in input
feature values" as future work.  This bench trains GDBT (T+M) once and
evaluates it under increasing test-time corruption of the mobility
features (position -> distance/angles are recomputed upstream of the
feature matrix here we corrupt the materialized features directly):
Gaussian noise on distance (meters) and on the angle encodings.
"""

import numpy as np

from repro.ml.gbdt import GBDTRegressor
from repro.ml.metrics import mae
from repro.ml.preprocessing import train_test_split

from _bench_utils import emit, format_table

NOISE_LEVELS = [0.0, 0.5, 1.0, 2.0, 4.0]  # multipliers of the base corruption
BASE_DIST_NOISE_M = 2.0
BASE_ANGLE_NOISE_DEG = 5.0


def _corrupt(X, names, level, rng):
    X = X.copy()
    names = list(names)
    for j, name in enumerate(names):
        if name == "ue_panel_distance":
            X[:, j] += rng.normal(0.0, BASE_DIST_NOISE_M * level, len(X))
            X[:, j] = np.maximum(X[:, j], 1.0)
        elif name == "positional_angle":
            X[:, j] += rng.normal(0.0, BASE_ANGLE_NOISE_DEG * level, len(X))
            X[:, j] = np.clip(X[:, j], 0.0, 180.0)
        elif name.endswith("_sin"):
            # Rotate the underlying angle, keeping the encoding on the
            # unit circle (its paired _cos column follows immediately).
            k = names.index(name[:-4] + "_cos")
            angle = np.arctan2(X[:, j], X[:, k])
            angle += rng.normal(
                0.0, np.radians(BASE_ANGLE_NOISE_DEG) * level, len(X)
            )
            X[:, j] = np.sin(angle)
            X[:, k] = np.cos(angle)
    return X


def test_ext_feature_noise_sensitivity(benchmark, capsys, framework):
    X, y, _, names = framework.design("Airport", "T+M")
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, rng=0)
    model = benchmark.pedantic(
        lambda: GBDTRegressor(n_estimators=120, max_depth=6,
                              learning_rate=0.1,
                              random_state=0).fit(X_tr, y_tr),
        rounds=1, iterations=1,
    )

    rng = np.random.default_rng(1)
    rows, errors = [], []
    for level in NOISE_LEVELS:
        err = mae(y_te, model.predict(_corrupt(X_te, names, level, rng)))
        errors.append(err)
        rows.append([f"{level:.1f}x "
                     f"({BASE_DIST_NOISE_M * level:.0f} m, "
                     f"{BASE_ANGLE_NOISE_DEG * level:.0f} deg)", err])
    table = format_table(["test-time corruption", "T+M GDBT MAE"], rows)
    emit("ext_feature_noise", table, capsys)

    # Error grows monotonically with corruption ...
    assert all(b >= a - 3.0 for a, b in zip(errors, errors[1:]))
    assert errors[-1] > 1.3 * errors[0]
    # ... and sensor-scale corruption (1x ~ GPS noise already present in
    # training) stays within ~2.5x of the clean error.  The steepness
    # beyond that answers the paper's open sensitivity question: the
    # models lean hard on accurate UE-panel distance.
    assert errors[1] < 2.5 * errors[0]
