"""Ablation: parallel-connection count (the paper uses 8 iPerf streams).

Runs the flow-level TCP simulation over a 1.5 Gbps mmWave-like path and
reports steady-state utilization per connection count, alongside the
closed-form aggregate model the main simulator uses.  The paper's
rationale -- a single TCP connection cannot saturate the 5G downlink --
must emerge from the AIMD + receive-window dynamics.
"""

from repro.net.flows import FlowLevelTcp
from repro.net.tcp import BulkTransferModel

from _bench_utils import emit, format_table

LINK_BPS = 1.5e9
FLOW_COUNTS = (1, 2, 4, 8, 16)


def test_ablation_tcp_parallelism(benchmark, capsys):
    flow_util = {}
    flow_util[8] = benchmark.pedantic(
        lambda: FlowLevelTcp(n_flows=8, rng_seed=0).utilization(
            LINK_BPS, seconds=6
        ),
        rounds=1, iterations=1,
    )
    for n in FLOW_COUNTS:
        if n not in flow_util:
            flow_util[n] = FlowLevelTcp(n_flows=n, rng_seed=0).utilization(
                LINK_BPS, seconds=6
            )

    rows = []
    for n in FLOW_COUNTS:
        closed_form = BulkTransferModel(
            parallel_connections=n
        ).aggregate_efficiency
        rows.append([n, f"{flow_util[n] * 100:.0f}%",
                     f"{closed_form * 100:.0f}%"])
    table = format_table(
        ["flows", "flow-level utilization", "closed-form model"], rows
    )
    table += "\n(1.5 Gbps bottleneck, 20 ms RTT, ~2 MB receive window)"
    emit("ablation_tcp_flows", table, capsys)

    # One connection cannot saturate the link; eight can (paper Sec. 3.1).
    assert flow_util[1] < 0.75
    assert flow_util[8] > 0.9
    # Both models agree on the qualitative story.
    assert BulkTransferModel(parallel_connections=1).aggregate_efficiency < 0.75
    assert BulkTransferModel(parallel_connections=8).aggregate_efficiency > 0.95
