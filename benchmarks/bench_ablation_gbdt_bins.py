"""Ablation: histogram bin count vs GDBT accuracy and training time.

Our GDBT uses LightGBM-style quantile-binned splits; this ablation shows
the accuracy/time trade-off that justifies the 256-bin default.
"""

import time

from repro.ml.gbdt import GBDTRegressor
from repro.ml.metrics import mae
from repro.ml.preprocessing import train_test_split

from _bench_utils import emit, format_table

BIN_COUNTS = [8, 32, 256]


def test_ablation_gbdt_bin_count(benchmark, capsys, framework):
    X, y, _, _ = framework.design("Airport", "L+M")
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, rng=0)

    def run(bins):
        t0 = time.perf_counter()
        model = GBDTRegressor(n_estimators=80, max_depth=6,
                              learning_rate=0.1, max_bins=bins,
                              random_state=0).fit(X_tr, y_tr)
        elapsed = time.perf_counter() - t0
        return mae(y_te, model.predict(X_te)), elapsed

    first = benchmark.pedantic(lambda: run(BIN_COUNTS[-1]),
                               rounds=1, iterations=1)
    outcomes = {BIN_COUNTS[-1]: first}
    for bins in BIN_COUNTS[:-1]:
        outcomes[bins] = run(bins)

    rows = [[bins, outcomes[bins][0], f"{outcomes[bins][1]:.1f}s"]
            for bins in BIN_COUNTS]
    table = format_table(["max_bins", "MAE (Mbps)", "fit time"], rows)
    emit("ablation_gbdt_bins", table, capsys)

    # Coarse binning (8 bins) visibly hurts; 32 -> 256 is diminishing.
    assert outcomes[8][0] > outcomes[256][0]
    gap_coarse = outcomes[8][0] - outcomes[32][0]
    gap_fine = outcomes[32][0] - outcomes[256][0]
    assert gap_coarse > gap_fine - 1.0
