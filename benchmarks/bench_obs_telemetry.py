"""repro.obs.telemetry overhead: what the windowed plane costs.

Mirrors ``bench_resil_overhead.py`` for the telemetry plane.  Replays
the same JSONL serve workload twice and records the results as obs
gauges so they land in ``benchmarks/results/obs_metrics.json``:

* ``obs.telemetry.serve_off_s``  -- ``ServeConfig(telemetry=False)``,
  no plane anywhere on the request path;
* ``obs.telemetry.serve_on_s``   -- the default dormant plane: windows
  fill and SLO/drift monitors evaluate once per bucket, but nothing
  alerts (the pure bookkeeping tax);
* ``obs.telemetry.serve_ratio``  -- on / off, asserted bounded.

A second micro-benchmark records the raw primitive throughput --
``WindowedHistogram.observe`` and ``TelemetryPlane.inc`` ops/s -- the
two calls the serve hot path performs per request.
"""

import io
import json
import time

import numpy as np

from repro import obs
from repro.obs.telemetry import TelemetryPlane, WindowedHistogram
from repro.serve import InferenceService, ServeConfig

from _bench_utils import emit, format_table

#: Rows replayed through each serving configuration.
N_ROWS = 2000


def _serve_run(model, lines, telemetry: bool) -> float:
    service = InferenceService(model, ServeConfig(
        max_batch_size=256, max_wait_ms=1.0, cache_size=0,
        telemetry=telemetry,
    ))
    t0 = time.perf_counter()
    stats = service.run_jsonl(lines, io.StringIO())
    wall_s = time.perf_counter() - t0
    assert stats.requests == len(lines) and stats.errors == 0
    assert (stats.telemetry is not None) == telemetry
    return wall_s


def test_telemetry_plane_overhead(framework, benchmark, capsys):
    model = framework.fit_regressor("Airport", "T+M")
    X, _, _, _ = framework.design("Airport", "T+M")
    reps = int(np.ceil(N_ROWS / len(X)))
    rows = np.tile(X, (reps, 1))[:N_ROWS]
    lines = [json.dumps({"id": i, "features": list(map(float, row))})
             for i, row in enumerate(rows)]

    # Warm both paths once so JIT-ish costs (imports, caches) are paid.
    _serve_run(model, lines[:64], telemetry=False)
    _serve_run(model, lines[:64], telemetry=True)

    off_s = benchmark.pedantic(
        lambda: _serve_run(model, lines, telemetry=False),
        rounds=1, iterations=1,
    )
    on_s = _serve_run(model, lines, telemetry=True)
    ratio = on_s / off_s if off_s > 0 else float("inf")

    obs.set_gauge("obs.telemetry.serve_off_s", round(off_s, 4))
    obs.set_gauge("obs.telemetry.serve_on_s", round(on_s, 4))
    obs.set_gauge("obs.telemetry.serve_ratio", round(ratio, 3))

    table = format_table(
        ["configuration", "wall clock ms", "ratio"],
        [["telemetry off", f"{off_s * 1e3:.1f}", "1.00"],
         ["telemetry on (dormant)", f"{on_s * 1e3:.1f}", f"{ratio:.2f}"]],
    )
    emit("obs_telemetry_overhead",
         table + f"\n{N_ROWS} JSONL requests per configuration", capsys)

    # A dormant plane is bookkeeping only; allow generous noise slack
    # (the resil bench uses the same bound for its dormant seams).
    assert ratio < 3.0


def test_telemetry_primitive_throughput(benchmark, capsys):
    n = 50_000

    hist = WindowedHistogram("bench.latency_s", 60.0, 6)

    def observe_loop():
        for i in range(n):
            hist.observe(i * 1e-6)

    t0 = time.perf_counter()
    benchmark.pedantic(observe_loop, rounds=1, iterations=1)
    observe_ops = n / (time.perf_counter() - t0)

    plane = TelemetryPlane()
    t0 = time.perf_counter()
    for _ in range(n):
        plane.inc("bench.requests_total")
    inc_ops = n / (time.perf_counter() - t0)

    obs.set_gauge("obs.telemetry.observe_ops_per_s", round(observe_ops))
    obs.set_gauge("obs.telemetry.inc_ops_per_s", round(inc_ops))

    table = format_table(
        ["primitive", "ops/s"],
        [["WindowedHistogram.observe()", f"{observe_ops:,.0f}"],
         ["TelemetryPlane.inc()", f"{inc_ops:,.0f}"]],
    )
    emit("obs_telemetry_throughput", table, capsys)

    # Both sit on the serve hot path: they must not be the bottleneck.
    assert observe_ops > 10_000
    assert inc_ops > 10_000
