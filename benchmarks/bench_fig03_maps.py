"""Fig. 3: coverage map vs throughput map.

The paper's argument: a coverage map (fraction of time with 5G
connectivity) hides cells whose connectivity is fine but throughput poor;
only a throughput map exposes them.
"""

import numpy as np

from repro.core.maps import (
    coverage_map,
    coverage_throughput_mismatch,
    throughput_map,
)

from _bench_utils import emit, format_table


def test_fig3_coverage_vs_throughput_map(benchmark, capsys, datasets):
    table = datasets["Airport"]
    tmap = benchmark.pedantic(
        lambda: throughput_map(table, cell_size=2.0), rounds=1, iterations=1
    )
    cmap = coverage_map(table, cell_size=2.0)
    mismatch = coverage_throughput_mismatch(table)

    tvals = np.asarray([c.value for c in tmap])
    cvals = np.asarray([c.value for c in cmap])
    rows = [
        ["throughput map", len(tmap), f"{tvals.min():.0f}",
         f"{np.median(tvals):.0f}", f"{tvals.max():.0f}"],
        ["coverage map", len(cmap), f"{cvals.min():.2f}",
         f"{np.median(cvals):.2f}", f"{cvals.max():.2f}"],
    ]
    text = (format_table(["map", "cells", "min", "median", "max"], rows)
            + f"\n\nwell-covered cells (>=90% 5G) with low throughput "
              f"(<300 Mbps): {mismatch * 100:.1f}%")
    emit("fig03_maps", text, capsys)

    # Coverage is high across most cells...
    assert np.median(cvals) > 0.7
    # ...yet throughput spans from dead to gigabit: coverage maps are
    # insufficient (the Fig. 3 argument).
    assert tvals.max() > 8 * max(np.median(tvals) * 0.1, tvals.min() + 1)
    assert mismatch > 0.0
