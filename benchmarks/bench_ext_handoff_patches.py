"""Extension: locating the Fig. 9 "handoff patches" from telemetry.

The paper hand-annotates corridor regions where handoffs concentrate;
this bench recovers them automatically from handoff flags and measures
the throughput penalty of standing inside one.
"""

from repro.analysis.handoffs import find_handoff_patches

from _bench_utils import emit, format_table


def test_ext_handoff_patches(benchmark, capsys, datasets):
    analysis = benchmark.pedantic(
        lambda: find_handoff_patches(datasets["Airport"], cell_size=4.0,
                                     min_samples=8, min_rate=0.03),
        rounds=1, iterations=1,
    )
    rows = [
        [f"({p.cell[0]}, {p.cell[1]})", f"{p.handoff_rate:.2f}",
         p.samples, p.mean_throughput]
        for p in analysis.patches[:8]
    ]
    table = format_table(
        ["cell", "handoffs/s", "samples", "mean Mbps"], rows
    )
    table += (f"\n\nmean throughput inside patches: "
              f"{analysis.mean_throughput_inside:.0f} Mbps vs "
              f"{analysis.mean_throughput_outside:.0f} outside "
              f"(penalty {analysis.penalty_fraction * 100:.0f}%)")
    emit("ext_handoff_patches", table, capsys)

    assert len(analysis.patches) >= 1
    # Handoff patches show degraded service (the paper's annotation).
    assert analysis.penalty_fraction > 0.2
