"""Shared benchmark fixtures: one campaign, one result cache, per-paper
tables written to ``benchmarks/results/``.

Heavy work (dataset simulation, model training) happens once per session
in cached fixtures; each ``bench_*`` file assembles its paper table from
the cache, times its representative computation with
``benchmark.pedantic``, prints the table and writes it to disk.

Scale: the bench profile trades the paper's 8000-tree / 2000-epoch model
budgets for laptop-sized equivalents (documented in DESIGN.md); the
qualitative shape of every table is preserved and asserted.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.core.pipeline import Lumos5G, ModelConfig
from repro.datasets.generate import generate_datasets
from repro.sim.collection import CampaignConfig

from _bench_utils import RESULTS_DIR, bench_obs_record

BENCH_SEED = 2020
BENCH_CAMPAIGN = CampaignConfig(
    passes_per_trajectory=6,
    driving_passes=6,
    stationary_runs=2,
    stationary_duration_s=90,
    seed=BENCH_SEED,
)

BENCH_MODEL_CONFIG = ModelConfig(
    gdbt_estimators=120,
    gdbt_depth=6,
    gdbt_learning_rate=0.1,
    gdbt_min_samples_leaf=10,
    seq2seq_hidden=32,
    seq2seq_layers=1,
    seq2seq_epochs=10,
    seq2seq_batch=512,
    seq2seq_lr=3e-3,
    input_len=20,
    output_len=1,
    window_stride=4,
    knn_k=5,
    rf_estimators=50,
    rf_depth=12,
)


@pytest.fixture(scope="session")
def datasets():
    """Cleaned per-area tables + the pooled Global table."""
    return generate_datasets(
        areas=("Airport", "Intersection", "Loop"),
        campaign=BENCH_CAMPAIGN,
        use_cache=True,
    )


@pytest.fixture(scope="session")
def framework(datasets):
    return Lumos5G(datasets, config=BENCH_MODEL_CONFIG, seed=42)


class ResultCache:
    """Memoized (area, spec, model) -> evaluation results."""

    def __init__(self, framework: Lumos5G):
        self.framework = framework
        self._reg: dict[tuple, object] = {}
        self._clf: dict[tuple, object] = {}

    def regression(self, area: str, spec: str, model: str):
        key = (area, spec, model)
        if key not in self._reg:
            self._reg[key] = self.framework.evaluate_regression(
                area, spec, model
            )
        return self._reg[key]

    def classification(self, area: str, spec: str, model: str):
        key = (area, spec, model)
        if key not in self._clf:
            self._clf[key] = self.framework.evaluate_classification(
                area, spec, model
            )
        return self._clf[key]


@pytest.fixture(scope="session")
def results(framework):
    return ResultCache(framework)


# --------------------------------------------------------------------------- #
# Observability: per-bench wall-clock + registry snapshot, persisted next to
# the paper tables so perf regressions show up in benchmarks/results/ diffs.
# --------------------------------------------------------------------------- #

_OBS_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _obs_bench_record(request):
    """Record each bench's wall-clock and the registry state it left."""
    obs.set_enabled(True)
    t0 = time.perf_counter()
    yield
    _OBS_RECORDS[request.node.name] = bench_obs_record(
        time.perf_counter() - t0)


def pytest_sessionfinish(session, exitstatus):
    if not _OBS_RECORDS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "obs_metrics.json"
    # Merge over what's already on disk so running a subset of benches
    # refreshes only their records instead of dropping everyone else's.
    records: dict = {}
    if path.is_file():
        try:
            records = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            records = {}
    records.update(_OBS_RECORDS)
    path.write_text(
        json.dumps(records, indent=2, sort_keys=True) + "\n"
    )
