"""Appendix A.4: 4G vs 5G throughput predictability.

Two phones walk the Loop side by side, one on LTE, one on 5G.  Existing
location-based predictors (KNN, OK, RF) are trained on each trace; the
paper finds ~10x higher MAE on the 5G traces (location alone works for
4G, fails for mmWave 5G).
"""

import numpy as np

from repro.datasets.cleaning import clean
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.kriging import OrdinaryKriging
from repro.ml.metrics import mae
from repro.ml.preprocessing import train_test_split
from repro.sim.collection import run_side_by_side_4g5g

from _bench_utils import emit, format_table


def _location_errors(table, seed=0):
    cleaned, _ = clean(table)
    X = np.column_stack([
        np.asarray(cleaned["pixel_x"], dtype=float),
        np.asarray(cleaned["pixel_y"], dtype=float),
    ])
    y = np.asarray(cleaned["throughput_mbps"], dtype=float)
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, rng=seed)
    out = {}
    out["KNN"] = mae(y_te, KNNRegressor(5).fit(X_tr, y_tr).predict(X_te))
    out["OK"] = mae(y_te, OrdinaryKriging(random_state=seed)
                    .fit(X_tr, y_tr).predict(X_te))
    out["RF"] = mae(y_te, RandomForestRegressor(
        n_estimators=40, random_state=seed).fit(X_tr, y_tr).predict(X_te))
    return out


def test_a4_4g_vs_5g_predictability(benchmark, capsys):
    t5, t4 = benchmark.pedantic(
        lambda: run_side_by_side_4g5g(passes=6, seed=11),
        rounds=1, iterations=1,
    )
    err5 = _location_errors(t5)
    err4 = _location_errors(t4)

    rows = [
        [model, err4[model], err5[model], err5[model] / err4[model]]
        for model in ("KNN", "OK", "RF")
    ]
    table = format_table(
        ["model (L only)", "4G MAE", "5G MAE", "5G/4G ratio"], rows
    )
    table += ("\n(paper: 4G MAE [29, 69, 26] vs 5G MAE [326, 626, 340] "
              "Mbps -- about 10x)")
    emit("a4_4g_vs_5g", table, capsys)

    for model in ("KNN", "OK", "RF"):
        # Location-only prediction is far harder on mmWave 5G.
        assert err5[model] > 3.0 * err4[model], model
    # And the absolute 4G errors are small (tens of Mbps).
    assert max(err4.values()) < 100.0
