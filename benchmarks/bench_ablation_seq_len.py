"""Ablation: Seq2Seq input-sequence length (paper fixes it at 20).

Longer histories help up to a point; this ablation sweeps the window
length and reports test MAE.
"""

import numpy as np

from repro.core.windows import build_windows
from repro.ml.metrics import mae
from repro.ml.nn.seq2seq import Seq2SeqRegressor
from repro.ml.preprocessing import split_by_run

from _bench_utils import emit, format_table

LENGTHS = [5, 20]


def test_ablation_sequence_length(benchmark, capsys, framework):
    X, y, run_ids, _ = framework.design("Airport", "L+M")

    def run(input_len):
        ws = build_windows(X, y, run_ids, input_len=input_len,
                           output_len=1, stride=4)
        train, test = split_by_run(ws.run_ids, test_size=0.3, rng=1)
        model = Seq2SeqRegressor(hidden_dim=24, encoder_layers=1,
                                 epochs=8, random_state=0)
        model.fit(ws.X[train], ws.y[train])
        pred = model.predict(ws.X[test])
        return mae(ws.y[test][:, 0], np.clip(pred, 0, None))

    first = benchmark.pedantic(lambda: run(LENGTHS[-1]),
                               rounds=1, iterations=1)
    errors = {LENGTHS[-1]: first}
    for ln in LENGTHS[:-1]:
        errors[ln] = run(ln)

    rows = [[ln, errors[ln]] for ln in LENGTHS]
    table = format_table(["input length (s)", "MAE (Mbps)"], rows)
    table += "\n(paper uses length 20)"
    emit("ablation_seq_len", table, capsys)

    # Sanity: both run and land in a plausible error band.
    for ln in LENGTHS:
        assert 20.0 < errors[ln] < 400.0
