"""GBDT/forest training throughput: growth engine vs reference grower.

Fits on synthetic regression/classification data (>= 50k rows for the
asserted case) through three model families:

* **regressor** -- squared-error GBDT, engine vs the recursive
  reference grower (``HistogramTree.fit_reference`` monkeypatched in);
  the engine must be >= 2x.
* **classifier k=7** -- multi-output softmax boosting (7 classes means
  7-output trees), engine vs reference.
* **forest** -- bagged sqrt-feature trees, engine only, serial vs
  ``workers=4`` under ``repro.par.pmap``.

Throughput is reported as rows*trees/sec (rows fitted per tree times
trees per second), the natural unit for boosting/bagging training, and
recorded as obs gauges so it lands in
``benchmarks/results/obs_metrics.json``:

* ``tree.bench.reg_engine_row_trees_per_s`` / ``tree.bench.reg_reference_row_trees_per_s``
* ``tree.bench.reg_speedup`` -- engine / reference ratio (asserted >= 2x)
* ``tree.bench.clf_engine_row_trees_per_s`` / ``tree.bench.clf_reference_row_trees_per_s``
  / ``tree.bench.clf_speedup``
* ``tree.bench.forest_serial_row_trees_per_s`` / ``tree.bench.forest_workers4_row_trees_per_s``
"""

import time

import numpy as np

from repro import obs
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbdt import GBDTClassifier, GBDTRegressor
from repro.ml.tree import HistogramTree

from _bench_utils import emit, format_table

#: The asserted >= 2x case: a >= 50k-row regression fit.
N_REG, REG_TREES = 50_000, 5
#: Classifier rows are fewer: each round grows a 7-output tree, so the
#: reference baseline pays 7x the bincounts per node.
N_CLS, CLS_TREES = 20_000, 2
N_RF, RF_TREES = 20_000, 8
D = 20


def _regression_data(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_REG, D))
    y = (X[:, 0] - 2.0 * X[:, 3] + 0.5 * X[:, 7] * X[:, 11]
         + rng.normal(0, 0.3, N_REG))
    return X, y


def _classification_data(seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_CLS, D))
    score = X[:, 0] + X[:, 5] - X[:, 9] + rng.normal(0, 0.5, N_CLS)
    edges = np.quantile(score, np.linspace(0, 1, 8)[1:-1])
    return X, np.digitize(score, edges)  # 7 classes


def _use_reference(monkeypatch_ctx):
    monkeypatch_ctx.setattr(HistogramTree, "fit",
                            HistogramTree.fit_reference)


def test_gbdt_fit_throughput(benchmark, monkeypatch, capsys):
    X_reg, y_reg = _regression_data()
    X_clf, y_clf = _classification_data()
    reg_kwargs = dict(n_estimators=REG_TREES, max_depth=8,
                      min_samples_leaf=5, max_bins=64, random_state=0)
    clf_kwargs = dict(n_estimators=CLS_TREES, max_depth=6,
                      min_samples_leaf=10, max_bins=64, random_state=0)

    # Regressor: engine (timed by pytest-benchmark) then reference.
    t0 = time.perf_counter()
    engine_model = benchmark.pedantic(
        lambda: GBDTRegressor(**reg_kwargs).fit(X_reg, y_reg),
        rounds=1, iterations=1,
    )
    reg_engine_s = time.perf_counter() - t0
    with monkeypatch.context() as m:
        _use_reference(m)
        t0 = time.perf_counter()
        reference_model = GBDTRegressor(**reg_kwargs).fit(X_reg, y_reg)
        reg_reference_s = time.perf_counter() - t0
    # Same bits out of both growers, or the speedup is meaningless.
    probe = X_reg[:2000]
    np.testing.assert_array_equal(engine_model.predict(probe),
                                  reference_model.predict(probe))

    # Classifier, 7 classes -> 7-output trees.
    t0 = time.perf_counter()
    GBDTClassifier(**clf_kwargs).fit(X_clf, y_clf)
    clf_engine_s = time.perf_counter() - t0
    with monkeypatch.context() as m:
        _use_reference(m)
        t0 = time.perf_counter()
        GBDTClassifier(**clf_kwargs).fit(X_clf, y_clf)
        clf_reference_s = time.perf_counter() - t0

    # Forest: engine only, serial vs 4 workers (per-tree pmap).
    X_rf, y_rf = X_reg[:N_RF], y_reg[:N_RF]
    rf_kwargs = dict(n_estimators=RF_TREES, max_depth=10,
                     min_samples_leaf=3, max_bins=64, random_state=0)
    t0 = time.perf_counter()
    RandomForestRegressor(workers=1, **rf_kwargs).fit(X_rf, y_rf)
    rf_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    RandomForestRegressor(workers=4, **rf_kwargs).fit(X_rf, y_rf)
    rf_workers_s = time.perf_counter() - t0

    def rtps(n, trees, wall):
        return n * trees / wall

    reg_engine = rtps(N_REG, REG_TREES, reg_engine_s)
    reg_reference = rtps(N_REG, REG_TREES, reg_reference_s)
    reg_speedup = reg_engine / reg_reference
    clf_engine = rtps(N_CLS, CLS_TREES, clf_engine_s)
    clf_reference = rtps(N_CLS, CLS_TREES, clf_reference_s)
    clf_speedup = clf_engine / clf_reference
    rf_serial = rtps(N_RF, RF_TREES, rf_serial_s)
    rf_workers = rtps(N_RF, RF_TREES, rf_workers_s)

    obs.set_gauge("tree.bench.reg_engine_row_trees_per_s",
                  round(reg_engine, 1))
    obs.set_gauge("tree.bench.reg_reference_row_trees_per_s",
                  round(reg_reference, 1))
    obs.set_gauge("tree.bench.reg_speedup", round(reg_speedup, 2))
    obs.set_gauge("tree.bench.clf_engine_row_trees_per_s",
                  round(clf_engine, 1))
    obs.set_gauge("tree.bench.clf_reference_row_trees_per_s",
                  round(clf_reference, 1))
    obs.set_gauge("tree.bench.clf_speedup", round(clf_speedup, 2))
    obs.set_gauge("tree.bench.forest_serial_row_trees_per_s",
                  round(rf_serial, 1))
    obs.set_gauge("tree.bench.forest_workers4_row_trees_per_s",
                  round(rf_workers, 1))

    table = format_table(
        ["fit", "rows", "trees", "wall s", "row*trees/s", "speedup"],
        [
            ["regressor reference", N_REG, REG_TREES,
             f"{reg_reference_s:.2f}", f"{reg_reference:.0f}", "1.00"],
            ["regressor engine", N_REG, REG_TREES,
             f"{reg_engine_s:.2f}", f"{reg_engine:.0f}",
             f"{reg_speedup:.2f}"],
            ["classifier k=7 reference", N_CLS, CLS_TREES,
             f"{clf_reference_s:.2f}", f"{clf_reference:.0f}", "1.00"],
            ["classifier k=7 engine", N_CLS, CLS_TREES,
             f"{clf_engine_s:.2f}", f"{clf_engine:.0f}",
             f"{clf_speedup:.2f}"],
            ["forest serial", N_RF, RF_TREES,
             f"{rf_serial_s:.2f}", f"{rf_serial:.0f}", "-"],
            ["forest workers=4", N_RF, RF_TREES,
             f"{rf_workers_s:.2f}", f"{rf_workers:.0f}",
             f"{rf_serial_s / rf_workers_s:.2f} vs serial"],
        ],
    )
    emit("gbdt_fit_throughput", table, capsys)

    assert reg_speedup >= 2.0, (
        f"growth engine must be >=2x the reference grower on the "
        f"{N_REG}-row regression fit, got {reg_speedup:.2f}x"
    )
