"""Fig. 16: predicted-vs-actual regression series with +-200 Mbps band.

The paper plots Seq2Seq and GDBT predictions (L+M+C, Global) against the
measured series with a +-200 Mbps error band; we report the fraction of
test predictions inside that band.
"""

import numpy as np

from _bench_utils import emit, format_table


def test_fig16_regression_band(benchmark, capsys, results):
    gdbt = benchmark.pedantic(
        lambda: results.regression("Global", "L+M+C", "gdbt"),
        rounds=1, iterations=1,
    )
    s2s = results.regression("Global", "L+M+C", "seq2seq")

    rows = []
    for name, r in (("GDBT", gdbt), ("Seq2Seq", s2s)):
        inside = float(np.mean(np.abs(r.y_pred - r.y_true) <= 200.0))
        rows.append([name, r.mae, r.rmse, f"{inside * 100:.1f}%"])
    table = format_table(
        ["model", "MAE", "RMSE", "within +-200 Mbps"], rows
    )
    # A short aligned sample of the series, paper-plot style.
    k = min(12, len(gdbt.y_true))
    table += "\n\nsample (actual -> GDBT prediction):\n" + "\n".join(
        f"  {a:7.0f} -> {p:7.0f}"
        for a, p in zip(gdbt.y_true[:k], gdbt.y_pred[:k])
    )
    emit("fig16_regression_plot", table, capsys)

    for r in (gdbt, s2s):
        inside = float(np.mean(np.abs(r.y_pred - r.y_true) <= 200.0))
        assert inside > 0.6, "most predictions should sit in the band"
