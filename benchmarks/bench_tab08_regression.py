"""Table 8: regression results (MAE | RMSE), same grid as Table 7."""

import numpy as np

from _bench_utils import emit, format_table

AREAS = ["Intersection", "Loop", "Airport", "Global"]
SPECS = ["L", "L+M", "T+M", "L+M+C", "T+M+C"]


def test_table8_regression(benchmark, capsys, framework, results):
    benchmark.pedantic(
        lambda: framework.evaluate_regression("Airport", "L+M", "gdbt"),
        rounds=1, iterations=1,
    )

    rows = []
    cells = {}
    for spec in SPECS:
        for model in ("gdbt", "seq2seq"):
            row = [f"{spec} / {model}"]
            for area in AREAS:
                if not framework.supports(area, spec):
                    row.append("-")
                    continue
                r = results.regression(area, spec, model)
                cells[(area, spec, model)] = r
                row.append(f"{r.mae:.0f}|{r.rmse:.0f}")
            rows.append(row)
    table = format_table(["feature/model"] + AREAS, rows)
    table += "\n(cell = MAE | RMSE, Mbps)"
    emit("tab08_regression", table, capsys)

    # Paper shapes:
    for model in ("gdbt", "seq2seq"):
        for area in AREAS:
            assert (cells[(area, "L+M+C", model)].mae
                    < cells[(area, "L", model)].mae), (area, model)
    # Adding M to L is the big first win for GDBT (paper: ~2x).
    for area in AREAS:
        assert (cells[(area, "L+M", "gdbt")].mae
                < 0.9 * cells[(area, "L", "gdbt")].mae)
    # Seq2Seq history helps on the sparse feature groups (paper: lower
    # MAE than GDBT for most cells).
    wins = sum(
        cells[(a, s, "seq2seq")].mae < cells[(a, s, "gdbt")].mae
        for a in AREAS for s in ("L", "L+M")
    )
    assert wins >= 5, "Seq2Seq should win most sparse-feature cells"
