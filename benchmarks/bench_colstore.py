"""Out-of-core colstore engine: throughput and the bounded-memory proof.

The tentpole claim behind ``docs/colstore.md`` is that a campaign
streams through generation -> cleaning -> feature materialization ->
GBDT fit at memory proportional to the *chunk working set*, never the
campaign.  ``ru_maxrss`` is a process-lifetime high-water mark, so each
measurement runs in a fresh subprocess:

* a no-op child (imports only) establishes the interpreter floor;
* the store-path child runs the full pipeline at the 1M-row tier via
  ``run_area_campaign(store_dir=...)`` + ``train_from_store`` and
  reports its peak RSS and its working set (the largest on-disk chunk
  of each store it touched: raw, cleaned, features);
* an in-memory child runs the classic gather-everything path at the
  same scale, as the contrast gauge.

The assertion: store-path peak RSS above the floor stays under
``RSS_BUDGET_FACTOR`` x the summed per-store chunk working set, plus
``DRIVER_BYTES_PER_ROW`` per row for the single documented O(n) term
-- the GBDT driver's float64 prediction vector (8 bytes/row, with
allocator slack).  Everything else is chunk-shaped, so the budget is a
function of chunk geometry, not campaign length.  A 10M-row tier of
the same assertion runs under ``-m slow``.

Gauges recorded to ``benchmarks/results/obs_metrics.json``:

* ``colstore.bench.rows`` / ``generate_rows_per_s`` / ``train_rows_per_s``
* ``colstore.bench.peak_rss_mb`` / ``working_set_mb`` / ``floor_rss_mb``
* ``colstore.bench.in_memory_peak_rss_mb`` -- the contrast baseline.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import obs

from _bench_utils import emit, format_table

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

#: Default tier; the ISSUE's 10M-row campaign runs under ``-m slow``.
ROWS_TIER = 1_000_000
ROWS_TIER_SLOW = 10_000_000
CHUNK_ROWS = 65_536
#: Airport campaign yields ~496 rows per pass (measured, linear).
ROWS_PER_PASS = 496
#: Peak RSS above the interpreter floor must stay under this multiple
#: of the summed chunk working set.  The pipeline holds at most one
#: chunk per store stage at a time; the factor absorbs numpy temporaries
#: and allocator retention across stages, not campaign-sized state.
RSS_BUDGET_FACTOR = 4.0
#: The one O(n) allowance: the GBDT driver keeps a float64 prediction
#: per training row (8 bytes); doubled for allocator slack on it.
DRIVER_BYTES_PER_ROW = 16

_FLOOR_SCRIPT = """
import json
import numpy, repro.colstore.pipeline
from repro import obs
print(json.dumps({"peak_rss_mb": obs.peak_rss_mb()}))
"""

_STORE_SCRIPT = """
import json, pathlib, sys, time
from repro import obs
from repro.colstore.pipeline import train_from_store
from repro.core.pipeline import ModelConfig
from repro.env.areas import build_airport
from repro.sim.collection import CampaignConfig, run_area_campaign

rows_target, chunk_rows, work = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
passes = max(1, round(rows_target / %d))
cfg = CampaignConfig(passes_per_trajectory=passes, driving_passes=passes,
                     stationary_runs=1, stationary_duration_s=20, seed=2020)
t0 = time.perf_counter()
reader = run_area_campaign(build_airport(), cfg, store_dir=work + "/raw",
                           chunk_rows=chunk_rows)
gen_s = time.perf_counter() - t0
config = ModelConfig(gdbt_estimators=8, gdbt_depth=5,
                     gdbt_learning_rate=0.2, gdbt_min_samples_leaf=20)
t0 = time.perf_counter()
est, info = train_from_store(work + "/raw", work + "/w", model="gdbt",
                             task="regression", config=config, seed=2020)
train_s = time.perf_counter() - t0
# Working set: the largest on-disk chunk of every store the pipeline
# touched (raw, cleaned, features), summed -- the bytes that may be
# resident simultaneously while a chunk flows through the stages.
largest = {}
for d in pathlib.Path(work).rglob("chunk-*"):
    size = sum(f.stat().st_size for f in d.iterdir())
    largest[str(d.parent)] = max(largest.get(str(d.parent), 0), size)
print(json.dumps({
    "rows": len(reader), "train_rows": info["train_rows"],
    "n_chunks": info["n_chunks"], "gen_s": gen_s, "train_s": train_s,
    "working_set_mb": sum(largest.values()) / 2**20,
    "peak_rss_mb": obs.peak_rss_mb()}))
""" % ROWS_PER_PASS

_MEMORY_SCRIPT = """
import json, sys, time
import numpy as np
from repro import obs
from repro.datasets.cleaning import clean
from repro.env.areas import build_airport
from repro.fstore.views import combination_view
from repro.ml.gbdt import GBDTRegressor
from repro.sim.collection import CampaignConfig, run_area_campaign

rows_target = int(sys.argv[1])
passes = max(1, round(rows_target / %d))
cfg = CampaignConfig(passes_per_trajectory=passes, driving_passes=passes,
                     stationary_runs=1, stationary_duration_s=20, seed=2020)
t0 = time.perf_counter()
table = run_area_campaign(build_airport(), cfg)
gen_s = time.perf_counter() - t0
t0 = time.perf_counter()  # clean -> features -> fit, like train_from_store
table, _ = clean(table)
view = combination_view("L+M+T+C", past_throughput_lags=5)
X = view.transform_table(table).X
y = np.asarray(table["throughput_mbps"], dtype=float)
GBDTRegressor(n_estimators=8, max_depth=5, learning_rate=0.2,
              min_samples_leaf=20, random_state=2020).fit(X, y)
train_s = time.perf_counter() - t0
print(json.dumps({"rows": int(len(table)), "gen_s": gen_s,
                  "train_s": train_s, "peak_rss_mb": obs.peak_rss_mb()}))
""" % ROWS_PER_PASS


def _child(code, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, *[str(a) for a in argv]],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.splitlines()[-1])


def _run_tier(rows, tmp_path, capsys, with_baseline):
    floor = _child(_FLOOR_SCRIPT)["peak_rss_mb"]
    store = _child(_STORE_SCRIPT, rows, CHUNK_ROWS, tmp_path / "store")
    overhead = store["peak_rss_mb"] - floor
    driver_mb = DRIVER_BYTES_PER_ROW * store["train_rows"] / 2**20
    budget = RSS_BUDGET_FACTOR * store["working_set_mb"] + driver_mb

    rows_fmt = f"{rows // 1_000_000}M"
    table_rows = [
        ["store path", store["rows"],
         store["rows"] / store["gen_s"],
         store["train_rows"] / store["train_s"],
         store["peak_rss_mb"]],
    ]
    if with_baseline:
        mem = _child(_MEMORY_SCRIPT, rows)
        table_rows.append(
            ["in-memory", mem["rows"], mem["rows"] / mem["gen_s"],
             mem["rows"] / mem["train_s"], mem["peak_rss_mb"]])
        obs.set_gauge("colstore.bench.in_memory_peak_rss_mb",
                      round(mem["peak_rss_mb"], 1))

    obs.set_gauge("colstore.bench.rows", float(store["rows"]))
    obs.set_gauge("colstore.bench.generate_rows_per_s",
                  round(store["rows"] / store["gen_s"], 1))
    obs.set_gauge("colstore.bench.train_rows_per_s",
                  round(store["train_rows"] / store["train_s"], 1))
    obs.set_gauge("colstore.bench.peak_rss_mb",
                  round(store["peak_rss_mb"], 1))
    obs.set_gauge("colstore.bench.working_set_mb",
                  round(store["working_set_mb"], 1))
    obs.set_gauge("colstore.bench.floor_rss_mb", round(floor, 1))

    text = format_table(
        ["path", "rows", "gen rows/s", "train rows/s", "peak MB"],
        table_rows,
    )
    text += (
        f"\nbudget: {RSS_BUDGET_FACTOR:.0f} x "
        f"{store['working_set_mb']:.1f} MB chunk working set "
        f"+ {driver_mb:.1f} MB driver state = {budget:.1f} MB; "
        f"store-path overhead {overhead:.1f} MB over the "
        f"{floor:.1f} MB floor ({store['n_chunks']} chunks)"
    )
    emit(f"bench_colstore_{rows_fmt}", text, capsys)

    assert store["rows"] >= 0.9 * rows
    assert store["n_chunks"] > 1
    assert overhead < budget, (
        f"store path used {overhead:.1f} MB over the interpreter floor; "
        f"budget is {budget:.1f} MB ({RSS_BUDGET_FACTOR}x the "
        f"{store['working_set_mb']:.1f} MB chunk working set "
        f"+ {driver_mb:.1f} MB driver state)"
    )
    return store, overhead


def test_colstore_bounded_memory_1m(tmp_path, capsys):
    _run_tier(ROWS_TIER, tmp_path, capsys, with_baseline=True)


@pytest.mark.slow
def test_colstore_bounded_memory_10m(tmp_path, capsys):
    """The ISSUE's full 10M-row campaign; ~45 min on one core."""
    store, overhead = _run_tier(ROWS_TIER_SLOW, tmp_path, capsys,
                                with_baseline=False)
    # Ten times the data, the same chunk budget: only the documented
    # 16 bytes/row driver term grows, so passing here is the
    # scale-independence proof for everything else.
    assert store["rows"] >= 9_000_000
