"""Figs. 8 & 18: impact of UE-panel mobility angle (theta_m).

Throughput binned by theta_m per panel, restricted to a mid-distance
band (30-130 m) so distance does not confound the angle effect: high
when moving head-on toward the panel face (theta_m ~ 180), degraded (or
impossible to even hold the link -- body blockage) when moving with the
panel's facing direction (theta_m ~ 0).
"""

import numpy as np

from repro.core.transfer import panel_slice

from _bench_utils import emit, format_table

ANGLE_BINS = [(0, 45), (45, 90), (90, 135), (135, 180),
              (180, 225), (225, 270), (270, 315), (315, 360)]
DIST_BAND = (30.0, 130.0)
MIN_SAMPLES = 8


def _angle_profile(table, panel_id):
    sub = panel_slice(table, panel_id)
    walking = sub.filter(np.asarray(
        [m == "walking" for m in sub["mobility_mode"]]
    ))
    dist = np.asarray(walking["ue_panel_distance_m"], dtype=float)
    in_band = (dist >= DIST_BAND[0]) & (dist < DIST_BAND[1])
    theta = np.asarray(walking["mobility_angle_deg"], dtype=float)[in_band]
    tput = np.asarray(walking["throughput_mbps"], dtype=float)[in_band]
    medians, counts = [], []
    for lo, hi in ANGLE_BINS:
        sel = (theta >= lo) & (theta < hi)
        counts.append(int(sel.sum()))
        medians.append(float(np.median(tput[sel]))
                       if sel.sum() >= MIN_SAMPLES else float("nan"))
    return medians, counts


def test_fig8_18_mobility_angle(benchmark, capsys, datasets):
    table = datasets["Airport"]
    south, south_n = benchmark.pedantic(
        lambda: _angle_profile(table, 101), rounds=1, iterations=1
    )
    north, north_n = _angle_profile(table, 102)

    rows = [
        ["south median"] + south, ["south n"] + south_n,
        ["north median"] + north, ["north n"] + north_n,
    ]
    out = format_table(
        ["panel"] + [f"{lo}-{hi}" for lo, hi in ANGLE_BINS], rows
    )
    out += (f"\n(30-130 m band; theta_m ~ 180: head-on toward panel face; "
            f"theta_m ~ 0: body blocks LoS)")
    emit("fig08_mobility_angle", out, capsys)

    # North panel: the clean Fig. 8 trend -- head-on movement (theta_m
    # near 180) far outperforms moving away.
    north_head = np.nanmean([north[3], north[4]])
    north_away = np.nanmean([north[0], north[7]])
    assert north_n[3] + north_n[4] >= MIN_SAMPLES
    assert np.isfinite(north_head)
    if np.isfinite(north_away):
        assert north_head > 1.5 * north_away
    # South panel: the paper's documented outlier (Sec. 4.4 / Fig. 18) --
    # throughput can stay high even moving away thanks to environmental
    # deflection; its head-on band crosses the booth NLoS dip.  Assert
    # only that the panel holds links head-on and that away-samples are
    # the scarce, selection-biased minority.
    assert south_n[3] + south_n[4] >= MIN_SAMPLES
    assert south_n[0] + south_n[7] < south_n[3] + south_n[4]
