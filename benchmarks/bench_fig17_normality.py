"""Fig. 17 (Appendix A.1.1): extended normality and Levene results.

Fraction of cells passing the two-test normality check (alpha 0.001) and
fraction of cell pairs with significantly different variances, indoor vs
outdoor.
"""

import numpy as np

from repro.analysis.stats import (
    fraction_normal,
    group_by_cell,
    pairwise_location_tests,
)

from _bench_utils import emit, format_table


def _cells(table):
    return group_by_cell(
        np.asarray(table["pixel_x"], dtype=float),
        np.asarray(table["pixel_y"], dtype=float),
        np.asarray(table["throughput_mbps"], dtype=float),
        cell_size=4.0, min_samples=12,
    )


def test_fig17_normality_levene(benchmark, capsys, datasets):
    indoor_cells = _cells(datasets["Airport"])
    outdoor_cells = _cells(datasets["Intersection"])

    indoor_norm = benchmark.pedantic(
        lambda: fraction_normal(indoor_cells, alpha=0.001),
        rounds=1, iterations=1,
    )
    outdoor_norm = fraction_normal(outdoor_cells, alpha=0.001)
    indoor_lev = pairwise_location_tests(
        indoor_cells, alpha=0.1, max_pairs=3000
    ).frac_significant_levene
    outdoor_lev = pairwise_location_tests(
        outdoor_cells, alpha=0.1, max_pairs=3000
    ).frac_significant_levene

    rows = [
        ["% cells normal", f"{indoor_norm * 100:.1f}%",
         f"{outdoor_norm * 100:.1f}%"],
        ["% pairs Levene-significant", f"{indoor_lev * 100:.1f}%",
         f"{outdoor_lev * 100:.1f}%"],
    ]
    table = format_table(["metric", "Indoor", "Outdoor"], rows)
    table += ("\n(paper: ~48% indoor / ~33% outdoor cells NOT normal; "
              "Levene ~64% / ~61%)")
    emit("fig17_normality", table, capsys)

    # A sizeable minority of cells is non-normal in both areas.
    assert indoor_norm < 0.98
    assert outdoor_norm < 0.98
    # Variances differ across many location pairs.
    assert indoor_lev > 0.3
    assert outdoor_lev > 0.25
